#!/usr/bin/env python
"""Native-mode dgemm, host vs VM — the §IV-C experiment, one size.

Launches Intel's cblas_dgemm sample on the coprocessor with
micnativeloadex, once from the host and once from inside a VM, and
compares the end-to-end time (launch + binary transfer + execution).
For a small problem the result is also verified numerically on the card.

Run:  python examples/native_dgemm.py [N] [threads]
"""

import sys

from repro import Machine
from repro.coi import start_coi_daemon
from repro.mpss import micinfo, micnativeloadex
from repro.workloads import ClientContext, DGEMM_BINARY, input_bytes


def launch(machine, ctx, n, threads):
    p = ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY,
                                  argv=[str(n), str(threads)]))
    machine.run()
    return p.value


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 112

    # --- host run -------------------------------------------------------
    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    print(micinfo(machine.kernel.sysfs, cards=1))
    native = launch(machine, ClientContext.native(machine), n, threads)

    # --- VM run (fresh, identical machine) ------------------------------
    machine2 = Machine(cards=1).boot()
    start_coi_daemon(machine2, card=0)
    vm = machine2.create_vm("vm0")
    vphi = launch(machine2, ClientContext.guest(vm), n, threads)

    print(f"\ndgemm N={n} ({input_bytes(n) >> 20} MB of inputs), "
          f"{threads} threads, "
          f"{DGEMM_BINARY.total_transfer_bytes >> 20} MB of binaries shipped:")
    print(f"  host : total {native.total_time:.4f}s "
          f"(transfer {native.transfer_time:.4f}s, compute {native.compute_time:.4f}s)")
    print(f"  vPHI : total {vphi.total_time:.4f}s "
          f"(transfer {vphi.transfer_time:.4f}s, compute {vphi.compute_time:.4f}s)")
    print(f"  normalized total time (vPHI/host): "
          f"{vphi.total_time / native.total_time:.3f}")

    if "c_checksum" in native.exit_record:
        for label, r in (("host", native), ("vPHI", vphi)):
            ok = abs(r.exit_record["c_checksum"] - r.exit_record["c_expected"]) < 1e-6
            print(f"  {label} numerical verification on card: {'OK' if ok else 'FAIL'}")
            assert ok
    print("OK")


if __name__ == "__main__":
    main()
