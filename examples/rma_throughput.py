#!/usr/bin/env python
"""Remote memory access from a VM: registered windows, RMA, scif_mmap.

Walks the three one-sided data paths the stack offers a guest:

1. ``scif_vreadfrom`` — the paper's path: kmalloc-bounced, 4 MB chunks
   (Fig 5: peaks at ~72 % of native);
2. ``scif_readfrom`` between *registered* windows — DMA straight into
   pinned guest RAM;
3. ``scif_mmap`` — map card memory into the guest and just dereference it
   (the VM_PFNPHI two-level mapping, the paper's <10-LOC KVM change).

Run:  python examples/rma_throughput.py
"""

import numpy as np

from repro import Machine

PORT = 2600
MB = 1 << 20
SIZE = 64 * MB


def main() -> None:
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    card_node = machine.card_node_id(0)

    # --- card server: fills and registers a 64MB window ----------------
    sproc = machine.card_process("window-server")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(SIZE, populate=True, name="gddr-window")
        sproc.address_space.write(vma.start, np.full(SIZE, 0xC7, dtype=np.uint8))
        sproc.address_space.write(vma.start, b"vPHI says hi")
        roff = yield from slib.register(conn, vma.start, SIZE)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    # --- guest client ----------------------------------------------------
    gproc = vm.guest_process("rma-app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready

        # 1. bounced vreadfrom
        dst = gproc.address_space.mmap(SIZE, populate=True, name="dst")
        t0 = machine.sim.now
        yield from glib.vreadfrom(ep, dst.start, SIZE, roff)
        t_bounced = machine.sim.now - t0
        assert gproc.address_space.read(dst.start, 12).tobytes() == b"vPHI says hi"
        print(f"vreadfrom (bounced) : {SIZE / t_bounced / 1e9:.2f} GB/s")

        # 2. direct window-to-window readfrom
        win = gproc.address_space.mmap(SIZE, populate=True, name="win")
        loff = yield from glib.register(ep, win.start, SIZE)
        t0 = machine.sim.now
        yield from glib.readfrom(ep, loff, SIZE, roff)
        t_direct = machine.sim.now - t0
        assert gproc.address_space.read(win.start, 12).tobytes() == b"vPHI says hi"
        print(f"readfrom (window)   : {SIZE / t_direct / 1e9:.2f} GB/s")
        yield from glib.unregister(ep, loff)

        # 3. scif_mmap: dereference card memory directly
        m = yield from glib.mmap(ep, roff, SIZE)
        head = gproc.address_space.read(m.start, 12)
        print(f"scif_mmap deref     : {head.tobytes().decode()!r} "
              f"(EPT faults resolved via VM_PFNPHI: {vm.mmu.pfnphi_faults})")
        assert head.tobytes() == b"vPHI says hi"
        gproc.address_space.write(m.start + 32, b"guest store")
        yield from glib.munmap(m)

        yield from glib.send(ep, b"x")
        return True

    machine.sim.spawn(server())
    p = vm.spawn_guest(client())
    machine.run()
    assert p.value is True
    print("OK")


if __name__ == "__main__":
    main()
