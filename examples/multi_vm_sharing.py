#!/usr/bin/env python
"""Xeon Phi sharing: four VMs drive one card at the same time.

The paper's headline capability (§I): PCIe passthrough gives the whole
card to ONE VM; vPHI multiplexes it.  Each VM launches dgemm on the card
with micnativeloadex; the uOS scheduler timeshares the oversubscribed
hardware threads and every VM gets its (correct) result back.

Run:  python examples/multi_vm_sharing.py
"""

from repro import Machine
from repro.coi import start_coi_daemon
from repro.mpss import micnativeloadex
from repro.workloads import ClientContext, DGEMM_BINARY

N = 2000
THREADS = 224
VMS = 4


def main() -> None:
    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    uos = machine.uos(0)
    print(f"card: {machine.devices[0].sku.name}, "
          f"{uos.scheduler.slots} hardware threads for user kernels")

    procs = []
    for i in range(VMS):
        vm = machine.create_vm(f"vm{i}")
        ctx = ClientContext.guest(vm, f"loader{i}")
        procs.append((vm, ctx.spawn(
            micnativeloadex(machine, ctx, DGEMM_BINARY, argv=[str(N), str(THREADS)])
        )))

    machine.run()

    print(f"\n{VMS} VMs each launched dgemm (N={N}, {THREADS} threads):")
    for vm, p in procs:
        r = p.value
        print(f"  {vm.name}: status={r.status} total={r.total_time:.3f}s "
              f"compute={r.compute_time:.3f}s "
              f"transferred={r.transferred_bytes >> 20}MB")
        assert r.status == 0

    print(f"\npeak concurrent thread demand on the card: "
          f"{uos.scheduler.peak_demand} "
          f"(oversubscribed {uos.scheduler.peak_demand / uos.scheduler.slots:.1f}x, "
          "multiplexed by the uOS scheduler)")
    sent = int(machine.tracer.accumulators.get("scif.bytes_sent", 0))
    print(f"SCIF moved {sent >> 20} MB of binaries/control over the PCIe bus")
    print("OK")


if __name__ == "__main__":
    main()
