#!/usr/bin/env python
"""Offload mode from a VM — the paper's stated future work, working.

§II-A/§VI: vPHI "supports all three modes, since all of them utilize
SCIF as the transport layer"; the paper evaluates native mode and leaves
offload/symmetric for future work.  Because this reproduction implements
COI on top of SCIF, offload mode simply works through vPHI: the guest
creates card buffers, ships data, runs kernels, reads results back.

Run:  python examples/offload_mode.py
"""

import numpy as np

from repro import Machine
from repro.coi import COIConnection, start_coi_daemon
from repro.workloads import ClientContext

N = 128


def main() -> None:
    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    vm = machine.create_vm("vm0")
    ctx = ClientContext.guest(vm, "offload-app")

    rng = np.random.default_rng(42)
    a = rng.standard_normal((N, N))
    b = rng.standard_normal((N, N))

    def app():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()

        # COI buffers live in the card's GDDR
        ab = yield from conn.buffer_create(N * N * 8)
        bb = yield from conn.buffer_create(N * N * 8)
        cb = yield from conn.buffer_create(N * N * 8)
        yield from ab.write(a.tobytes())
        yield from bb.write(b.tobytes())

        # offload the kernel (it runs on the card's cores, scheduled by
        # the uOS, timed by the MKL model, computed by numpy for real)
        result = yield from conn.run_function(
            "dgemm_offload", buffers=[ab, bb, cb], args={"n": N, "threads": 112}
        )

        c_bytes = yield from cb.read()
        yield from conn.close()
        return result, c_bytes

    p = ctx.spawn(app())
    machine.run()
    result, c_bytes = p.value

    c = np.frombuffer(c_bytes.tobytes(), dtype=np.float64).reshape(N, N)
    err = np.abs(c - a @ b).max()
    print(f"offloaded dgemm N={N} from inside {vm.name}:")
    print(f"  card-reported checksum : {result['checksum']:.6f}")
    print(f"  max |C - A@B| on host  : {err:.2e}")
    print(f"  vPHI requests used     : {vm.vphi.frontend.requests}")
    assert err < 1e-9
    print("OK")


if __name__ == "__main__":
    main()
