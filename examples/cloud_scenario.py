#!/usr/bin/env python
"""The paper's target deployment: one accelerated node in a cloud.

Four tenants share one Xeon Phi through vPHI, each doing something
different at the same time:

  * tenant A launches dgemm in native mode (micnativeloadex);
  * tenant B streams data off the card with RMA;
  * tenant C runs an offload-mode kernel through COI pipelines;
  * tenant D joins a symmetric-mode MPI job with a card rank.

Everything completes, every result verifies, no tenant ever logs into
the card — the isolation story §IV-A wants, at the utilization §I wants.

Run:  python examples/cloud_scenario.py
"""

import numpy as np

from repro import Machine
from repro.coi import In, OffloadRuntime, Out, start_coi_daemon
from repro.mpi import SUM, mpirun
from repro.mpss import micnativeloadex
from repro.workloads import ClientContext, DGEMM_BINARY

MB = 1 << 20
PORT = 2800


def main() -> None:
    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    vms = {name: machine.create_vm(name) for name in ("vm-a", "vm-b", "vm-c", "vm-d")}
    report = {}

    # --- tenant A: native-mode dgemm ------------------------------------
    ctx_a = ClientContext.guest(vms["vm-a"], "tenant-a")
    pa = ctx_a.spawn(micnativeloadex(machine, ctx_a, DGEMM_BINARY,
                                     argv=["192", "112"]))

    # --- tenant B: RMA streaming ----------------------------------------
    size = 32 * MB
    sproc = machine.card_process("data-service")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def data_service():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, 0xB0, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    machine.sim.spawn(data_service())
    ctx_b = ClientContext.guest(vms["vm-b"], "tenant-b")

    def tenant_b():
        ep = yield from ctx_b.lib.open()
        yield from ctx_b.lib.connect(ep, (machine.card_node_id(0), PORT))
        roff = yield ready
        vma = ctx_b.process.address_space.mmap(size, populate=True)
        t0 = machine.sim.now
        yield from ctx_b.lib.vreadfrom(ep, vma.start, size, roff)
        bw = size / (machine.sim.now - t0)
        assert (ctx_b.process.address_space.read(vma.start, 4096) == 0xB0).all()
        yield from ctx_b.lib.send(ep, b"x")
        report["b_gbps"] = bw / 1e9

    pb = ctx_b.spawn(tenant_b())

    # --- tenant C: offload mode through COI pipelines -------------------
    ctx_c = ClientContext.guest(vms["vm-c"], "tenant-c")
    n = 64
    rng = np.random.default_rng(7)
    a_mat = rng.standard_normal((n, n))
    b_mat = rng.standard_normal((n, n))

    def tenant_c():
        rt = OffloadRuntime(ctx_c, machine)
        yield from rt.open()
        _, (c_mat,) = yield from rt.run(
            "dgemm_offload", [In(a_mat), In(b_mat), Out((n, n))],
            args={"n": n, "threads": 56},
        )
        yield from rt.close()
        report["c_err"] = float(np.abs(c_mat - a_mat @ b_mat).max())

    pc = ctx_c.spawn(tenant_c())
    machine.run()

    # --- tenant D: symmetric-mode MPI (host + card + VM rank) -----------
    def mpi_job(rank, ctx):
        total = yield from rank.allreduce(rank.rank + 1, SUM)
        return total

    totals = mpirun(machine, ["host", ("card", 0), ("vm", vms["vm-d"])], mpi_job)
    report["d_allreduce"] = totals[0]

    # --- the node report --------------------------------------------------
    res_a = pa.value
    print("cloud node report — one Xeon Phi 3120P, four tenants:")
    print(f"  A (native dgemm)   : status={res_a.status}, "
          f"total={res_a.total_time:.3f}s, verified="
          f"{abs(res_a.exit_record['c_checksum'] - res_a.exit_record['c_expected']) < 1e-6}")
    print(f"  B (RMA streaming)  : {report['b_gbps']:.2f} GB/s of 32MB reads")
    print(f"  C (offload dgemm)  : max error {report['c_err']:.2e}")
    print(f"  D (MPI allreduce)  : {report['d_allreduce']} (expect 6)")
    uos = machine.uos(0)
    print(f"  card: peak thread demand {uos.scheduler.peak_demand}, "
          f"{len(machine.kernel.processes)} host processes (one QEMU per VM + services)")
    assert res_a.status == 0
    assert report["c_err"] < 1e-9
    assert report["d_allreduce"] == 6
    print("OK")


if __name__ == "__main__":
    main()
