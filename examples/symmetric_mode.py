#!/usr/bin/env python
"""Symmetric mode: one MPI job spanning host, coprocessor and a VM.

§II-A: "in symmetric mode Xeon Phi can be viewed as an independent node
and ... a user can launch some processes of the same parallel
application on the host side and some other processes on the
accelerator, using for example MPI."  The paper leaves evaluating this
mode as future work; because MPI's intra-node fabric is SCIF and vPHI
virtualizes SCIF, a rank placed *inside a VM* joins the communicator
unmodified.

The job: a block-distributed dot product x.y with an allreduce, plus a
card-side compute phase scheduled by the uOS for the coprocessor ranks.

Run:  python examples/symmetric_mode.py
"""

import numpy as np

from repro import Machine
from repro.mpi import SUM, mpirun

N = 1_000_000


def main() -> None:
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")

    rng = np.random.default_rng(2017)
    x = rng.standard_normal(N)
    y = rng.standard_normal(N)

    def job(rank, ctx):
        # everyone computes its block
        block = N // rank.size
        lo = rank.rank * block
        hi = N if rank.rank == rank.size - 1 else lo + block
        partial = float(x[lo:hi] @ y[lo:hi])
        # coprocessor ranks charge their flops to the card's scheduler
        if ctx.label.startswith("card"):
            uos = machine.uos(0)
            yield from uos.run_compute(2.0 * (hi - lo), threads=56,
                                       efficiency=0.3, name=f"dot-{rank.rank}")
        total = yield from rank.allreduce(partial, SUM)
        where = yield from rank.allgather(ctx.label)
        return total, where

    placements = ["host", ("card", 0), ("card", 0), ("vm", vm)]
    results = mpirun(machine, placements, job)

    total, where = results[0]
    expect = float(x @ y)
    print(f"communicator: {len(placements)} ranks on {where}")
    print(f"allreduce(x.y) = {total:.6f}   (numpy: {expect:.6f})")
    for r, (t, _) in enumerate(results):
        assert abs(t - expect) < 1e-6, f"rank {r} disagrees"
    print(f"VM rank's traffic crossed the vPHI ring: "
          f"{vm.vphi.frontend.requests} requests")
    print("OK")


if __name__ == "__main__":
    main()
