#!/usr/bin/env python
"""Quickstart: boot the testbed, start a VM, talk SCIF to the Xeon Phi.

Reproduces the paper's core scenario in ~60 lines: a card-side SCIF
server, a guest client whose every call is intercepted by the vPHI
frontend, forwarded over virtio, and replayed by the QEMU backend
against the host driver.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.sim import us
from repro.workloads import ClientContext

PORT = 2500


def main() -> None:
    # --- the paper's testbed: E5-2695v2 host + one Xeon Phi 3120P ------
    machine = Machine(cards=1).boot()
    card_node = machine.card_node_id(0)
    print(f"booted: {machine.devices[0]} as SCIF node {card_node}")

    # --- a VM with vPHI installed --------------------------------------
    vm = machine.create_vm("vm0", ram_bytes=2 << 30)
    print(f"created: {vm} (vPHI wait scheme: {vm.vphi.config.wait_mode})")

    # --- card-side server: listens, echoes one message reversed -------
    slib = machine.scif(machine.card_process("echo-server"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, peer = yield from slib.accept(ep)
        print(f"[card]  accepted connection from node {peer[0]} port {peer[1]}")
        msg = yield from slib.recv(conn, 13)
        print(f"[card]  received: {msg.tobytes().decode()!r}")
        yield from slib.send(conn, msg.tobytes()[::-1])

    # --- guest client: identical code would run natively ---------------
    ctx = ClientContext.guest(vm, "guest-app")

    def client():
        ep = yield from ctx.lib.open()
        yield from ctx.lib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        yield from ctx.lib.send(ep, b"hello, mic0!!")
        echo = yield from ctx.lib.recv(ep, 13)
        dt = machine.sim.now - t0
        yield from ctx.lib.close(ep)
        print(f"[guest] echo: {echo.tobytes().decode()!r} "
              f"(round trip {dt / us(1):.0f} us simulated)")
        return echo.tobytes()

    machine.sim.spawn(server())
    proc = ctx.spawn(client())
    machine.run()
    assert proc.value == b"!!0cim ,olleh"

    print(f"\nvPHI ring traffic: {vm.vphi.frontend.requests} requests, "
          f"{vm.vphi.virtio.kicks} kicks, {vm.vphi.virtio.interrupts} interrupts")
    print(f"VM frozen for blocking handling: {vm.domain.paused_time * 1e6:.1f} us")
    print()
    from repro.analysis import render_breakdown

    print(render_breakdown(vm.vphi.frontend))
    print("OK")


if __name__ == "__main__":
    main()
