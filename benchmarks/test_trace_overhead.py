"""Observability overhead gate: spans must be free in simulated time.

The request-lifecycle span machinery (one span + ~12 phase marks per
forwarded op) is pure bookkeeping: it reads the clock, it never advances
it.  The gate is twofold:

* **simulated time** — the Fig 4 series is *byte-identical* with spans
  on and off.  Not approximately equal: the same floats, so the golden
  digests cannot drift when tracing defaults change.
* **wall-clock** — stamping spans may slow the simulator only modestly
  (< 2x on the Fig 4 workload; in practice a few percent).
"""

import time

from conftest import fresh_machine, print_table
from repro.analysis import check_span_invariants
from repro.vphi import VPhiConfig
from repro.workloads import ClientContext, sendrecv_latency

SIZES = [1, 64, 256, 1024, 4096, 16384, 65536]


def run_fig4_guest(trace_spans: bool):
    machine = fresh_machine()
    vm = machine.create_vm("vm0", vphi_config=VPhiConfig(trace_spans=trace_spans))
    t0 = time.perf_counter()
    series = sendrecv_latency(machine, ClientContext.guest(vm), SIZES)
    wall = time.perf_counter() - t0
    return series, wall, vm


def run_trace_overhead():
    spans_on, wall_on, vm_on = run_fig4_guest(True)
    spans_off, wall_off, vm_off = run_fig4_guest(False)
    return spans_on, wall_on, vm_on, spans_off, wall_off, vm_off


def test_trace_overhead(run_once):
    spans_on, wall_on, vm_on, spans_off, wall_off, vm_off = run_once(
        run_trace_overhead
    )

    rows = [
        ["spans recorded", str(len(vm_on.tracer.spans)),
         str(len(vm_off.tracer.spans))],
        ["wall-clock", f"{wall_on * 1e3:.1f} ms", f"{wall_off * 1e3:.1f} ms"],
    ]
    print_table("Tracing overhead (Fig 4 guest workload)",
                ["metric", "spans on", "spans off"], rows)

    # --- simulated time: byte-identical series, not approximately ---
    assert spans_on == spans_off, (
        "span bookkeeping changed simulated time — it must never yield"
    )
    # --- the machinery actually ran on one side and not the other ---
    assert len(vm_on.tracer.spans) > 0
    assert len(vm_off.tracer.spans) == 0 and not vm_off.tracer.active_spans
    assert check_span_invariants(vm_on.tracer) == []
    # --- wall-clock: bookkeeping stays cheap ---
    # generous bound: absolute floor absorbs timer noise on tiny runs
    assert wall_on < 2.0 * wall_off + 0.05, (
        f"span stamping cost {wall_on:.3f}s vs {wall_off:.3f}s without"
    )
