"""Ablation A5: the two native-mode launch paths of §IV-A.

"In native mode of execution there are two choices.  The user can either
ssh to the accelerator and execute the application locally, or launch the
MIC executable directly from the host."  The paper tests the latter
(micnativeloadex over vPHI) and rejects the ssh path for clouds — both
on performance (explicit copies over the emulated network) and isolation
grounds.  This bench quantifies both.
"""

import pytest

from conftest import fresh_machine_with_daemon, print_table
from repro.micnet import MicNetwork, NetBridge, SshDaemon, ssh_native_launch
from repro.mpss import micnativeloadex
from repro.workloads import ClientContext, DGEMM_BINARY

N = 2000
THREADS = 112


def run_launch_paths():
    # --- path 1: micnativeloadex from a VM through vPHI ---------------
    machine = fresh_machine_with_daemon()
    vm = machine.create_vm("vm0")
    ctx = ClientContext.guest(vm)
    p = ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY,
                                  argv=[str(N), str(THREADS)]))
    machine.run()
    tool = p.value

    # --- path 2: ssh from a bridged VM over the emulated mic0 ---------
    machine2 = fresh_machine_with_daemon()
    network = MicNetwork(machine2)
    daemon = SshDaemon(machine2, network=network).start()
    vm2 = machine2.create_vm("vm-bridged")
    bridge = NetBridge(machine2, vm2, network)

    def ssh_body():
        sock = bridge.socket()
        res = yield from ssh_native_launch(machine2, network, sock, DGEMM_BINARY,
                                           argv=[str(N), str(THREADS)], user="tenant")
        return res

    p2 = machine2.sim.spawn(ssh_body())
    machine2.run()
    ssh = p2.value
    sessions = len(daemon.sessions)
    return tool, ssh, sessions


def test_ablation_ssh_vs_micnativeloadex(run_once):
    tool, ssh, sessions = run_once(run_launch_paths)

    print_table(
        f"A5: native-mode launch paths from a VM (dgemm N={N}, {THREADS} threads)",
        ["path", "total (s)", "transfer (s)", "compute (s)"],
        [
            ["micnativeloadex + vPHI", f"{tool.total_time:.3f}",
             f"{tool.transfer_time:.3f}", f"{tool.compute_time:.3f}"],
            ["ssh over bridged mic0", f"{ssh.total_time:.3f}",
             f"{ssh.transfer_time:.3f}", f"{ssh.compute_time:.3f}"],
        ],
    )
    print(f"  ssh path left {sessions} logged-in session(s) on the shared card "
          "(the isolation cost §IV-A warns about); the vPHI path left 0")

    assert tool.status == 0 and ssh.status == 0
    # identical device-side computation
    assert ssh.compute_time == pytest.approx(tool.compute_time, rel=1e-6)
    # the explicit-copy path pays the emulated-network tax on 119MB
    assert ssh.transfer_time > 3 * tool.transfer_time
    assert ssh.total_time > tool.total_time
    # and the tenant is logged into the shared card
    assert sessions >= 1
