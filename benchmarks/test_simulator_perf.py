"""Performance-regression guards for the simulation library itself.

The hpc-parallel discipline: no optimization without measurement.  These
benches exercise the hot paths (event loop throughput, scatter-gather
copy bandwidth, end-to-end request rate) with pytest-benchmark's real
multi-round statistics, so a slowdown in the kernel or the memory model
shows up as a regression, not as a mysteriously slower test suite.
"""

import numpy as np

from repro import Machine
from repro.mem import PhysicalMemory, SGEntry
from repro.pcie import sg_copy
from repro.sim import Simulator

MB = 1 << 20


def test_event_loop_throughput(benchmark):
    """Schedule + fire 20k timeout events."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(20_000):
                yield sim.timeout(1e-6)

        sim.spawn(proc())
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0


def test_waitqueue_herd_wakeup(benchmark):
    """1000 sleepers woken 20 times (the §IV-B wake-all pattern)."""

    def run():
        from repro.sim import WaitQueue

        sim = Simulator()
        wq = WaitQueue(sim)
        alive = {"n": 0}

        def sleeper():
            for _ in range(20):
                yield wq.wait()
            alive["n"] += 1

        def waker():
            for _ in range(20):
                yield sim.timeout(1e-3)
                wq.wake_all()

        for _ in range(1000):
            sim.spawn(sleeper())
        sim.spawn(waker())
        sim.run()
        return alive["n"]

    assert benchmark(run) == 1000


def test_sg_copy_bandwidth(benchmark):
    """64MB scatter-gather copy between memories (numpy fast path)."""
    mem_a = PhysicalMemory(256 * MB)
    mem_b = PhysicalMemory(256 * MB)
    src_ext = mem_a.alloc(64 * MB)
    dst_ext = mem_b.alloc(64 * MB)
    src_ext.fill(0xAB)
    src = [SGEntry(mem_a, src_ext.addr + i * (8 * MB), 8 * MB) for i in range(8)]
    dst = [SGEntry(mem_b, dst_ext.addr, 64 * MB)]

    def run():
        return sg_copy(dst, src, 64 * MB)

    assert benchmark(run) == 64 * MB


def test_page_granular_address_space_access(benchmark):
    """4MB of page-wise virtual reads/writes through the page tables."""
    from repro.mem import AddressSpace

    space = AddressSpace(PhysicalMemory(64 * MB), "bench")
    vma = space.mmap(4 * MB, populate=True)
    payload = np.arange(4 * MB, dtype=np.uint8)

    def run():
        space.write(vma.start, payload)
        return space.read(vma.start, 4 * MB)[-1]

    assert benchmark(run) == payload[-1]


def test_end_to_end_request_rate(benchmark):
    """Full-stack vPHI round trips per wall-second (20 sends)."""

    def run():
        machine = Machine(cards=1).boot()
        vm = machine.create_vm("vm0")
        slib = machine.scif(machine.card_process("srv"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, 9999)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            for _ in range(20):
                yield from slib.recv(conn, 64)

        glib = vm.vphi.libscif(vm.guest_process("app"))

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (machine.card_node_id(0), 9999))
            for _ in range(20):
                yield from glib.send(ep, bytes(64))
            return True

        machine.sim.spawn(server())
        c = vm.spawn_guest(client())
        machine.run()
        return c.value

    assert benchmark(run) is True
