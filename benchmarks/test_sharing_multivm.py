"""The sharing experiment: N VMs driving one Xeon Phi simultaneously.

The paper's headline claim (§I): "vPHI is the first approach that enables
Xeon Phi sharing between multiple VMs running on the same physical node"
— passthrough assigns the card to exactly one VM.  This bench launches
the same dgemm from 1, 2 and 4 VMs concurrently and shows (a) every
launch completes correctly, (b) compute is multiplexed by the uOS
scheduler, (c) the PCIe link is shared for the binary transfers.
"""


from conftest import fresh_machine_with_daemon, print_table
from repro.mpss import micnativeloadex
from repro.workloads import ClientContext, DGEMM_BINARY

N = 4000
THREADS = 224
VM_COUNTS = [1, 2, 4]


def run_sharing():
    out = []
    for nvms in VM_COUNTS:
        machine = fresh_machine_with_daemon()
        procs = []
        for i in range(nvms):
            vm = machine.create_vm(f"vm{i}")
            ctx = ClientContext.guest(vm, f"loader{i}")
            procs.append(
                ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY,
                                          argv=[str(N), str(THREADS)]))
            )
        machine.run()
        results = [p.value for p in procs]
        uos = machine.uos(0)
        out.append((nvms, results, uos.scheduler.peak_demand))
    return out


def test_sharing_multivm(run_once):
    data = run_once(run_sharing)

    solo_time = data[0][1][0].total_time
    rows = []
    for nvms, results, peak_demand in data:
        worst = max(r.total_time for r in results)
        rows.append([
            str(nvms),
            f"{worst:.3f}",
            f"{worst / solo_time:.2f}x",
            str(peak_demand),
            str(sum(r.status == 0 for r in results)),
        ])
    print_table(
        "Sharing: concurrent dgemm launches from N VMs (one 3120P)",
        ["VMs", "worst total(s)", "vs solo", "peak thread demand", "ok"],
        rows,
    )

    for nvms, results, peak_demand in data:
        # every VM's launch completed and computed correctly
        assert all(r.status == 0 for r in results)
        # the card saw the aggregate demand (sharing, not serialization
        # at the API boundary)
        if nvms > 1:
            assert peak_demand > THREADS
    # 2 VMs oversubscribe the card 2x: each runs ~2x slower than solo
    # (processor sharing), not 1x (that would mean no sharing pressure)
    # and not serially-queued-forever.
    two_vm_worst = max(r.total_time for r in data[1][1])
    assert 1.5 * solo_time < two_vm_worst < 3.0 * solo_time
    four_vm_worst = max(r.total_time for r in data[2][1])
    assert four_vm_worst > two_vm_worst
