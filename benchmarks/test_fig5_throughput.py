"""Figure 5: remote memory access throughput, native vs vPHI.

Paper anchors: the host remote read peaks at 6.4 GB/s; vPHI reaches
4.6 GB/s = 72 % of native (§IV-B).
"""

import pytest

from conftest import MB, fmt_size, fresh_machine, print_table
from repro.workloads import ClientContext, rma_read_throughput

SIZES = [64 * 1024, 256 * 1024, MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB]


def run_fig5():
    machine = fresh_machine()
    native = rma_read_throughput(machine, ClientContext.native(machine), SIZES)

    machine2 = fresh_machine()
    vm = machine2.create_vm("vm0")
    vphi = rma_read_throughput(machine2, ClientContext.guest(vm), SIZES)
    return native, vphi


def test_fig5_remote_read_throughput(run_once):
    native, vphi = run_once(run_fig5)

    rows = []
    for (size, nbw), (_, vbw) in zip(native, vphi):
        rows.append(
            [fmt_size(size), f"{nbw / 1e9:.2f}", f"{vbw / 1e9:.2f}",
             f"{vbw / nbw:.0%}"]
        )
    print_table(
        "Fig 5: remote read throughput (GB/s)",
        ["size", "native", "vPHI", "ratio"],
        rows,
    )

    native_peak = native[-1][1]
    vphi_peak = vphi[-1][1]
    # --- anchors ---
    assert native_peak == pytest.approx(6.4e9, rel=0.01)
    assert vphi_peak == pytest.approx(4.6e9, rel=0.02)
    assert vphi_peak / native_peak == pytest.approx(0.72, abs=0.015)
    # --- shape: both ramp with size; native dominates everywhere ---
    for (size, nbw), (_, vbw) in zip(native, vphi):
        assert nbw > vbw
    nbws = [bw for _, bw in native]
    vbws = [bw for _, bw in vphi]
    assert all(b >= a for a, b in zip(nbws, nbws[1:]))
    assert all(b >= a for a, b in zip(vbws, vbws[1:]))
    # --- the gap is worst at small sizes (fixed 375us dominates) ---
    assert vphi[0][1] / native[0][1] < 0.2
