"""Figure 4: send-receive communication latency, native vs vPHI.

Paper anchors: 7 us native @ 1 B; 382 us through vPHI; the gap is a
constant ~375 us offset across sizes, 93 % of it attributed to the
frontend driver's sleep/wake-up scheme (§IV-B breakdown).
"""

import pytest

from conftest import fmt_size, fresh_machine, print_table
from repro.sim import us
from repro.workloads import ClientContext, sendrecv_latency

SIZES = [1, 64, 256, 1024, 4096, 16384, 65536]


def run_fig4():
    machine = fresh_machine()
    native = sendrecv_latency(machine, ClientContext.native(machine), SIZES)

    machine2 = fresh_machine()
    vm = machine2.create_vm("vm0")
    vphi = sendrecv_latency(machine2, ClientContext.guest(vm), SIZES)
    # every forwarded op (open/connect/sends/close) pays the wait scheme
    # exactly once; the per-request cost is the §IV-B breakdown quantity.
    fe = vm.vphi.frontend
    wait_per_request = fe.tracer.accumulators["vphi.wait_scheme_time"] / fe.requests
    return native, vphi, wait_per_request


def test_fig4_send_receive_latency(run_once):
    native, vphi, wait_per_request = run_once(run_fig4)

    rows = []
    gaps = []
    for (size, nl), (_, vl) in zip(native, vphi):
        gaps.append(vl - nl)
        rows.append(
            [fmt_size(size), f"{nl / us(1):.1f}", f"{vl / us(1):.1f}",
             f"{(vl - nl) / us(1):.1f}"]
        )
    print_table(
        "Fig 4: send-receive latency (us)",
        ["size", "native", "vPHI", "overhead"],
        rows,
    )
    print(f"breakdown: wait-scheme share of overhead = "
          f"{wait_per_request / gaps[0]:.1%} (paper: 93%)")

    # --- anchors ---
    assert native[0][1] == pytest.approx(us(7), rel=0.02)
    assert vphi[0][1] == pytest.approx(us(382), rel=0.01)
    # --- shape: the overhead is a (nearly) constant offset ---
    assert max(gaps) - min(gaps) < 0.05 * gaps[0]
    # --- breakdown: ~93% of the overhead is the wait scheme ---
    assert wait_per_request / gaps[0] == pytest.approx(0.93, abs=0.01)
    # --- both series increase with size ---
    assert all(b >= a for a, b in zip([l for _, l in native], [l for _, l in native][1:]))
    assert all(b >= a for a, b in zip([l for _, l in vphi], [l for _, l in vphi][1:]))
