"""Ablation A7: EVENT_IDX-style notification suppression.

§II-C's transport charges one vmexit per kick and one injection per
interrupt.  The standard virtio optimization (suppress notifications
while the peer is already active) was not in the paper's prototype; this
ablation measures what it would have saved on bursty traffic.
"""

import pytest

from conftest import fresh_machine, print_table
from repro.sim import us
from repro.vphi import VPhiConfig

PORT = 26500
BURST = 64


def run_notification_ablation():
    out = {}
    for label, cfg in (
        ("plain", VPhiConfig()),
        ("suppressed", VPhiConfig(suppress_notifications=True)),
    ):
        machine = fresh_machine()
        vm = machine.create_vm("vm0", vphi_config=cfg)
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("sink"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield from slib.recv(conn, BURST)

        glib = vm.vphi.libscif(vm.guest_process("app"))

        def opener():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            return ep

        machine.sim.spawn(server())
        p = vm.spawn_guest(opener())
        machine.run()
        ep = p.value
        t0 = machine.sim.now
        done = []

        def sender():
            yield from glib.send(ep, b"\x01")
            done.append(machine.sim.now)

        for _ in range(BURST):
            vm.spawn_guest(sender())
        machine.run()
        v = vm.vphi.virtio
        out[label] = {
            "makespan": max(done) - t0,
            "kicks": v.kicks,
            "suppressed_kicks": v.suppressed_kicks,
            "irqs": v.interrupts,
            "suppressed_irqs": v.suppressed_irqs,
        }
    return out


def test_ablation_notification_suppression(run_once):
    data = run_once(run_notification_ablation)

    rows = []
    for label in ("plain", "suppressed"):
        d = data[label]
        rows.append([
            label,
            f"{d['makespan'] / us(1):.0f}",
            f"{d['kicks']}",
            f"{d['suppressed_kicks']}",
            f"{d['irqs']}",
            f"{d['suppressed_irqs']}",
        ])
    print_table(
        f"A7: {BURST} concurrent 1B guest sends, notification suppression",
        ["mode", "makespan (us)", "vmexits", "kicks saved", "irqs", "irqs saved"],
        rows,
    )

    plain, supp = data["plain"], data["suppressed"]
    # every request trapped out without suppression
    assert plain["kicks"] >= BURST
    # suppression folds the burst into a handful of vmexits
    assert supp["kicks"] + supp["suppressed_kicks"] >= BURST
    assert supp["kicks"] < plain["kicks"] / 2
    # makespan is a wash: the blocking backend, not notification cost,
    # bounds the burst (interrupt coalescing can defer the odd wakeup)
    assert supp["makespan"] == pytest.approx(plain["makespan"], rel=0.05)
