"""Ablation A8: batched ring submission (one kick per batch).

§II-C charges one vmexit per kick.  The paper's prototype kicks the
backend once per request; :meth:`VPhiFrontend.submit_batch` posts a
burst of descriptor chains back-to-back and kicks once per posting
window instead — the same trick the segmented-transfer path uses to
avoid one vmexit per segment.  This ablation quantifies the vmexits
saved on a 16-request burst.
"""

import numpy as np

from conftest import fresh_machine, print_table
from repro.sim import us
from repro.vphi import BatchCall, VPhiOp, spec_for

PORT = 26600
BURST = 16


def run_batching_ablation():
    out = {}
    for label in ("per-request kicks", "one batch"):
        machine = fresh_machine()
        vm = machine.create_vm("vm0")
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("sink"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield from slib.recv(conn, BURST)

        glib = vm.vphi.libscif(vm.guest_process("app"))
        frontend = vm.vphi.frontend
        send_args = spec_for(VPhiOp.SEND).marshal({})

        def opener():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            return ep

        machine.sim.spawn(server())
        p = vm.spawn_guest(opener())
        machine.run()
        ep = p.value
        v = vm.vphi.virtio
        kicks_before = v.kicks
        t0 = machine.sim.now

        if label == "per-request kicks":

            def burst():
                for _ in range(BURST):
                    yield from glib.send(ep, b"\x01")

        else:

            def burst():
                calls = [
                    BatchCall(op=VPhiOp.SEND, handle=ep.handle,
                              args=send_args,
                              out_data=np.ones(1, dtype=np.uint8))
                    for _ in range(BURST)
                ]
                yield from frontend.submit_batch(calls)

        vm.spawn_guest(burst())
        machine.run()
        out[label] = {
            "makespan": machine.sim.now - t0,
            "kicks": v.kicks - kicks_before,
            "requests": frontend.requests,
        }
    return out


def test_ablation_batched_submission(run_once):
    data = run_once(run_batching_ablation)

    rows = []
    for label in ("per-request kicks", "one batch"):
        d = data[label]
        rows.append([
            label,
            f"{d['makespan'] / us(1):.0f}",
            f"{d['kicks']}",
            f"{BURST - d['kicks']}",
        ])
    print_table(
        f"A8: {BURST}-request guest send burst, per-request vs batched kicks",
        ["mode", "makespan (us)", "vmexits", "vmexits saved"],
        rows,
    )

    seq, batch = data["per-request kicks"], data["one batch"]
    # the sequential loop traps out once per request
    assert seq["kicks"] == BURST
    # the whole burst fits the default 256-entry ring: exactly one kick
    assert batch["kicks"] == 1
    assert batch["kicks"] < seq["kicks"]
    # batching also amortizes the wait: the burst completes faster than
    # sixteen sequential ring round trips
    assert batch["makespan"] < seq["makespan"]
