"""Shared benchmark fixtures and table rendering.

Every benchmark file regenerates one figure of the paper's §IV: it
builds a fresh simulated testbed, runs the exact workload the paper
describes, prints the figure's series, and asserts the *shape* the paper
reports (who wins, by what factor, where the overhead amortizes).
"""

import pytest

from repro import Machine
from repro.coi import start_coi_daemon

MB = 1 << 20
GB = 1 << 30


def fresh_machine(cards: int = 1) -> Machine:
    """The paper's testbed: E5-2695v2 host + 3120P card(s)."""
    return Machine(cards=cards).boot()


def fresh_machine_with_daemon(cards: int = 1) -> Machine:
    m = fresh_machine(cards)
    for c in range(cards):
        start_coi_daemon(m, card=c)
    return m


def fmt_size(nbytes: int) -> str:
    if nbytes >= GB:
        return f"{nbytes / GB:g}GB"
    if nbytes >= MB:
        return f"{nbytes / MB:g}MB"
    if nbytes >= 1024:
        return f"{nbytes / 1024:g}KB"
    return f"{nbytes}B"


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Render one figure's series as the paper would tabulate it."""
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def run_once(benchmark):
    """pytest-benchmark wrapper: one deterministic simulation per round."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
