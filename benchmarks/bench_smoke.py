#!/usr/bin/env python
"""Benchmark smoke gate: regenerate the Fig 4/5 series, diff against goldens.

The simulation is deterministic, so the exact latency/throughput series
behind Fig 4 (send-recv latency) and Fig 5 (remote-read throughput) are
committed as golden JSON digests.  CI reruns both figures on every push:

    python benchmarks/bench_smoke.py --check          # gate (exit 1 on drift)
    python benchmarks/bench_smoke.py --check --out d/ # also dump series
    python benchmarks/bench_smoke.py --update         # re-bless the goldens

Any change that moves a single float in either series fails the gate —
intentional model changes must re-bless with --update, which makes perf
drift reviewable in the diff instead of silent.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))
if str(REPO / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO / "benchmarks"))

from repro import Machine  # noqa: E402
from repro.workloads import (  # noqa: E402
    ClientContext,
    rma_read_throughput,
    sendrecv_latency,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
MB = 1 << 20
FIG4_SIZES = [1, 64, 256, 1024, 4096, 16384, 65536]
FIG5_SIZES = [64 * 1024, 256 * 1024, MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB]


def _run_fig4() -> dict:
    """Fig 4: send-receive latency (seconds) per size, native and vPHI."""
    m = Machine(cards=1).boot()
    native = sendrecv_latency(m, ClientContext.native(m), FIG4_SIZES)
    m2 = Machine(cards=1).boot()
    vm = m2.create_vm("vm0")
    vphi = sendrecv_latency(m2, ClientContext.guest(vm), FIG4_SIZES)
    return {
        "figure": "fig4",
        "unit": "seconds",
        "native": [[s, t] for s, t in native],
        "vphi": [[s, t] for s, t in vphi],
    }


def _run_fig5() -> dict:
    """Fig 5: remote-read throughput (B/s) per size, native and vPHI."""
    m = Machine(cards=1).boot()
    native = rma_read_throughput(m, ClientContext.native(m), FIG5_SIZES)
    m2 = Machine(cards=1).boot()
    vm = m2.create_vm("vm0")
    vphi = rma_read_throughput(m2, ClientContext.guest(vm), FIG5_SIZES)
    return {
        "figure": "fig5",
        "unit": "bytes_per_second",
        "native": [[s, bw] for s, bw in native],
        "vphi": [[s, bw] for s, bw in vphi],
    }


def _run_a10() -> dict:
    """A10: aggregate multi-VM RMA throughput (B/s) vs backend pool size.

    Pool size 0 is the paper's blocking dispatch; the series pins down
    both the blocking baseline and the pooled improvement curve.
    """
    from test_ablation_backend_pool import run_scenario

    series = []
    for workers in (0, 1, 2, 4, 8):
        _, _, tput, _, _ = run_scenario(workers)
        series.append([workers, tput])
    return {
        "figure": "a10",
        "unit": "bytes_per_second",
        "throughput_by_workers": series,
    }


def _run_a11() -> dict:
    """A11: session recovery time (seconds) vs journal size.

    One CARD_RESET against a queue-policy VM holding N full sessions;
    the series pins the per-journaled-op replay cost so recovery-path
    changes show up as reviewable golden drift, not silent regressions.
    """
    from test_ablation_session_recovery import run_session_recovery_ablation

    series = run_session_recovery_ablation()
    return {
        "figure": "a11",
        "unit": "seconds",
        "rebuild_by_replayed_ops": [[ops, t] for _, ops, t, _ in series],
    }


def _run_a12() -> dict:
    """A12: arbiter policy fairness/tail at 10x oversubscription.

    200 tenant VMs (weighted interactive classes + best-effort bulk)
    drive the open-loop harness under every arbiter policy; the golden
    pins the share-weighted Jain index, the worst gold-tenant p99, and
    the completed/shed totals per policy.
    """
    from test_ablation_qos import gold_p99, run_qos_ablation

    reports = run_qos_ablation()
    return {
        "figure": "a12",
        "unit": "mixed",
        "weighted_jain_by_policy": [
            [p, r.weighted_jain] for p, r in reports.items()],
        "gold_p99_by_policy": [
            [p, gold_p99(r)] for p, r in reports.items()],
        "completed_by_policy": [
            [p, r.total_completed] for p, r in reports.items()],
        "shed_by_policy": [
            [p, r.total_shed] for p, r in reports.items()],
    }


def _run_a13() -> dict:
    """A13: live-migration downtime vs journal size; churn vs SLO.

    Cross-host journal-replay migration on a 2-host cluster: the
    downtime series pins the per-journaled-op replay cost (the
    scheduler prices moves by journal size); the churn series pins how
    many fixed-cadence RMA rounds miss their SLO per migration (parked
    at the fence, completed late, never errored).
    """
    from test_ablation_cluster import run_churn_ablation, run_downtime_ablation

    downtime = run_downtime_ablation()
    churn = run_churn_ablation()
    return {
        "figure": "a13",
        "unit": "mixed",
        "downtime_by_replayed_ops": [[ops, t] for _, ops, t, _ in downtime],
        "violations_by_migrations": [[k, v] for k, v, _, _ in churn],
        "completed_by_migrations": [[k, c] for k, _, c, _ in churn],
        "errors_by_migrations": [[k, e] for k, _, _, e in churn],
    }


def _run_a14() -> dict:
    """A14: power model — DGEMM vs TDP cap; guest RMA tail under throttle.

    The cap sweep pins the throttle loop's working points (time, average
    watts, GFLOPS/W, throttle residency per cap); the tail pair pins the
    cost-multiplier surcharge on guest vreadfrom p50/p99 plus the
    backend's throttled-dispatch count.  Any change to the P-state
    ladder, power split, governor policy, or registry cost coupling
    drifts this golden.
    """
    from test_ablation_power import TAIL_OP, run_power_ablation, run_tail_scenario

    rows = run_power_ablation()
    base = run_tail_scenario(False)
    slow = run_tail_scenario(True)
    return {
        "figure": "a14",
        "unit": "mixed",
        "time_by_cap": [[cap, t] for cap, t, _, _, _ in rows],
        "avg_watts_by_cap": [[cap, w] for cap, _, w, _, _ in rows],
        "gflops_per_watt_by_cap": [[cap, e] for cap, _, _, e, _ in rows],
        "throttle_residency_by_cap": [[cap, r] for cap, _, _, _, r in rows],
        "guest_rma_p99": [["p0", base[TAIL_OP]["p99"]],
                          ["deep", slow[TAIL_OP]["p99"]]],
        "throttled_ops": [["p0", base["_throttled_ops"]["count"]],
                          ["deep", slow["_throttled_ops"]["count"]]],
    }


FIGURES = {"fig4": _run_fig4, "fig5": _run_fig5, "a10": _run_a10,
           "a11": _run_a11, "a12": _run_a12, "a13": _run_a13,
           "a14": _run_a14}


def canonical(series: dict) -> str:
    return json.dumps(series, sort_keys=True, indent=2) + "\n"


def digest(series: dict) -> str:
    return hashlib.sha256(canonical(series).encode()).hexdigest()


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def bless(name: str, series: dict) -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    payload = dict(series, sha256=digest(series))
    golden_path(name).write_text(canonical(payload))
    print(f"blessed {golden_path(name)} ({payload['sha256'][:12]})")


def diff_series(name: str, golden: dict, got: dict) -> list[str]:
    lines = []
    sides = [k for k, v in golden.items() if isinstance(v, list)]
    for side in sides:
        for (gsize, gval), (size, val) in zip(golden[side], got[side]):
            if gsize != size or gval != val:
                lines.append(
                    f"  {name}.{side} @ {gsize}: golden {gval!r} != got {val!r}"
                )
    return lines


def check(name: str, series: dict, out_dir: Path | None) -> bool:
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.json").write_text(
            canonical(dict(series, sha256=digest(series)))
        )
    path = golden_path(name)
    if not path.exists():
        print(f"FAIL {name}: no golden at {path} (run with --update)")
        return False
    golden = json.loads(path.read_text())
    recorded = golden.pop("sha256", None)
    if recorded != digest(golden):
        print(f"FAIL {name}: golden file digest mismatch (corrupted golden?)")
        return False
    if digest(golden) == digest(series):
        print(f"ok   {name}: series matches golden ({recorded[:12]})")
        return True
    print(f"FAIL {name}: series drifted from golden {path.name}")
    for line in diff_series(name, golden, series)[:20]:
        print(line)
    return False


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="regenerate series and fail on any drift")
    mode.add_argument("--update", action="store_true",
                      help="re-bless the golden files from a fresh run")
    ap.add_argument("--out", type=Path, default=None,
                    help="directory to dump the regenerated series (artifacts)")
    ap.add_argument("--figures", nargs="*", default=sorted(FIGURES),
                    choices=sorted(FIGURES), help="subset of figures to run")
    args = ap.parse_args(argv)

    ok = True
    for name in args.figures:
        series = FIGURES[name]()
        if args.update:
            bless(name, series)
        else:
            ok &= check(name, series, args.out)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
