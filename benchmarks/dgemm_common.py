"""Shared driver for Figures 6-8: dgemm launch+execution, native vs VM.

§IV-C: "we execute micnativeloadex with dgemm as the supplied binary on
the host and on the VM ... we also measure the total time of execution
from the moment that micnativeloadex is launched ... until the final
results are produced.  We vary the number of threads as well as the size
of the matrices."  The Y axis is the normalized total time; the X axis
the total size of the two input arrays.
"""

from __future__ import annotations

import pytest

from conftest import fmt_size, fresh_machine_with_daemon, print_table
from repro.workloads import ClientContext, DGEMM_BINARY, input_bytes
from repro.mpss import micnativeloadex

#: matrix orders swept (total input size = 2*N^2*8 bytes: 4 MB .. 2.3 GB)
PROBLEM_SIZES = [500, 1000, 2000, 4000, 8000, 12000]


def run_dgemm_figure(threads: int):
    """One figure's sweep: (n, native LaunchResult, vphi LaunchResult)."""
    results = []
    for n in PROBLEM_SIZES:
        machine = fresh_machine_with_daemon()
        ctx = ClientContext.native(machine, f"native-{n}")
        p = ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY,
                                      argv=[str(n), str(threads)]))
        machine.run()
        native = p.value

        machine2 = fresh_machine_with_daemon()
        vm = machine2.create_vm("vm0")
        gctx = ClientContext.guest(vm, f"guest-{n}")
        p2 = gctx.spawn(micnativeloadex(machine2, gctx, DGEMM_BINARY,
                                        argv=[str(n), str(threads)]))
        machine2.run()
        vphi = p2.value
        results.append((n, native, vphi))
    return results


def report_and_check(results, threads: int, fig: str):
    rows = []
    ratios = []
    for n, native, vphi in results:
        ratio = vphi.total_time / native.total_time
        ratios.append(ratio)
        rows.append([
            fmt_size(input_bytes(n)),
            f"{native.total_time:.3f}",
            f"{vphi.total_time:.3f}",
            f"{ratio:.3f}",
            f"{native.compute_time:.3f}",
        ])
    print_table(
        f"Fig {fig}: dgemm launch+execution, {threads} threads "
        "(normalized total time, native=1.0)",
        ["input", "native(s)", "vPHI(s)", "vPHI/native", "compute(s)"],
        rows,
    )

    # --- shape assertions (§IV-C conclusions) ---
    # 1. device execution time identical native vs vPHI
    for n, native, vphi in results:
        assert vphi.compute_time == pytest.approx(native.compute_time, rel=1e-6), n
    # 2. relative overhead shrinks as the experiment grows
    assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:])), ratios
    # 3. it is visible for small inputs and negligible for large ones
    assert ratios[0] > 1.03
    assert ratios[-1] < 1.02
    return ratios
