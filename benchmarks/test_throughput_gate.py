"""Hard wall-clock throughput floors for the simulation fast path.

Unlike :mod:`test_simulator_perf` (statistical trend data via
pytest-benchmark), these are *gates*: each test measures real work per
wall-second and fails below an absolute floor.  The floors carry
generous margins — roughly 3x below what the optimized fast path
delivers on a loaded 1-core CI runner — but sit well *above* what the
pre-optimization code achieved, so reintroducing a per-page memory walk,
a flat-gather temporary, or a heap-only scheduler trips the gate rather
than silently eating the 10x win.

Methodology notes:

* The Fig 5 scenario is measured on its **second** run in-process.  The
  first run pays one-time costs the gate should not charge against the
  datapath — allocator arena growth, import-time compilation, and (on
  some kernels) hundreds of thousands of minor faults while the heap
  first touches its pages.  Steady-state throughput is what the fast
  path owns.
* Floors are wall-normalized work rates (events/sec, bytes/sec), not
  wall seconds, so they stay meaningful when the workload list changes.
* The Fig 5 gate runs the **full** size sweep (64KB..256MB).  The win
  lives in the large transfers; a small-size-only scenario was never
  slow and would gate nothing.
"""

import time

from conftest import fresh_machine
from repro.sim import Simulator
from repro.workloads import ClientContext, rma_read_throughput

from test_fig5_throughput import SIZES as FIG5_SIZES

#: scheduler floor: schedule + fire timeout events through the calendar
#: queue.  The optimized kernel clears ~350k/s on this class of runner;
#: the floor is ~3x under that.
EVENTS_PER_SEC_FLOOR = 100_000

#: Fig 5 floor: guest bytes transferred per wall-second across the full
#: native + vPHI sweep.  The zero-temp streaming datapath clears
#: ~400 MB/s warm; the per-page/flat-gather datapath it replaced managed
#: ~20 MB/s, an order of magnitude under the floor.
FIG5_BYTES_PER_SEC_FLOOR = 100e6


def test_scheduler_events_per_sec_floor():
    n = 200_000

    def run() -> float:
        sim = Simulator()

        def proc():
            for _ in range(n):
                yield sim.timeout(1e-6)

        sim.spawn(proc())
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    run()  # warm the allocator and code paths
    elapsed = run()
    rate = n / elapsed
    print(f"\nscheduler: {rate:,.0f} events/s ({elapsed:.2f}s for {n:,})")
    assert rate > EVENTS_PER_SEC_FLOOR, (
        f"scheduler throughput {rate:,.0f} events/s fell below the "
        f"{EVENTS_PER_SEC_FLOOR:,} floor"
    )


def _run_fig5_scenario():
    """One full Fig 5 sweep (native + guest); returns the guest tracer."""
    machine = fresh_machine()
    rma_read_throughput(machine, ClientContext.native(machine), FIG5_SIZES)
    machine2 = fresh_machine()
    vm = machine2.create_vm("vm0")
    rma_read_throughput(machine2, ClientContext.guest(vm), FIG5_SIZES)
    return vm.tracer


def test_fig5_scenario_throughput_floor():
    _run_fig5_scenario()  # warmup: arenas, imports, first-touch faults
    # best of two: minor-fault servicing cost varies run to run on some
    # kernels even at steady state, so a single sample can read 2-3x
    # slow.  The datapath's own cost is the floor of the distribution.
    elapsed = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        tracer = _run_fig5_scenario()
        elapsed = min(elapsed, time.perf_counter() - t0)

    total_bytes = 2 * sum(FIG5_SIZES)  # native sweep + vPHI sweep
    rate = total_bytes / elapsed
    # the forwarded-op rate rides along as observability: every counter
    # key of the exact form "vphi.op.<name>" is one submitted request
    ops = sum(v for k, v in tracer.counters.items()
              if k.startswith("vphi.op.") and "." not in k[len("vphi.op."):])
    print(f"\nfig5 sweep: {elapsed:.2f}s wall, {rate / 1e6:,.1f} MB/s, "
          f"{ops} vPHI ops ({ops / elapsed:,.0f} ops/s)")
    assert ops > 0
    assert rate > FIG5_BYTES_PER_SEC_FLOOR, (
        f"Fig 5 scenario moved {rate / 1e6:,.1f} MB per wall-second, below "
        f"the {FIG5_BYTES_PER_SEC_FLOOR / 1e6:,.0f} MB/s floor — the "
        f"simulation fast path has regressed"
    )
