"""Wall-clock throughput gates for the simulation fast path.

Unlike :mod:`test_simulator_perf` (statistical trend data via
pytest-benchmark), these are *gates*: each test measures real work per
wall-second and fails below a floor.  Absolute floors would be flaky on
shared CI runners — a loaded or slow machine fails a rate picked on a
fast one even though the code is fine — so every floor is **calibrated
on the same runner, in the same process, right before the measurement**:

* the scheduler gate is floored against a raw ``heapq`` push/pop loop —
  the primitive the calendar queue replaced.  The optimized kernel runs
  a full generator-process timeout cycle at ~1/2.5 the raw-heap rate;
  the floor sits at 1/10, so the pre-optimization kernel (~10x slower
  end to end) trips it on any hardware while a 2-3x-loaded runner does
  not.
* the Fig 5 gate is floored against the two resources the scenario
  consumes — interpreter throughput (the same ``heapq`` loop) and
  memory bandwidth (``np.copyto`` over a large buffer) — taking the
  *more forgiving* of the two so a runner that is weak in only one
  resource does not false-fail.  The optimized datapath moves ~100
  guest bytes per heap-op-equivalent and ~1/40th of raw memcpy; the
  per-page/flat-gather datapath it replaced managed ~5 bytes per
  heap-op, well under the 24-byte floor ratio.

Methodology notes:

* Scenarios are measured on their **second** run in-process.  The first
  run pays one-time costs the gate should not charge against the
  datapath — allocator arena growth, import-time compilation, and (on
  some kernels) hundreds of thousands of minor faults while the heap
  first touches its pages.  Steady-state throughput is what the fast
  path owns.
* Floors are wall-normalized work rates (events/sec, bytes/sec), not
  wall seconds, so they stay meaningful when the workload list changes.
* The Fig 5 gate runs the **full** size sweep (64KB..256MB).  The win
  lives in the large transfers; a small-size-only scenario was never
  slow and would gate nothing.
"""

import heapq
import time

import numpy as np
from conftest import fresh_machine
from repro.sim import Simulator
from repro.workloads import ClientContext, rma_read_throughput

from test_fig5_throughput import SIZES as FIG5_SIZES

#: scheduler floor: fraction of the raw-heapq reference rate the full
#: simulator must clear.  Measured ~1/2.5 on the optimized kernel
#: (e.g. 330k events/s against an 850k/s reference); the pre-calendar
#: kernel ran ~1/25.
EVENTS_HEAP_RATIO_FLOOR = 1 / 10

#: Fig 5 floor, CPU leg: guest bytes per raw-heapq-op-equivalent.
#: Measured ~100 bytes/op on the optimized datapath; the per-page
#: datapath it replaced managed ~5.
FIG5_BYTES_PER_HEAP_OP_FLOOR = 24

#: Fig 5 floor, memory leg: fraction of raw memcpy bandwidth.  Measured
#: ~1/40 on the optimized datapath (each guest byte crosses the bounce /
#: DMA / copy-out stages several times plus the native sweep).
FIG5_MEMCPY_RATIO_FLOOR = 1 / 160


def _heap_reference_rate(n: int = 200_000) -> float:
    """Raw heapq push+pop entries/sec — the runner's interpreter speed
    expressed in the gate's own units."""
    best = 0.0
    for _ in range(2):
        h: list = []
        push, pop = heapq.heappush, heapq.heappop
        t0 = time.perf_counter()
        for i in range(n):
            push(h, (i * 1e-6, i, None))
        for _ in range(n):
            pop(h)
        best = max(best, n / (time.perf_counter() - t0))
    return best


def _memcpy_reference_rate(nbytes: int = 64 << 20, reps: int = 8) -> float:
    """Flat ``np.copyto`` bytes/sec — the runner's memory bandwidth."""
    src = np.ones(nbytes, dtype=np.uint8)
    dst = np.empty_like(src)
    np.copyto(dst, src)  # warm both buffers
    best = 0.0
    for _ in range(2):
        t0 = time.perf_counter()
        for _ in range(reps):
            np.copyto(dst, src)
        best = max(best, nbytes * reps / (time.perf_counter() - t0))
    return best


def test_scheduler_events_per_sec_floor():
    n = 200_000

    def run() -> float:
        sim = Simulator()

        def proc():
            for _ in range(n):
                yield sim.timeout(1e-6)

        sim.spawn(proc())
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    run()  # warm the allocator and code paths
    elapsed = run()
    rate = n / elapsed
    ref = _heap_reference_rate()
    floor = ref * EVENTS_HEAP_RATIO_FLOOR
    print(f"\nscheduler: {rate:,.0f} events/s "
          f"(heapq ref {ref:,.0f}/s, floor {floor:,.0f}/s)")
    assert rate > floor, (
        f"scheduler throughput {rate:,.0f} events/s fell below "
        f"{floor:,.0f}/s — 1/{1 / EVENTS_HEAP_RATIO_FLOOR:.0f} of this "
        f"runner's {ref:,.0f}/s raw-heapq rate"
    )


def _run_fig5_scenario():
    """One full Fig 5 sweep (native + guest); returns the guest tracer."""
    machine = fresh_machine()
    rma_read_throughput(machine, ClientContext.native(machine), FIG5_SIZES)
    machine2 = fresh_machine()
    vm = machine2.create_vm("vm0")
    rma_read_throughput(machine2, ClientContext.guest(vm), FIG5_SIZES)
    return vm.tracer


def test_fig5_scenario_throughput_floor():
    _run_fig5_scenario()  # warmup: arenas, imports, first-touch faults
    # best of two: minor-fault servicing cost varies run to run on some
    # kernels even at steady state, so a single sample can read 2-3x
    # slow.  The datapath's own cost is the floor of the distribution.
    elapsed = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        tracer = _run_fig5_scenario()
        elapsed = min(elapsed, time.perf_counter() - t0)

    total_bytes = 2 * sum(FIG5_SIZES)  # native sweep + vPHI sweep
    rate = total_bytes / elapsed
    heap_ref = _heap_reference_rate()
    memcpy_ref = _memcpy_reference_rate()
    floor = min(heap_ref * FIG5_BYTES_PER_HEAP_OP_FLOOR,
                memcpy_ref * FIG5_MEMCPY_RATIO_FLOOR)
    # the forwarded-op rate rides along as observability: every counter
    # key of the exact form "vphi.op.<name>" is one submitted request
    ops = sum(v for k, v in tracer.counters.items()
              if k.startswith("vphi.op.") and "." not in k[len("vphi.op."):])
    print(f"\nfig5 sweep: {elapsed:.2f}s wall, {rate / 1e6:,.1f} MB/s, "
          f"{ops} vPHI ops ({ops / elapsed:,.0f} ops/s); floor "
          f"{floor / 1e6:,.1f} MB/s (heapq ref {heap_ref:,.0f}/s, "
          f"memcpy ref {memcpy_ref / 1e6:,.0f} MB/s)")
    assert ops > 0
    assert rate > floor, (
        f"Fig 5 scenario moved {rate / 1e6:,.1f} MB per wall-second, below "
        f"the calibrated {floor / 1e6:,.1f} MB/s floor for this runner "
        f"(heapq {heap_ref:,.0f}/s, memcpy {memcpy_ref / 1e6:,.0f} MB/s) — "
        f"the simulation fast path has regressed"
    )
