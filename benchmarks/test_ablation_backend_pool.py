"""Ablation A10: worker-pool dispatch vs the paper's blocking backend.

§III services every forwarded op (bar accept) in QEMU's blocking
event-loop mode — the whole VM freezes for the duration of the host
syscall, so concurrent guest streams serialize behind one another.  The
worker-pool backend (``VPhiConfig(backend_workers=N)``) hands each
request to a persistent pool member instead, keeping the vCPU running
and completions flowing out of order by tag.

The acceptance scenario: three VMs share one card, each running two
concurrent guest RMA streams against its own registered window.  Pooled
dispatch must *strictly* beat blocking dispatch on aggregate throughput,
the blocking run must show the whole-VM pauses that explain why, and the
pooled run must show none.
"""

import numpy as np

from conftest import fresh_machine, print_table
from repro.analysis import concurrency_snapshot, concurrency_stats
from repro.sim import ms
from repro.vphi import VPhiConfig

KB = 1 << 10
PORT = 23_000
N_VMS = 3
STREAMS_PER_VM = 2
OPS_PER_STREAM = 25
RMA_BYTES = 64 * KB
POOL_WORKERS = 4


def spawn_window_server(machine, port, size=RMA_BYTES, fill=0x5A):
    """Card-side server registering one read window, fulfilling ``ready``."""
    sproc = machine.card_process(f"pool-srv-{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


def spawn_stream(machine, vm, port, ready):
    """One guest process pulling OPS_PER_STREAM remote reads."""
    gproc = vm.guest_process(f"stream-{port}")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), port))
        roff = yield ready
        vma = gproc.address_space.mmap(RMA_BYTES, populate=True)
        for _ in range(OPS_PER_STREAM):
            yield from glib.vreadfrom(ep, vma.start, RMA_BYTES, roff)
        return gproc.address_space.read(vma.start, RMA_BYTES).sum()

    return vm.spawn_guest(client())


def run_scenario(workers: int):
    """N_VMS x STREAMS_PER_VM concurrent RMA streams; returns aggregate
    throughput plus the per-VM concurrency stats that explain it."""
    machine = fresh_machine()
    config = VPhiConfig(backend_workers=workers) if workers else VPhiConfig()
    vms = [machine.create_vm(f"vm{i}", vphi_config=config) for i in range(N_VMS)]
    clients = []
    port = PORT
    for vm in vms:
        for _ in range(STREAMS_PER_VM):
            ready = spawn_window_server(machine, port)
            clients.append(spawn_stream(machine, vm, port, ready))
            port += 1
    t0 = machine.sim.now
    snaps = [concurrency_snapshot(vm) for vm in vms]
    machine.run()
    elapsed = machine.sim.now - t0
    expected = RMA_BYTES * 0x5A
    for client in clients:
        assert client.triggered, "a stream deadlocked"
        assert client.value == expected, "a stream read corrupt data"
    total_bytes = len(clients) * OPS_PER_STREAM * RMA_BYTES
    stats = [concurrency_stats(vm, since=snap) for vm, snap in zip(vms, snaps)]
    return machine, vms, total_bytes / elapsed, elapsed, stats


def run_backend_pool_ablation():
    _, _, blk_tput, blk_elapsed, blk_stats = run_scenario(0)
    machine, vms, pool_tput, pool_elapsed, pool_stats = run_scenario(POOL_WORKERS)
    return (machine, vms, blk_tput, blk_elapsed, blk_stats,
            pool_tput, pool_elapsed, pool_stats)


def test_ablation_backend_pool(run_once):
    (machine, vms, blk_tput, blk_elapsed, blk_stats,
     pool_tput, pool_elapsed, pool_stats) = run_once(run_backend_pool_ablation)

    speedup = pool_tput / blk_tput
    rows = [
        ["aggregate throughput",
         f"{blk_tput / (1 << 20):.1f} MB/s", f"{pool_tput / (1 << 20):.1f} MB/s"],
        ["makespan",
         f"{blk_elapsed / ms(1):.2f} ms", f"{pool_elapsed / ms(1):.2f} ms"],
        ["mean event-loop occupancy",
         f"{sum(s.event_loop_occupancy for s in blk_stats) / N_VMS:.1%}",
         f"{sum(s.event_loop_occupancy for s in pool_stats) / N_VMS:.1%}"],
        ["peak in-flight (max over VMs)",
         f"{max(s.peak_inflight for s in blk_stats)}",
         f"{max(s.peak_inflight for s in pool_stats)}"],
    ]
    print_table(
        f"Ablation A10: backend dispatch ({N_VMS} VMs x {STREAMS_PER_VM} "
        f"streams, {OPS_PER_STREAM} x {RMA_BYTES // KB}KB reads each)",
        ["metric", "blocking", f"pooled x{POOL_WORKERS}"], rows)
    print(f"pooled dispatch speedup on aggregate throughput: {speedup:.2f}x")

    # --- the headline: pooling strictly improves aggregate throughput ---
    assert pool_tput > blk_tput
    # --- and the mechanism: blocking froze every VM, pooling froze none ---
    for s in blk_stats:
        assert s.event_loop_occupancy > 0, f"{s.vm} never paused while blocking"
        assert not s.pooled
    for s in pool_stats:
        assert s.event_loop_occupancy == 0, f"{s.vm} paused despite the pool"
        assert s.pooled and s.pooled_requests > 0
        # both streams overlapped inside the VM at some point
        assert s.peak_inflight >= 2, f"{s.vm} streams never overlapped"
        assert s.peak_inflight <= POOL_WORKERS * STREAMS_PER_VM
    # --- the shared arbiter granted every VM its turns ---
    arb = machine.vphi_arbiter
    assert arb.free == arb.slots
    for vm in vms:
        assert arb.grants_by_vm.get(vm.name, 0) > 0
