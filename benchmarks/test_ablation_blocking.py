"""Ablation A2: blocking vs non-blocking (worker thread) backend handling.

§III: blocking handling freezes the whole VM for the request's duration
but avoids the worker create/destroy cost; "as the data size increases,
the non-blocking method appears more appealing".  This bench measures
both sides of that tradeoff: the requester's latency and the progress a
*concurrent* guest thread makes during a large transfer.
"""

import pytest

from conftest import MB, fmt_size, fresh_machine, print_table
from repro.sim import us
from repro.vphi import VPhiConfig, VPhiOp
from repro.workloads import ClientContext, rma_read_throughput

SIZES = [4 * 1024, 256 * 1024, 4 * MB, 64 * MB]

#: non-blocking policy for the data-plane ops (the paper's future hybrid)
NONBLOCKING_DATA = frozenset({
    VPhiOp.ACCEPT, VPhiOp.POLL, VPhiOp.FENCE_WAIT,
    VPhiOp.SEND, VPhiOp.RECV, VPhiOp.VREADFROM, VPhiOp.VWRITETO,
})


def run_blocking_ablation():
    out = {}
    for label, ops in (("blocking", None),
                       ("worker", NONBLOCKING_DATA)):
        cfg = VPhiConfig() if ops is None else VPhiConfig(nonblocking_ops=ops)
        machine = fresh_machine()
        vm = machine.create_vm("vm0", vphi_config=cfg)
        # a concurrent guest thread ticking at 10us for 30 simulated ms
        # (covering the whole transfer sweep): its worst inter-tick gap
        # measures how long the VM was frozen at a stretch.
        ticks = []

        def ticker():
            for _ in range(3000):
                yield machine.sim.timeout(us(10))
                ticks.append(machine.sim.now)

        vm.spawn_guest(ticker())
        series = rma_read_throughput(machine, ClientContext.guest(vm), SIZES)
        max_stall = max(b - a for a, b in zip(ticks, ticks[1:]))
        out[label] = (series, max_stall, vm.domain.paused_time,
                      vm.qemu.worker_events)
    return out


def test_ablation_blocking_vs_worker(run_once):
    data = run_once(run_blocking_ablation)

    rows = []
    for i, size in enumerate(SIZES):
        rows.append([
            fmt_size(size),
            f"{data['blocking'][0][i][1] / 1e9:.2f}",
            f"{data['worker'][0][i][1] / 1e9:.2f}",
        ])
    print_table(
        "A2: vPHI remote-read throughput (GB/s), blocking vs worker backend",
        ["size", "blocking", "worker"],
        rows,
    )
    for label in ("blocking", "worker"):
        _, max_stall, paused, workers = data[label]
        print(f"  {label}: worst guest stall={max_stall * 1e3:.3f} ms, "
              f"VM frozen {paused * 1e3:.2f} ms total, worker events={workers}")

    b_series = dict(data["blocking"][0])
    w_series = dict(data["worker"][0])
    # the worker path adds spawn/teardown: slightly slower for tiny ops
    assert w_series[4096] < b_series[4096]
    # ...but within noise for large transfers (cost amortized)
    assert w_series[64 * MB] == pytest.approx(b_series[64 * MB], rel=0.01)
    # the real difference: the VM keeps running under the worker policy —
    # under blocking, the 64MB transfer freezes the guest for >10ms
    assert data["blocking"][1] > 100 * data["worker"][1]  # worst stall
    assert data["blocking"][2] > 10 * data["worker"][2]  # frozen time
    assert data["worker"][3] > 0
