"""Ablation A14: power/thermal model — TDP-cap DGEMM sweep, throttle tails.

Two sweeps pin the power model's performance coupling (DESIGN §15):

**DGEMM time/energy vs TDP cap.**  The same fixed-flops compute job runs
under a descending ladder of RAPL-style card caps.  The governor picks
the shallowest P-state floor whose full-load draw fits the cap, so each
cap maps to one working point: time stretches as the clock drops and
average watts stay at or under the cap.  GFLOPS-per-watt *falls* as the
cap tightens: the card's static floor (idle + uncore, ~42% of TDP) burns
for the whole stretched runtime, and the V² dynamic saving never pays it
back — the classic race-to-idle result, which is exactly the trade-off
the report has to surface before an operator picks a cap.  Throttle
residency is zero uncapped and pegged while the job runs capped.

**Guest RMA tail under throttle.**  The vPHI backend prices its fixed
per-op costs through the registry's cost tables; those scale by the
power model's cost multiplier (f0 over the uOS service core's effective
clock).  A guest issuing the Fig 5 vreadfrom workload against a card
pinned to the deepest P-state sees every dispatch surcharged — the span
record shows the p99 spike, and the backend's throttled-dispatch counter
attributes it to the throttle rather than to queueing noise.
"""

from conftest import print_table
from repro import Machine
from repro.analysis import power_stats, throttle_tail
from repro.phi import Scope
from repro.workloads import ClientContext, rma_read_throughput

#: fixed compute job: ~0.5 s at the 3120P's P0 clock, 224 threads
FLOPS = 4e11
THREADS = 224
EFFICIENCY = 0.8
#: descending cap ladder; 0.0 means uncapped (cap = SKU TDP)
CAPS = (0.0, 260.0, 230.0, 200.0)

KB = 1 << 10
#: tail workload: enough identical transfers for a stable p99
TAIL_TRANSFERS = [64 * KB] * 40
TAIL_OP = "vreadfrom"


def run_capped_dgemm(cap: float):
    """One working point: run the fixed job under ``cap`` watts.

    Returns ``(job_time_s, CardPowerStats)``.
    """
    m = Machine(cards=1, power_model="knc").boot()
    if cap:
        m.pepc().set_tdp(cap, Scope.one_card(0))
    out = {}

    def drive():
        job = yield from m.uos(0).run_compute(
            FLOPS, THREADS, efficiency=EFFICIENCY, name="a14-dgemm")
        out["t"] = job.finished_at - job.started_at

    m.sim.spawn(drive(), name="a14-drive")
    m.run()
    return out["t"], power_stats(m).cards[0]


def run_power_ablation():
    """The cap sweep: ``[(cap, time, avg_watts, gflops_per_watt,
    throttle_residency)]`` in CAPS order."""
    rows = []
    for cap in CAPS:
        t, card = run_capped_dgemm(cap)
        rows.append((cap, t, card.avg_watts, card.gflops_per_watt,
                     card.throttle_residency))
    return rows


def run_tail_scenario(throttled: bool):
    """Guest Fig 5 vreadfroms, card at P0 or pinned to the deepest
    P-state.  Returns the :func:`throttle_tail` dict."""
    m = Machine(cards=1, power_model="knc").boot()
    vm = m.create_vm("vm0")
    if throttled:
        deepest = len(m.devices[0].power.pstates) - 1
        m.pepc().set_pstate(deepest, Scope.one_card(0))
    rma_read_throughput(m, ClientContext.guest(vm), TAIL_TRANSFERS)
    return throttle_tail(vm.tracer, ops=[TAIL_OP])


# ----------------------------------------------------------------------
# pytest shape assertions
# ----------------------------------------------------------------------
def test_tdp_cap_sweep():
    rows = run_power_ablation()
    print_table(
        "A14: dgemm vs TDP cap (3120P, 224 threads)",
        ["cap(W)", "time(s)", "avg(W)", "GF/W", "thr%"],
        [[f"{cap:.0f}" if cap else "none", f"{t:.4f}", f"{w:.1f}",
          f"{e:.4f}", f"{r:.0%}"] for cap, t, w, e, r in rows],
    )
    times = [t for _, t, _, _, _ in rows]
    watts = [w for _, _, w, _, _ in rows]
    eff = [e for _, _, _, e, _ in rows]
    resid = [r for _, _, _, _, r in rows]
    # tighter cap -> deeper floor -> strictly slower, strictly fewer watts
    assert times == sorted(times), "time must rise as the cap tightens"
    assert watts == sorted(watts, reverse=True), \
        "average watts must fall as the cap tightens"
    # race-to-idle: the static floor burns for the stretched runtime,
    # so efficiency falls with the cap despite the V^2 dynamic saving
    assert eff == sorted(eff, reverse=True), \
        "GFLOPS/W must fall as the cap tightens (static floor dominates)"
    # uncapped never throttles; every real cap pins the floor while busy
    assert resid[0] == 0.0
    assert all(r > 0.9 for r in resid[1:]), \
        f"capped runs must spend the busy window throttled: {resid}"
    # the working point respects the cap (average includes idle boot
    # time, so it sits strictly below)
    for (cap, _, w, _, _) in rows[1:]:
        assert w <= cap, f"avg {w:.1f} W over the {cap:.0f} W cap"


def test_guest_tail_under_throttle():
    base = run_tail_scenario(False)
    slow = run_tail_scenario(True)
    print_table(
        "A14: guest vreadfrom tail, P0 vs deepest P-state",
        ["run", "count", "p50(s)", "p99(s)", "throttled ops"],
        [["P0", str(base[TAIL_OP]["count"]), f"{base[TAIL_OP]['p50']:.6f}",
          f"{base[TAIL_OP]['p99']:.6f}",
          str(base["_throttled_ops"]["count"])],
         ["deep", str(slow[TAIL_OP]["count"]), f"{slow[TAIL_OP]['p50']:.6f}",
          f"{slow[TAIL_OP]['p99']:.6f}",
          str(slow["_throttled_ops"]["count"])]],
    )
    assert base[TAIL_OP]["count"] == len(TAIL_TRANSFERS)
    assert slow[TAIL_OP]["count"] == len(TAIL_TRANSFERS)
    # at P0 nothing is surcharged; pinned deep, every dispatch is
    assert base["_throttled_ops"]["count"] == 0
    assert slow["_throttled_ops"]["count"] >= len(TAIL_TRANSFERS)
    # and the surcharge shows up where the operator looks: the p99
    assert slow[TAIL_OP]["p99"] > base[TAIL_OP]["p99"]
    assert slow[TAIL_OP]["p50"] > base[TAIL_OP]["p50"]
