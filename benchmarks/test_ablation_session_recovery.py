"""Ablation A11: session recovery time vs journal size.

The session journal (§ DESIGN 10) makes a card reset survivable: the
frontend fences the epoch, aborts in-flight work, and replays the
journaled topology — endpoints, windows, mmaps — through the normal op
path.  Recovery is therefore *paid per journaled op*: a guest holding
one connection rebuilds almost instantly, a guest holding eight
endpoints with registered windows and mmaps replays every one of them.

The acceptance scenario: a single VM under the ``queue`` policy opens N
sessions (connect + registered window + mmap each), a CARD_RESET lands
mid-workload, and the client's RMA completes transparently.  The series
is rebuild time as a function of journal size; the shape assertions pin
that recovery cost scales with the journal, stays in the sub-ms regime
the paper's reset handling targets, and never trades correctness for
speed — every post-recovery read returns uncorrupted data.
"""

import numpy as np

from conftest import print_table
from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.scif import MapFlag
from repro.sim import us
from repro.vphi import VPhiConfig

KB = 1 << 10
PORT = 24_000
WIN = 64 * KB
FIXED_ROFF = 0x40000
ENDPOINT_COUNTS = (1, 2, 4, 8)
FILL = 0x5A


def spawn_resilient_server(machine, port, size=WIN, fill=FILL):
    """Accept-forever card server re-registering the same window at the
    same fixed offset, so a replayed session finds identical remote
    state (the pattern a restartable card-side daemon would use)."""
    sproc = machine.card_process(f"a11-srv-{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        while True:
            conn, _ = yield from slib.accept(ep)
            yield from slib.register(
                conn, vma.start, size,
                offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
            )
            if not ready.triggered:
                ready.succeed(FIXED_ROFF)

    machine.sim.spawn(server())
    return ready


def run_scenario(n_endpoints: int):
    """One VM, ``n_endpoints`` full sessions, one CARD_RESET mid-RMA.

    Returns (machine, vm, replayed_ops, rebuild_seconds, sums) where
    sums are the post-recovery per-endpoint read checksums.
    """
    plan = FaultPlan.of(
        FaultSpec(kind=FaultKind.CARD_RESET, op="writeto", vm="vm0", at=(0,)),
        name="a11",
    )
    machine = Machine(cards=1, fault_plan=plan).boot()
    vm = machine.create_vm(
        "vm0", vphi_config=VPhiConfig(recovery_policy="queue")
    )
    card = machine.card_node_id(0)
    readies = [spawn_resilient_server(machine, PORT + i)
               for i in range(n_endpoints)]
    gproc = vm.guest_process("a11-client")
    glib = vm.vphi.libscif(gproc)

    def client():
        eps, loffs, vmas = [], [], []
        for i, ready in enumerate(readies):
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT + i))
            yield ready
            vma = gproc.address_space.mmap(WIN, populate=True)
            gproc.address_space.write(
                vma.start, np.full(WIN, 0x11, dtype=np.uint8))
            loff = yield from glib.register(ep, vma.start, WIN)
            yield from glib.mmap(ep, FIXED_ROFF, WIN)
            eps.append(ep)
            loffs.append(loff)
            vmas.append(vma)
        # the 0th writeto carries the reset; queue policy replays the
        # whole journal and retries this op against the rebuilt session
        yield from glib.writeto(eps[0], loffs[0], WIN, FIXED_ROFF)
        sums = []
        for ep, loff, vma in zip(eps, loffs, vmas):
            gproc.address_space.write(
                vma.start, np.zeros(WIN, dtype=np.uint8))
            yield from glib.readfrom(ep, loff, WIN, FIXED_ROFF)
            sums.append(int(gproc.address_space.read(vma.start, WIN).sum()))
        return sums

    c = vm.spawn_guest(client())
    machine.run()
    assert c.triggered, "A11 client deadlocked"
    ses = vm.vphi.frontend.session
    assert ses.recoveries == 1 and ses.replay_failures == 0
    return machine, vm, ses.replayed_ops, ses.rebuild_times[0], c.value


def run_session_recovery_ablation():
    return [(n,) + run_scenario(n)[2:] for n in ENDPOINT_COUNTS]


def test_ablation_session_recovery(run_once):
    series = run_once(run_session_recovery_ablation)

    rows = [[f"{n} sessions", f"{ops}", f"{t / us(1):.1f} us"]
            for n, ops, t, _ in series]
    print_table(
        "Ablation A11: recovery time vs journal size "
        f"(1 CARD_RESET, queue policy, {WIN // KB}KB windows)",
        ["journal", "replayed ops", "rebuild time"], rows)

    # --- zero corruption: the window whose writeto was fenced holds the
    # client's pattern, every untouched window still holds the server's ---
    for n, _, _, sums in series:
        assert sums[0] == 0x11 * WIN, "replayed write lost or torn"
        for s in sums[1:]:
            assert s == FILL * WIN, "rebuilt window returned corrupt data"

    # --- recovery is paid per journaled op: more sessions, bigger
    # journal, strictly longer rebuild ---
    ops = [o for _, o, _, _ in series]
    times = [t for _, _, t, _ in series]
    assert ops == sorted(ops) and len(set(ops)) == len(ops)
    assert times == sorted(times) and len(set(times)) == len(times)
    # each session journals open+connect+register+mmap
    for (n, o, _, _) in series:
        assert o == 4 * n

    # --- the cost model is settle + per-op replay: the marginal cost of
    # one more journaled op stays sub-ms, so even the 8-session rebuild
    # lands well inside the card's own multi-second reset shadow ---
    marginal = (times[-1] - times[0]) / (ops[-1] - ops[0])
    assert marginal < 1e-3, "per-op replay cost left the sub-ms regime"
    assert times[-1] < 50e-3
