"""Ablation A6: virtio ring depth vs concurrent small-request throughput.

§II-C fixes the transport as a shared ring; its depth bounds the number
of in-flight requests.  With the frontend's back-pressure (submitters
park on descriptor exhaustion), a shallow ring throttles bursts of
concurrent guest requests while barely touching single-stream traffic —
the classic queue-depth tradeoff, quantified.
"""


from conftest import fresh_machine, print_table
from repro.sim import us

PORT = 26000
CONCURRENT = 64
RING_SIZES = [8, 32, 128, 256]


def run_ring_sweep():
    out = []
    for ring_size in RING_SIZES:
        machine = fresh_machine()
        vm = machine.create_vm("vm0")
        vm.vphi.virtio.ring.__init__(ring_size)
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("sink"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield from slib.recv(conn, CONCURRENT * 8)

        glib = vm.vphi.libscif(vm.guest_process("app"))

        def opener():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            return ep

        machine.sim.spawn(server())
        p = vm.spawn_guest(opener())
        machine.run()
        ep = p.value

        t0 = machine.sim.now
        done = []

        def sender(i):
            yield from glib.send(ep, bytes(8))
            done.append(machine.sim.now)

        for i in range(CONCURRENT):
            vm.spawn_guest(sender(i))
        machine.run()
        makespan = max(done) - t0
        out.append((ring_size, makespan, vm.vphi.virtio.ring.peak_in_flight))
    return out


def test_ablation_ring_size(run_once):
    data = run_once(run_ring_sweep)

    rows = [
        [str(size), f"{makespan / us(1):.0f}", str(peak)]
        for size, makespan, peak in data
    ]
    print_table(
        f"A6: {CONCURRENT} concurrent 8B guest sends vs virtio ring depth",
        ["ring", "makespan (us)", "peak descriptors in flight"],
        rows,
    )

    makespans = [m for _, m, _ in data]
    peaks = [p for _, _, p in data]
    # deeper rings admit more in-flight descriptors
    assert peaks[0] < peaks[-1]
    assert peaks[0] <= 8
    # every configuration completes all requests (back-pressure works);
    # the serialized backend dominates, so depth is not the bottleneck
    # beyond a shallow floor — makespans stay within 2x across the sweep
    assert max(makespans) < 2 * min(makespans)
