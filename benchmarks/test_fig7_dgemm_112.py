"""Figure 7: launch and execution of dgemm using 112 threads (2/core)."""

from dgemm_common import report_and_check, run_dgemm_figure

THREADS = 112


def test_fig7_dgemm_112_threads(run_once):
    results = run_once(run_dgemm_figure, THREADS)
    ratios = report_and_check(results, THREADS, fig="7")
    # 112 threads beat 56 on compute (2 threads/core hide in-order stalls),
    # so the fixed overhead is amortized over *less* time: ratios at the
    # small end are a bit worse than Fig 6's for the same input.
    assert ratios[0] > 1.03
