"""Figure 8: launch and execution of dgemm using 224 threads (4/core,
the full hardware-thread complement of the 56 usable cores)."""

from dgemm_common import report_and_check, run_dgemm_figure

THREADS = 224


def test_fig8_dgemm_224_threads(run_once):
    results = run_once(run_dgemm_figure, THREADS)
    report_and_check(results, THREADS, fig="8")
    # oversubscription of cores (4 threads/core) is handled by the uOS
    # scheduler and still improves on 112 threads
    for n, native, vphi in results:
        assert native.compute_time > 0
