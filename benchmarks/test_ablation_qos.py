"""Ablation A12: arbiter policy under 10x oversubscription, 200 tenants.

The paper's headline is that many VMs share one Phi card with near-native
efficiency — but §III's dispatch is plain round-robin, which says nothing
about *fairness* once the card is oversubscribed.  This ablation drives
the open-loop traffic harness (``repro.traffic``) against all three
arbiter policies with the same seeded plan and lets the SLO layer
(``repro.analysis.qos``) judge them.

The tenant population (200 VMs, one shared card, 4 dispatch slots):

* 160 *gold* tenants — latency-bound interactive sends, wfq share 4
* 20 *bronze* tenants — the same mix at wfq share 1
* 20 *bulk* tenants — 128 KB RMA streams at share 0 (best-effort), the
  background load whose long slot holds wreck everyone's tail if the
  arbiter lets them in

Offered load is ~10x what the card completes, so admission control is
doing real work (most arrivals shed as typed EBUSY).  The acceptance
shape: WFQ holds the share-weighted Jain index >= 0.95 and keeps gold
p99 bounded, where round-robin — blind to shares, happily granting bulk
RMA slots — degrades both.
"""

from conftest import print_table
from repro.analysis import qos_stats
from repro.traffic import Poisson, TenantSpec, TrafficPlan, WorkloadMix, run_plan

#: simulated measurement window (seconds of open-loop arrivals).
DURATION = 0.008
SEED = 7
SLOTS = 4
POLICIES = ("rr", "wfq", "priority")

GOLD_COUNT, BRONZE_COUNT, BULK_COUNT = 160, 20, 20
GOLD_RATE, BRONZE_RATE, BULK_RATE = 20_000.0, 10_000.0, 2_000.0

#: WFQ must hold the share-weighted Jain index at least this high.
JAIN_FLOOR = 0.95


def build_plan(policy: str) -> TrafficPlan:
    return TrafficPlan(
        tenants=[
            TenantSpec(name="gold", arrivals=Poisson(GOLD_RATE),
                       mix=WorkloadMix.interactive(), share=4.0, priority=0,
                       count=GOLD_COUNT),
            TenantSpec(name="bronze", arrivals=Poisson(BRONZE_RATE),
                       mix=WorkloadMix.interactive(), share=1.0, priority=1,
                       count=BRONZE_COUNT),
            TenantSpec(name="bulk", arrivals=Poisson(BULK_RATE),
                       mix=WorkloadMix.bulk(), share=0.0, priority=2,
                       count=BULK_COUNT),
        ],
        policy=policy, duration=DURATION, seed=SEED, slots=SLOTS,
        backend_workers=2, max_inflight=4, admit_queue_depth=8,
    )


def gold_p99(report) -> float:
    """Worst p99 (seconds) across the gold tenants that completed work."""
    return max(t.p99 for t in report.tenants
               if t.name.startswith("gold") and t.completed)


def run_qos_ablation() -> dict:
    """Run the same plan under every policy -> {policy: QosReport}."""
    reports = {}
    for policy in POLICIES:
        result = run_plan(build_plan(policy))
        result.check_conservation()
        reports[policy] = qos_stats(result)
    return reports


def test_ablation_qos(run_once):
    reports = run_once(run_qos_ablation)
    rr, wfq, prio = reports["rr"], reports["wfq"], reports["priority"]

    rows = []
    for policy, rep in reports.items():
        rows.append([
            policy,
            f"{rep.weighted_jain:.4f}",
            f"{gold_p99(rep) * 1e6:.0f} us",
            f"{rep.total_completed}",
            f"{rep.total_shed}",
            f"{rep.total_offered / rep.total_completed:.1f}x",
        ])
    print_table(
        "A12: arbiter policy at 10x oversubscription (200 tenants)",
        ["policy", "weighted Jain", "gold p99", "completed", "shed", "oversub"],
        rows,
    )

    # the offered load really is ~10x the card's completion capacity
    assert rr.total_offered >= 8 * rr.total_completed, (
        f"scenario is not oversubscribed: offered {rr.total_offered} vs "
        f"completed {rr.total_completed}"
    )

    # admission control shed load (as typed EBUSY) instead of deadlocking;
    # conservation was already asserted inside run_qos_ablation
    for policy, rep in reports.items():
        assert rep.total_shed > 0, f"{policy}: nothing shed at 10x load"
        assert rep.total_errors == 0, f"{policy}: untyped failures leaked"

    # WFQ holds share-weighted fairness where round-robin degrades
    assert wfq.weighted_jain >= JAIN_FLOOR, (
        f"wfq weighted Jain {wfq.weighted_jain:.4f} < {JAIN_FLOOR}"
    )
    assert rr.weighted_jain < wfq.weighted_jain, (
        f"rr weighted Jain {rr.weighted_jain:.4f} should degrade below "
        f"wfq {wfq.weighted_jain:.4f}"
    )

    # WFQ bounds the gold tail where round-robin (granting bulk RMA slots
    # on equal terms) collapses it; strict priority does at least as well
    assert gold_p99(wfq) < gold_p99(rr), (
        f"wfq gold p99 {gold_p99(wfq):.6f}s should beat rr {gold_p99(rr):.6f}s"
    )
    assert gold_p99(prio) <= gold_p99(wfq) * 1.1, (
        "strict priority should bound the gold tail at least as tightly "
        "as wfq"
    )
