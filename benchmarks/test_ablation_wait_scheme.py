"""Ablation A1: frontend wait scheme — interrupt vs polling vs hybrid.

§III picks the interrupt scheme; §IV-B measures it at 93 % of the
overhead and proposes a hybrid as future work.  This bench quantifies
all three: latency per size, plus the vCPU time polling burns (the cost
that motivated the paper's choice).
"""

import pytest

from conftest import fmt_size, fresh_machine, print_table
from repro.sim import us
from repro.vphi import VPhiConfig, WaitMode
from repro.workloads import ClientContext, sendrecv_latency

SIZES = [1, 1024, 16384, 65536, 262144]


def run_wait_ablation():
    out = {}
    for mode in (WaitMode.INTERRUPT, WaitMode.POLLING, WaitMode.HYBRID):
        machine = fresh_machine()
        vm = machine.create_vm(
            "vm0", vphi_config=VPhiConfig(wait_mode=mode, hybrid_threshold=32 * 1024)
        )
        series = sendrecv_latency(machine, ClientContext.guest(vm), SIZES)
        poll_cpu = vm.vphi.frontend.tracer.accumulators.get("vphi.poll_cpu_time", 0.0)
        out[mode] = (series, poll_cpu)
    return out


def test_ablation_wait_scheme(run_once):
    data = run_once(run_wait_ablation)

    rows = []
    for i, size in enumerate(SIZES):
        rows.append([
            fmt_size(size),
            f"{data[WaitMode.INTERRUPT][0][i][1] / us(1):.1f}",
            f"{data[WaitMode.POLLING][0][i][1] / us(1):.1f}",
            f"{data[WaitMode.HYBRID][0][i][1] / us(1):.1f}",
        ])
    print_table(
        "A1: guest send latency by wait scheme (us)",
        ["size", "interrupt", "polling", "hybrid"],
        rows,
    )
    for mode, (series, poll_cpu) in data.items():
        print(f"  {mode}: vCPU burned polling = {poll_cpu / us(1):.1f} us")

    intr = dict(data[WaitMode.INTERRUPT][0])
    poll = dict(data[WaitMode.POLLING][0])
    hyb = dict(data[WaitMode.HYBRID][0])
    # polling strips the ~349us wakeup everywhere
    for size in SIZES:
        assert poll[size] < intr[size] - us(300)
    # hybrid == polling-like below the threshold, interrupt-like above
    assert hyb[1] == pytest.approx(poll[1], rel=0.2)
    assert hyb[262144] == pytest.approx(intr[262144], rel=0.05)
    # but polling costs vCPU time; the interrupt scheme costs none
    assert data[WaitMode.POLLING][1] > 0
    assert data[WaitMode.INTERRUPT][1] == 0
