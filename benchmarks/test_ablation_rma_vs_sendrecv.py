"""Ablation A4: data-path comparison — send-recv vs bounced RMA vs
direct window-to-window RMA, from inside a VM.

§II-B: "RDMA is a common communication pattern ... more suitable for
larger data transfers".  Three ways to move N bytes from the card into a
guest buffer:

* **send-recv**: two-sided messaging through the driver rings;
* **vreadfrom**: one-sided read, bounced through kmalloc chunks (the
  paper's implementation, Fig 5's vPHI series);
* **readfrom (registered window)**: one-sided read into a *registered*
  guest window — pinned guest RAM the DMA engine hits directly, no
  bounce, no guest copy.
"""

import itertools

import numpy as np

from conftest import MB, fmt_size, fresh_machine, print_table
from repro.workloads import ClientContext, rma_read_throughput, sendrecv_latency

SIZES = [64 * 1024, MB, 16 * MB, 64 * MB]
_ports = itertools.count(27000)


def window_read_throughput(machine, ctx, sizes):
    """Guest-side readfrom between registered windows (direct path)."""
    port = next(_ports)
    card_node = machine.card_node_id(0)
    sproc = machine.card_process(f"winsrv{port}")
    slib = machine.scif(sproc)
    max_size = max(sizes)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(max_size, populate=True)
        sproc.address_space.write(vma.start, np.full(max_size, 0x42, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, max_size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    def client():
        ep = yield from ctx.lib.open()
        yield from ctx.lib.connect(ep, (card_node, port))
        roff = yield ready
        vma = ctx.process.address_space.mmap(max_size, populate=True)
        loff = yield from ctx.lib.register(ep, vma.start, max_size)
        results = []
        for size in sizes:
            t0 = machine.sim.now
            yield from ctx.lib.readfrom(ep, loff, size, roff)
            results.append((size, size / (machine.sim.now - t0)))
        yield from ctx.lib.send(ep, b"x")
        return results

    machine.sim.spawn(server())
    p = ctx.spawn(client())
    machine.run()
    return p.value


def run_paths_ablation():
    machine = fresh_machine()
    vm = machine.create_vm("vm0")
    # send-recv: measure latency, convert to goodput
    lat = sendrecv_latency(machine, ClientContext.guest(vm, "sr"), SIZES)
    sendrecv_bw = [(s, s / t) for s, t in lat]

    machine2 = fresh_machine()
    vm2 = machine2.create_vm("vm0")
    bounced = rma_read_throughput(machine2, ClientContext.guest(vm2, "vr"), SIZES)

    machine3 = fresh_machine()
    vm3 = machine3.create_vm("vm0")
    direct = window_read_throughput(machine3, ClientContext.guest(vm3, "wr"), SIZES)
    return sendrecv_bw, bounced, direct


def test_ablation_rma_vs_sendrecv(run_once):
    sendrecv_bw, bounced, direct = run_once(run_paths_ablation)

    rows = []
    for i, size in enumerate(SIZES):
        rows.append([
            fmt_size(size),
            f"{sendrecv_bw[i][1] / 1e9:.2f}",
            f"{bounced[i][1] / 1e9:.2f}",
            f"{direct[i][1] / 1e9:.2f}",
        ])
    print_table(
        "A4: guest data-path goodput (GB/s)",
        ["size", "send-recv", "vreadfrom (bounced)", "readfrom (window)"],
        rows,
    )

    # at scale, RMA beats two-sided messaging (the 2.5 GB/s ring path)
    assert bounced[-1][1] > sendrecv_bw[-1][1]
    # and the direct window path recovers (nearly) native throughput by
    # skipping the bounce + guest copy entirely
    assert direct[-1][1] > bounced[-1][1]
    assert direct[-1][1] > 0.95 * 6.4e9
    # everything is tiny at 64KB where the 375us fixed cost dominates
    assert all(bw < 1e9 for _, bw in (sendrecv_bw[0], bounced[0], direct[0]))
