"""Ablation: what does fault recovery cost, and who pays it?

The acceptance scenario for the fault subsystem: a plan injecting one
PCIe link flap plus one host ECONNRESET per 100 ops into vm1's RMA
workload, while vm2 runs the Fig 4 latency series fault-free next door.
Every idempotent op on vm1 must complete (retried, never dropped),
non-idempotent ops must surface typed errors, and vm2's Fig 4 series
must stay within 5 % of the fault-free baseline — the recovery overhead
is confined to the VM the faults target.
"""

import numpy as np
import pytest

from conftest import fmt_size, fresh_machine, print_table
from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.scif.errors import ECONNRESET
from repro.sim import us
from repro.workloads import ClientContext, sendrecv_latency

FIG4_SIZES = [1, 64, 256, 1024, 4096, 16384, 65536]
KB = 1 << 10
RMA_PORT = 21_500
RMA_OPS = 200
RMA_BYTES = 4 * KB

ACCEPTANCE_PLAN = FaultPlan.of(
    # one brief link flap early in vm1's RMA stream
    FaultSpec(kind=FaultKind.LINK_FLAP, op="vreadfrom", vm="vm1", at=(3,)),
    # one host ECONNRESET per 100 RMA ops on vm1
    FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ECONNRESET,
              op="vreadfrom", vm="vm1", every=100),
    # one reset against vm1's (non-idempotent) completion send
    FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ECONNRESET,
              op="send", vm="vm1", at=(0,)),
    name="acceptance",
)


def spawn_rma_series(machine, vm, port=RMA_PORT):
    """vm runs RMA_OPS idempotent 4KB remote reads; the final handshake
    send is the plan's non-idempotent target.  Returns the client proc
    (value: per-op latencies + the typed error the send surfaced)."""
    sproc = machine.card_process(f"rma-srv-{vm.name}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(RMA_BYTES, populate=True)
        sproc.address_space.write(
            vma.start, np.full(RMA_BYTES, 0x5A, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, RMA_BYTES)
        ready.succeed(roff)

    gproc = vm.guest_process("rma-client")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), port))
        roff = yield ready
        vma = gproc.address_space.mmap(RMA_BYTES, populate=True)
        lats = []
        for _ in range(RMA_OPS):
            t0 = machine.sim.now
            yield from glib.vreadfrom(ep, vma.start, RMA_BYTES, roff)
            lats.append(machine.sim.now - t0)
        send_error = None
        try:
            yield from glib.send(ep, b"done")
        except ECONNRESET as err:
            send_error = err
        return lats, send_error

    machine.sim.spawn(server())
    return vm.spawn_guest(client())


def run_scenario(plan):
    machine = (Machine(cards=1, fault_plan=plan).boot() if plan
               else fresh_machine())
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    rma = spawn_rma_series(machine, vm1)
    # sendrecv_latency runs the whole sim, so vm1's series rides along
    fig4 = sendrecv_latency(machine, ClientContext.guest(vm2, "vm2-client"),
                            FIG4_SIZES)
    assert rma.triggered, "vm1 RMA series did not finish"
    return machine, vm1, vm2, rma.value, fig4


def run_fault_recovery_ablation():
    _, _, _, (base_lats, _), base_fig4 = run_scenario(None)
    machine, vm1, vm2, (fault_lats, send_error), fault_fig4 = run_scenario(
        ACCEPTANCE_PLAN
    )
    return (machine, vm1, vm2, base_lats, base_fig4,
            fault_lats, fault_fig4, send_error)


def test_ablation_fault_recovery(run_once):
    (machine, vm1, vm2, base_lats, base_fig4,
     fault_lats, fault_fig4, send_error) = run_once(run_fault_recovery_ablation)

    base_mean = sum(base_lats) / len(base_lats)
    fault_mean = sum(fault_lats) / len(fault_lats)
    overhead = fault_mean / base_mean - 1
    flaps = machine.faults.fires_of(FaultKind.LINK_FLAP)
    resets = machine.faults.fires_of(FaultKind.SCIF_ERROR)

    rows = [
        ["RMA ops completed", f"{len(base_lats)}", f"{len(fault_lats)}"],
        ["mean read latency", f"{base_mean / us(1):.1f} us",
         f"{fault_mean / us(1):.1f} us"],
        ["faults injected", "0", f"{machine.faults.injected}"],
        ["retries", "0", f"{vm1.vphi.frontend.retries}"],
    ]
    print_table("Ablation: fault recovery overhead (vm1 RMA series)",
                ["metric", "fault-free", "faulted"], rows)
    print(f"recovery overhead on the faulted VM: {overhead:+.1%} mean latency "
          f"({flaps} flap, {resets} ECONNRESET)")

    # --- all idempotent ops completed: retried, never dropped ---
    assert len(fault_lats) == RMA_OPS
    assert resets >= 1 + RMA_OPS // 100  # the send hit + one per 100 reads
    assert flaps == 1
    assert vm1.vphi.frontend.retries == vm1.tracer.counters["vphi.fault.retried"]
    assert (vm1.tracer.counters["vphi.fault.recovered"]
            == vm1.tracer.counters["vphi.op.vreadfrom.retried"])
    # --- the non-idempotent send surfaced its typed error, unretried ---
    assert isinstance(send_error, ECONNRESET)
    assert vm1.tracer.counters["vphi.op.send.failed"] == 1
    assert vm1.tracer.counters["vphi.op.send.retried"] == 0
    # --- recovery overhead is real but bounded ---
    assert overhead > 0
    assert overhead < 0.25
    # --- vm2 is untouched: no faults, and Fig 4 within 5% pointwise ---
    assert vm2.tracer.counters["vphi.fault.injected"] == 0
    assert vm2.vphi.frontend.retries == 0
    for (size, base), (_, got) in zip(base_fig4, fault_fig4):
        assert got == pytest.approx(base, rel=0.05), fmt_size(size)
