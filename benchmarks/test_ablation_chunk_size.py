"""Ablation A3: KMALLOC bounce-chunk size vs vPHI RMA throughput.

§III chunks transfers at KMALLOC_MAX_SIZE = 4 MB because Linux cannot
kmalloc more physically contiguous memory.  This ablation shows what that
constraint costs: smaller chunks multiply the per-chunk submission + DMA
setup overhead and depress the achievable peak, which is why the 4 MB
ceiling is the right operating point (and why a hypothetical larger
contiguous allocator would barely help).
"""

import pytest

from conftest import MB, fmt_size, fresh_machine, print_table
from repro.vphi import VPhiConfig
from repro.workloads import ClientContext, rma_read_throughput

TRANSFER = 256 * MB
CHUNK_SIZES = [256 * 1024, 512 * 1024, MB, 2 * MB, 4 * MB]


def run_chunk_ablation():
    out = []
    for chunk in CHUNK_SIZES:
        machine = fresh_machine()
        vm = machine.create_vm("vm0", vphi_config=VPhiConfig(chunk_size=chunk))
        series = rma_read_throughput(machine, ClientContext.guest(vm), [TRANSFER])
        out.append((chunk, series[0][1]))
    return out


def test_ablation_chunk_size(run_once):
    data = run_once(run_chunk_ablation)

    rows = [[fmt_size(c), f"{bw / 1e9:.2f}"] for c, bw in data]
    print_table(
        f"A3: vPHI remote-read peak vs bounce-chunk size ({fmt_size(TRANSFER)} transfer)",
        ["chunk", "GB/s"],
        rows,
    )

    bws = [bw for _, bw in data]
    # throughput is monotone in chunk size
    assert all(b >= a for a, b in zip(bws, bws[1:]))
    # the 4MB default hits the Fig 5 anchor
    assert bws[-1] == pytest.approx(4.6e9, rel=0.02)
    # tiny chunks hurt badly (16x more per-chunk overhead)
    assert bws[0] < 0.75 * bws[-1]
    # but doubling from 2MB to 4MB buys little: the knee is before 4MB,
    # so KMALLOC_MAX_SIZE is not the bottleneck the name suggests
    assert bws[-1] / bws[-2] < 1.10
