"""Ablation A3: KMALLOC bounce-chunk size vs vPHI RMA throughput.

§III chunks transfers at KMALLOC_MAX_SIZE = 4 MB because Linux cannot
kmalloc more physically contiguous memory.  Two effects compete:

* smaller chunks multiply the per-chunk submission + DMA setup overhead
  (256 KB chunks clearly depress the peak);
* chunk sizes small enough to split the 256 MB transfer across several
  ring submissions ride the frontend's *batched* segment path, where the
  guest's kernel->user gather copy of one segment overlaps the backend's
  DMA of the next — which is why the 1 MB point (two batched segments)
  actually beats the single-segment 4 MB default.

The 4 MB ceiling is still a fine operating point (it anchors Fig 5),
but the knee analysis shows the bounce *copy*, not the chunk size, is
the structural cost — and that segment pipelining, not a larger
contiguous allocator, is the way to claw some of it back.
"""

import pytest

from conftest import MB, fmt_size, fresh_machine, print_table
from repro.vphi import VPhiConfig
from repro.workloads import ClientContext, rma_read_throughput

TRANSFER = 256 * MB
CHUNK_SIZES = [256 * 1024, 512 * 1024, MB, 2 * MB, 4 * MB]


def run_chunk_ablation():
    out = []
    for chunk in CHUNK_SIZES:
        machine = fresh_machine()
        vm = machine.create_vm("vm0", vphi_config=VPhiConfig(chunk_size=chunk))
        series = rma_read_throughput(machine, ClientContext.guest(vm), [TRANSFER])
        out.append((chunk, series[0][1]))
    return out


def test_ablation_chunk_size(run_once):
    data = run_once(run_chunk_ablation)

    rows = [[fmt_size(c), f"{bw / 1e9:.2f}"] for c, bw in data]
    print_table(
        f"A3: vPHI remote-read peak vs bounce-chunk size ({fmt_size(TRANSFER)} transfer)",
        ["chunk", "GB/s"],
        rows,
    )

    bws = dict(data)
    # the 4MB default hits the Fig 5 anchor
    assert bws[4 * MB] == pytest.approx(4.6e9, rel=0.02)
    # tiny chunks still hurt: 16x the per-chunk overhead of the default
    assert bws[256 * 1024] < 0.8 * bws[4 * MB]
    # among non-segmenting sizes (>= 2MB: one ring submission for the
    # whole 256MB) throughput is monotone in chunk size
    assert bws[2 * MB] <= bws[4 * MB]
    # the segmented+batched 1MB point overlaps gather copies with the
    # next segment's DMA and beats the single-segment default
    assert bws[MB] > bws[4 * MB]
    # but doubling from 2MB to 4MB buys little: the knee is before 4MB,
    # so KMALLOC_MAX_SIZE is not the bottleneck the name suggests
    assert bws[4 * MB] / bws[2 * MB] < 1.10
