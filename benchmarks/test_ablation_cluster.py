"""Ablation A13: live-migration downtime vs journal size; churn vs SLO.

Two sweeps pin the cluster layer's costs:

**Downtime vs journal size.**  Live migration replays the session
journal against the destination card (DESIGN §14), so downtime — fence
through activate, everything but the live RAM pre-copy — is paid per
journaled op exactly like A11's reset recovery.  A VM holding N full
sessions (connect + registered window + mmap each) migrates cross-host;
the series is downtime as a function of replayed ops.  The shape
assertions pin linearity: the per-op marginal cost stays sub-ms and
roughly constant, so a scheduler can price a move by journal size alone.

**Churn rate vs SLO violations.**  Two wfq tenants exchange fixed-cadence
echoes while the first is migrated K times.  A request that lands during
the fence→activate window parks at the session gate and completes after
replay — correct but late.  The series counts SLO violations (latency
over budget, plus any errors) per churn rate: zero without churn, a
bounded handful per migration, never an error — and the tenant's wfq
share survives every re-registration on the destination card's arbiter.
"""

import numpy as np

from conftest import print_table
from repro.cluster import Cluster, live_migrate
from repro.scif import MapFlag
from repro.sim import us
from repro.vphi import VPhiConfig

KB = 1 << 10
MB = 1 << 20
PORT = 25_000
WIN = 64 * KB
FIXED_ROFF = 0x40000
ENDPOINT_COUNTS = (1, 2, 4, 8)
FILL = 0x5A
#: small guest RAM keeps the live pre-copy short; it is not part of
#: downtime either way.
RAM = 64 * MB

# -- churn sweep knobs -------------------------------------------------
CHURN_COUNTS = (0, 1, 2, 4)
ROUND_INTERVAL = 0.5e-3
ROUNDS = 120
#: SLO budget per RMA round — 2x the uncontended 4KB writeto (390us in
#: the calibrated model), well below the migration downtime window.
SLO = 800e-6
RMA_BYTES = 4096


def spawn_resilient_server(cluster, ref, port, size=WIN, fill=FILL):
    """Accept-forever card server at a fixed window offset, one per
    card: a migrated-in session finds identical remote state on the
    destination (the restartable-daemon pattern from A11)."""
    machine = cluster.machine(ref)
    sproc = machine.card_process(f"a13-srv-{ref}-{port}", card=ref.card)
    slib = machine.scif(sproc)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(
            vma.start, np.full(size, fill, dtype=np.uint8))
        while True:
            conn, _ = yield from slib.accept(ep)
            yield from slib.register(
                conn, vma.start, size,
                offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
            )

    machine.sim.spawn(server(), name=f"a13-srv-{ref}-{port}")


def run_migration_scenario(n_endpoints: int):
    """One VM with ``n_endpoints`` full sessions, one cross-host move.

    Returns ``(report, sums)``: the MigrationReport and post-migration
    per-endpoint read checksums (first endpoint re-written after the
    move, the rest untouched destination fill).
    """
    cluster = Cluster(hosts=2, cards_per_host=1)
    cluster.boot()
    for ref in cluster.cards:
        for i in range(n_endpoints):
            spawn_resilient_server(cluster, ref, PORT + i)
    vm = cluster.create_vm(
        "vm0", ram_bytes=RAM, vphi_config=VPhiConfig(recovery_policy="queue")
    )
    src = cluster.placement_of("vm0")
    dest = [r for r in cluster.cards if r != src][0]
    gproc = vm.guest_process("a13-client")
    glib = vm.vphi.libscif(gproc)
    out = {}

    def client():
        node = cluster.node_of(src)
        eps, loffs, vmas = [], [], []
        for i in range(n_endpoints):
            ep = yield from glib.open()
            yield from glib.connect(ep, (node, PORT + i))
            vma = gproc.address_space.mmap(WIN, populate=True)
            gproc.address_space.write(
                vma.start, np.full(WIN, 0x11, dtype=np.uint8))
            loff = yield from glib.register(ep, vma.start, WIN)
            yield from glib.mmap(ep, FIXED_ROFF, WIN)
            eps.append(ep)
            loffs.append(loff)
            vmas.append(vma)
        report = yield from live_migrate(cluster, vm, dest)
        out["report"] = report
        # post-migration RMA against the rebuilt first session
        yield from glib.writeto(eps[0], loffs[0], WIN, FIXED_ROFF)
        sums = []
        for ep, loff, vma in zip(eps, loffs, vmas):
            gproc.address_space.write(
                vma.start, np.zeros(WIN, dtype=np.uint8))
            yield from glib.readfrom(ep, loff, WIN, FIXED_ROFF)
            sums.append(int(gproc.address_space.read(vma.start, WIN).sum()))
        out["sums"] = sums

    c = vm.spawn_guest(client())
    cluster.run()
    assert c.triggered, "A13 migration client deadlocked"
    return out["report"], out["sums"]


def run_downtime_ablation():
    """``[(n_sessions, replayed_ops, downtime_s, journal_size)]``."""
    series = []
    for n in ENDPOINT_COUNTS:
        report, sums = run_migration_scenario(n)
        assert not report.broken
        assert sums[0] == 0x11 * WIN, "post-migration write lost or torn"
        for s in sums[1:]:
            assert s == FILL * WIN, "migrated window returned corrupt data"
        series.append((n, report.replayed_ops, report.downtime,
                       report.journal_size))
    return series


# ----------------------------------------------------------------------
# churn sweep
# ----------------------------------------------------------------------

def run_churn_scenario(migrations: int):
    """Two wfq tenants, fixed-cadence RMA rounds, K migrations of the
    gold tenant.

    RMA rounds (writeto against the card's resilient fixed window) are
    migration-safe by construction — each op either completes before
    the fence or parks at the gate and lands late against the rebuilt
    window.  Stream echoes would not be: reply bytes in flight at the
    fence die with the severed connection (re-dial semantics, DESIGN
    §14), which is an application-protocol concern, not an SLO one.

    Returns ``(violations, completed, errors)`` for the gold tenant.
    """
    from repro.scif.errors import ScifError

    cluster = Cluster(hosts=2, cards_per_host=1)
    cluster.boot()
    for ref in cluster.cards:
        spawn_resilient_server(cluster, ref, PORT)
    cfgs = {
        "gold": VPhiConfig(recovery_policy="queue", backend_workers=2,
                           qos_share=2.0),
        "best": VPhiConfig(recovery_policy="queue", backend_workers=2,
                           qos_share=1.0),
    }
    vms = {name: cluster.create_vm(name, ram_bytes=RAM, vphi_config=cfg,
                                   arbiter_policy="wfq")
           for name, cfg in cfgs.items()}
    stats = {name: {"violations": 0, "completed": 0, "errors": 0}
             for name in vms}
    done = {}

    def tenant(name, idx):
        vm = vms[name]
        gproc = vm.guest_process(f"{name}-load")
        lib = vm.vphi.libscif(gproc)
        sim = cluster.sim
        st = stats[name]
        ep = yield from lib.open()
        ref = cluster.placement_of(name)
        yield from lib.connect(ep, (cluster.node_of(ref), PORT))
        vma = gproc.address_space.mmap(RMA_BYTES, populate=True)
        pattern = np.full(RMA_BYTES, 0x20 + idx, dtype=np.uint8)
        gproc.address_space.write(vma.start, pattern)
        loff = yield from lib.register(ep, vma.start, RMA_BYTES)
        roff = FIXED_ROFF + idx * 4096  # disjoint per-tenant region
        for r in range(ROUNDS):
            t0 = sim.now
            try:
                yield from lib.writeto(ep, loff, RMA_BYTES, roff)
                st["completed"] += 1
                if sim.now - t0 > SLO:
                    st["violations"] += 1
            except ScifError:
                st["errors"] += 1
                st["violations"] += 1
            wake = t0 + ROUND_INTERVAL
            if wake > sim.now:
                yield sim.timeout(wake - sim.now)
        # settle until all churn has landed, then verify no tenant
        # cross-corrupted another's region: write own pattern, read it
        # back through the (possibly migrated) session
        while len(cluster.migrations) < migrations:
            yield sim.timeout(1e-3)
        yield from lib.writeto(ep, loff, RMA_BYTES, roff)
        gproc.address_space.write(
            vma.start, np.zeros(RMA_BYTES, dtype=np.uint8))
        yield from lib.readfrom(ep, loff, RMA_BYTES, roff)
        got = gproc.address_space.read(vma.start, RMA_BYTES)
        assert (got == pattern).all(), f"{name}: payload cross-corrupted"
        done[name] = True

    for i, name in enumerate(vms):
        cluster.sim.spawn(tenant(name, i), name=f"a13-tenant-{name}")

    def director():
        if not migrations:
            return
        span = ROUNDS * ROUND_INTERVAL
        gap = span / (migrations + 1)
        for k in range(migrations):
            due = (k + 1) * gap
            if due > cluster.sim.now:
                yield cluster.sim.timeout(due - cluster.sim.now)
            yield from cluster.migrate(vms["gold"])

    cluster.sim.spawn(director(), name="a13-director")
    cluster.run()

    assert len(cluster.migrations) == migrations
    assert done.get("gold") and done.get("best"), "A13b tenant deadlocked"
    # wfq share survives every re-registration on the destination card
    ref = cluster.placement_of("gold")
    arb = cluster.machine(ref).arbiter_for(ref.card)
    assert arb._weights.get("gold") == 2.0, "wfq share lost in migration"
    for m in cluster.machines:
        for a in m.card_arbiters.values():
            assert a.free == a.slots, f"{a.name} leaked credits"
    st = stats["gold"]
    assert st["completed"] + st["errors"] == ROUNDS, "tenant stranded a round"
    assert stats["best"]["completed"] == ROUNDS, "bystander tenant disturbed"
    return st["violations"], st["completed"], st["errors"]


def run_churn_ablation():
    """``[(migrations, violations, completed, errors)]``."""
    return [(k,) + run_churn_scenario(k) for k in CHURN_COUNTS]


# ----------------------------------------------------------------------
# the test
# ----------------------------------------------------------------------

def test_ablation_cluster_migration(run_once):
    downtime = run_once(run_downtime_ablation)

    rows = [[f"{n} sessions", f"{ops}", f"{t / us(1):.1f} us"]
            for n, ops, t, _ in downtime]
    print_table(
        "Ablation A13a: migration downtime vs journal size "
        f"(cross-host, {WIN // KB}KB windows)",
        ["journal", "replayed ops", "downtime"], rows)

    # --- downtime is paid per journaled op: bigger journal, strictly
    # longer stop-the-guest window, sub-ms marginal cost, ~linear ---
    ops = [o for _, o, _, _ in downtime]
    times = [t for _, _, t, _ in downtime]
    assert ops == sorted(ops) and len(set(ops)) == len(ops)
    assert times == sorted(times) and len(set(times)) == len(times)
    for (n, o, _, j) in downtime:
        assert o == 4 * n and j == 4 * n
    marginals = [
        (times[i + 1] - times[i]) / (ops[i + 1] - ops[i])
        for i in range(len(times) - 1)
    ]
    for m in marginals:
        assert 0 < m < 1e-3, "per-op replay cost left the sub-ms regime"
    assert max(marginals) / min(marginals) < 2.0, \
        "downtime is not ~linear in journal size"
    assert times[-1] < 50e-3


def test_ablation_cluster_churn(run_once):
    churn = run_once(run_churn_ablation)
    rows = [[f"{k} migrations", f"{v}", f"{c}", f"{e}"]
            for k, v, c, e in churn]
    print_table(
        "Ablation A13b: churn rate vs SLO violations "
        f"(2 wfq tenants, {ROUNDS} rounds @ {ROUND_INTERVAL / us(1):.0f}us, "
        f"SLO {SLO / us(1):.0f}us)",
        ["churn", "violations", "completed", "errors"], rows)

    # --- violations come only from migration windows: none without
    # churn, monotone non-decreasing with it, bounded per migration,
    # and never an error — parked requests complete late, not wrong ---
    by_k = {k: (v, c, e) for k, v, c, e in churn}
    assert by_k[0][0] == 0, "SLO violated without churn — budget too tight"
    viols = [v for _, v, _, _ in churn]
    assert viols == sorted(viols)
    for k, v, c, e in churn:
        assert e == 0, "migration surfaced errors to a queue-policy tenant"
        assert c == ROUNDS
        if k:
            assert 1 <= v <= 4 * k, (
                f"{v} violations for {k} migrations — downtime window "
                "leaking beyond the fence"
            )
