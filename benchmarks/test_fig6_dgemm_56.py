"""Figure 6: launch and execution of dgemm using 56 threads (1/core)."""

from dgemm_common import report_and_check, run_dgemm_figure

THREADS = 56


def test_fig6_dgemm_56_threads(run_once):
    results = run_once(run_dgemm_figure, THREADS)
    report_and_check(results, THREADS, fig="6")
