"""uOS scheduler: placement curve, processor sharing, oversubscription."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.phi import sku
from repro.sim import SimError, Simulator
from repro.uos import MICScheduler, placement_throughput
from repro.uos.scheduler import MULTIPLEX_PENALTY, OCCUPANCY

CARD = sku("3120P")


class TestPlacement:
    def test_zero_threads_zero_throughput(self):
        assert placement_throughput(0, CARD) == 0.0

    def test_56_threads_one_per_core(self):
        tp = placement_throughput(56, CARD)
        per_core = CARD.peak_dp_flops / CARD.cores
        assert tp == pytest.approx(56 * OCCUPANCY[1] * per_core)

    def test_112_threads_two_per_core(self):
        tp = placement_throughput(112, CARD)
        per_core = CARD.peak_dp_flops / CARD.cores
        assert tp == pytest.approx(56 * OCCUPANCY[2] * per_core)

    def test_224_threads_saturates_cores(self):
        tp = placement_throughput(224, CARD)
        per_core = CARD.peak_dp_flops / CARD.cores
        assert tp == pytest.approx(56 * OCCUPANCY[4] * per_core)

    def test_monotone_in_threads(self):
        tps = [placement_throughput(t, CARD) for t in range(1, 300)]
        assert all(b >= a - 1e-6 for a, b in zip(tps, tps[1:]))

    def test_paper_thread_counts_ordering(self):
        """More threads/core hides in-order stalls: 56 < 112 < 224."""
        t56 = placement_throughput(56, CARD)
        t112 = placement_throughput(112, CARD)
        t224 = placement_throughput(224, CARD)
        assert t56 < t112 < t224
        # one thread/core leaves ~45% of the card idle
        assert t56 / t224 == pytest.approx(0.55, abs=0.01)

    @given(st.integers(min_value=1, max_value=1000))
    def test_never_exceeds_usable_peak(self, threads):
        usable_peak = CARD.usable_cores * (CARD.peak_dp_flops / CARD.cores)
        assert placement_throughput(threads, CARD) <= usable_peak + 1e-3


class TestScheduler:
    def test_single_job_runtime_matches_model(self):
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        flops = 1e12
        done = sched.submit(flops, threads=112, name="dgemm")
        sim.run()
        job = done.value
        expected = flops / placement_throughput(112, CARD)
        assert job.finished_at == pytest.approx(expected, rel=1e-6)

    def test_efficiency_scales_runtime(self):
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d1 = sched.submit(1e12, threads=224, efficiency=1.0)
        sim.run()
        t_full = d1.value.finished_at

        sim2 = Simulator()
        sched2 = MICScheduler(sim2, CARD)
        d2 = sched2.submit(1e12, threads=224, efficiency=0.5)
        sim2.run()
        assert d2.value.finished_at == pytest.approx(2 * t_full, rel=1e-6)

    def test_two_jobs_share_cores_at_combined_occupancy(self):
        """56+56 threads co-resident at 2/core: the card runs at the
        112-thread occupancy and each job gets half — individually slower
        than solo (0.45 vs 0.55 of peak) but collectively faster."""
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d1 = sched.submit(1e11, threads=56, name="a")
        d2 = sched.submit(1e11, threads=56, name="b")
        sim.run()
        each_rate = placement_throughput(112, CARD) / 2
        expect = 1e11 / each_rate
        assert d1.value.finished_at == pytest.approx(expect, rel=1e-6)
        assert d2.value.finished_at == pytest.approx(expect, rel=1e-6)
        # slower than a solo run, but the pair beats two serial runs
        solo = 1e11 / placement_throughput(56, CARD)
        assert solo < expect < 2 * solo

    def test_oversubscription_multiplexes_fairly(self):
        """Two 224-thread jobs oversubscribe 2x: each runs ~2.17x slower
        (2x share + context-switch penalty)."""
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d1 = sched.submit(1e11, threads=224, name="vm0-dgemm")
        d2 = sched.submit(1e11, threads=224, name="vm1-dgemm")
        sim.run()
        solo = 1e11 / placement_throughput(224, CARD)
        expect = solo * 2 / MULTIPLEX_PENALTY
        assert d1.value.finished_at == pytest.approx(expect, rel=1e-3)
        assert d2.value.finished_at == pytest.approx(expect, rel=1e-3)
        assert sched.peak_demand == 448

    def test_staggered_arrival_rates_rebalance(self):
        """A job arriving mid-flight slows the first one down from then on."""
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d1 = sched.submit(2e11, threads=224, name="first")

        def late_submit():
            yield sim.timeout(0.05)
            return sched.submit(2e11, threads=224, name="second")

        p = sim.spawn(late_submit())
        sim.run()
        solo = 2e11 / placement_throughput(224, CARD)
        t1 = d1.value.finished_at
        # slower than solo, faster than full 2x-from-start
        assert solo < t1 < solo * 2 / MULTIPLEX_PENALTY
        # second job finishes after the first
        assert p.value.value.finished_at > t1

    def test_completion_frees_capacity(self):
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d1 = sched.submit(1e10, threads=224, name="short")
        d2 = sched.submit(1e12, threads=224, name="long")
        sim.run()
        assert sched.active_jobs == 0
        assert len(sched.completed) == 2
        assert d2.value.finished_at > d1.value.finished_at

    def test_invalid_submissions_rejected(self):
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        with pytest.raises(SimError):
            sched.submit(1e9, threads=0)
        with pytest.raises(SimError):
            sched.submit(-1, threads=4)
        with pytest.raises(SimError):
            sched.submit(1e9, threads=4, efficiency=1.5)

    def test_zero_flop_job_completes(self):
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        d = sched.submit(0.0, threads=8, name="empty")
        sim.run()
        assert d.value.finished_at == pytest.approx(0.0)

    @settings(max_examples=15, deadline=None)
    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=448),  # threads
                st.floats(min_value=1e8, max_value=1e11),  # flops
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_work_conservation_property(self, jobs):
        """Property: every submitted job completes, exactly once, with
        total progress equal to its flops."""
        sim = Simulator()
        sched = MICScheduler(sim, CARD)
        events = [sched.submit(f, threads=t) for t, f in jobs]
        sim.run()
        assert len(sched.completed) == len(jobs)
        for ev, (t, f) in zip(events, jobs):
            job = ev.value
            assert job.flops_done == pytest.approx(f, rel=1e-5)
            assert job.finished_at is not None
