"""Scheduler utilization accounting — the §I motivation, measurable."""

import pytest

from repro.phi import sku
from repro.sim import Simulator
from repro.uos import MICScheduler
from repro.uos.scheduler import OCCUPANCY

CARD = sku("3120P")


def test_utilization_of_a_full_card_kernel():
    sim = Simulator()
    sched = MICScheduler(sim, CARD)
    sched.submit(1e12, threads=224, efficiency=1.0)
    sim.run()
    # 224 threads saturate every usable core: utilization == OCCUPANCY[4]
    assert sched.utilization(sim.now) == pytest.approx(OCCUPANCY[4], rel=1e-6)


def test_one_thread_per_core_leaves_the_card_half_idle():
    sim = Simulator()
    sched = MICScheduler(sim, CARD)
    sched.submit(1e12, threads=56, efficiency=1.0)
    sim.run()
    assert sched.utilization(sim.now) == pytest.approx(OCCUPANCY[1], rel=1e-6)


def test_sharing_raises_utilization_over_serial_use():
    """The consolidation argument: two half-card tenants together use the
    card better than either alone."""
    sim = Simulator()
    sched = MICScheduler(sim, CARD)
    sched.submit(5e11, threads=112, efficiency=1.0, name="tenant-a")
    sched.submit(5e11, threads=112, efficiency=1.0, name="tenant-b")
    sim.run()
    shared_util = sched.utilization(sim.now)

    sim2 = Simulator()
    solo = MICScheduler(sim2, CARD)
    solo.submit(5e11, threads=112, efficiency=1.0)
    sim2.run()
    d2 = solo.submit(5e11, threads=112, efficiency=1.0)
    sim2.run()
    serial_util = solo.utilization(sim2.now)
    assert shared_util > serial_util
    # two concurrent 112-thread jobs fill all 224 hardware threads: the
    # card runs at full (4 threads/core) occupancy while they overlap
    assert shared_util == pytest.approx(OCCUPANCY[4], rel=1e-6)
    assert serial_util == pytest.approx(OCCUPANCY[2], rel=1e-6)


def test_flops_conservation():
    sim = Simulator()
    sched = MICScheduler(sim, CARD)
    sched.submit(3e11, threads=100)
    sched.submit(2e11, threads=224)
    sim.run()
    assert sched.flops_delivered == pytest.approx(5e11, rel=1e-6)
    assert sched.busy_time > 0
    assert sched.utilization(0) == 0.0
