"""mic0 network, sshd, ssh launch path, the §IV-A isolation problem."""

import numpy as np
import pytest

from repro import Machine
from repro.micnet import (
    MicNetwork,
    NetBridge,
    NetSocket,
    SshDaemon,
    ssh_connect,
    ssh_native_launch,
)
from repro.scif import ECONNREFUSED, ScifError
from repro.workloads import DGEMM_BINARY
from repro.workloads.microbench import ClientContext

MB = 1 << 20


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


@pytest.fixture
def network(machine):
    return MicNetwork(machine)


def run(machine, gen):
    p = machine.sim.spawn(gen)
    machine.run()
    return p.value


class TestNetwork:
    def test_addressing(self, machine, network):
        assert network.resolve("172.31.0.254") == 0
        assert network.resolve("172.31.0.1") == machine.card_node_id(0)
        assert network.card_ip(0) == "172.31.0.1"
        with pytest.raises(ECONNREFUSED):
            network.resolve("10.0.0.1")

    def test_two_cards_two_subnets(self):
        m = Machine(cards=2).boot()
        net = MicNetwork(m)
        assert net.resolve("172.31.0.1") == m.card_node_id(0)
        assert net.resolve("172.31.1.1") == m.card_node_id(1)

    def test_socket_stream_roundtrip(self, machine, network):
        sproc = machine.card_process("netsrv")
        slib = machine.scif(sproc)
        payload = np.random.default_rng(0).integers(0, 256, 200_000, dtype=np.uint8)

        def server():
            listener = NetSocket(network, slib)
            yield from listener.bind_listen(5000)
            sock, peer = yield from listener.accept()
            data = yield from sock.recv(len(payload))
            yield from sock.send(data[::-1].copy())
            return peer

        cproc = machine.host_process("netcli")
        clib = machine.scif(cproc)

        def client():
            sock = NetSocket(network, clib)
            yield from sock.connect("172.31.0.1", 5000)
            yield from sock.send(payload)
            back = yield from sock.recv(len(payload))
            yield from sock.close()
            return back

        s = machine.sim.spawn(server())
        c = machine.sim.spawn(client())
        machine.run()
        assert np.array_equal(c.value, payload[::-1])
        assert s.value[0] == "172.31.0.254"

    def test_tunnel_is_slower_than_raw_scif(self, machine, network):
        """The emulated-net tax: 1 MB over mic0 vs over raw SCIF."""
        size = MB
        sproc = machine.card_process("sink")
        slib = machine.scif(sproc)

        def net_server():
            listener = NetSocket(network, slib)
            yield from listener.bind_listen(5001)
            sock, _ = yield from listener.accept()
            yield from sock.recv(size)

        def raw_server():
            ep = yield from slib.open()
            yield from slib.bind(ep, 5002)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield from slib.recv(conn, size)

        cproc = machine.host_process("cli")
        clib = machine.scif(cproc)

        def client():
            sock = NetSocket(network, clib)
            yield from sock.connect("172.31.0.1", 5001)
            t0 = machine.sim.now
            yield from sock.send(np.zeros(size, dtype=np.uint8))
            t_net = machine.sim.now - t0
            ep = yield from clib.open()
            yield from clib.connect(ep, (machine.card_node_id(0), 5002))
            t0 = machine.sim.now
            yield from clib.send(ep, np.zeros(size, dtype=np.uint8))
            t_raw = machine.sim.now - t0
            return t_net, t_raw

        machine.sim.spawn(net_server())
        machine.sim.spawn(raw_server())
        c = machine.sim.spawn(client())
        machine.run()
        t_net, t_raw = c.value
        assert t_net > 2 * t_raw  # the netstack tax is real


class TestSshd:
    def test_scp_exec_roundtrip(self, machine, network):
        SshDaemon(machine, network=network).start()
        cproc = machine.host_process("user")
        clib = machine.scif(cproc)

        def body():
            sock = NetSocket(network, clib)
            session = yield from ssh_connect(network, sock, "172.31.0.1", user="alice")
            assert "uOS" in session.banner
            yield from session.scp(f"/tmp/{DGEMM_BINARY.name}", DGEMM_BINARY.content())
            for dep in DGEMM_BINARY.deps:
                yield from session.scp(f"/tmp/{dep.name}",
                                       np.zeros(dep.size, dtype=np.uint8))
            files = yield from session.ls()
            record = yield from session.exec("dgemm", argv=["64", "56"])
            yield from session.close()
            return files, record

        files, record = run(machine, body())
        assert f"/tmp/dgemm" in files
        assert record["status"] == 0
        assert record["c_checksum"] == pytest.approx(record["c_expected"])

    def test_exec_without_scp_fails(self, machine, network):
        SshDaemon(machine, network=network).start()
        clib = machine.scif(machine.host_process("user"))

        def body():
            sock = NetSocket(network, clib)
            session = yield from ssh_connect(network, sock, "172.31.0.1")
            with pytest.raises(ScifError, match="No such file"):
                yield from session.exec("dgemm")
            yield from session.close()
            return True

        assert run(machine, body()) is True

    def test_exec_with_missing_library_fails(self, machine, network):
        SshDaemon(machine, network=network).start()
        clib = machine.scif(machine.host_process("user"))

        def body():
            sock = NetSocket(network, clib)
            session = yield from ssh_connect(network, sock, "172.31.0.1")
            yield from session.scp(f"/tmp/{DGEMM_BINARY.name}", DGEMM_BINARY.content())
            with pytest.raises(ScifError, match="shared libraries"):
                yield from session.exec("dgemm")
            yield from session.close()
            return True

        assert run(machine, body()) is True

    def test_corrupted_upload_detected(self, machine, network):
        SshDaemon(machine, network=network).start()
        clib = machine.scif(machine.host_process("user"))

        def body():
            sock = NetSocket(network, clib)
            session = yield from ssh_connect(network, sock, "172.31.0.1")
            bad = DGEMM_BINARY.content()
            bad[0] ^= 0xFF
            yield from session.scp(f"/tmp/{DGEMM_BINARY.name}", bad)
            for dep in DGEMM_BINARY.deps:
                yield from session.scp(f"/tmp/{dep.name}",
                                       np.zeros(dep.size, dtype=np.uint8))
            with pytest.raises(ScifError, match="corrupted"):
                yield from session.exec("dgemm")
            yield from session.close()
            return True

        assert run(machine, body()) is True


class TestIsolationProblem:
    def test_bridged_vms_see_each_other(self, machine, network):
        """§IV-A: bridged ssh access 'can end up with many users logged in
        a shared accelerator environment ruining the isolation
        characteristics of cloud computing' — demonstrated: each bridged
        VM's user is visible to the other via `who`."""
        daemon = SshDaemon(machine, network=network).start()
        vm1 = machine.create_vm("vm-alice")
        vm2 = machine.create_vm("vm-bob")
        b1 = NetBridge(machine, vm1, network)
        b2 = NetBridge(machine, vm2, network)

        def user(bridge, name):
            def body():
                sock = bridge.socket()
                session = yield from ssh_connect(network, sock, "172.31.0.1", user=name)
                yield from session.scp("/tmp/secret-" + name, b"x" * 1024)
                visible = yield from session.who()
                yield from session.close()
                return visible

            return body()

        p1 = machine.sim.spawn(user(b1, "alice"))
        p2 = machine.sim.spawn(user(b2, "bob"))
        machine.run()
        # bob's session sees alice's (and vice versa): no isolation
        users_seen_by_bob = {s["user"] for s in p2.value}
        assert "alice" in users_seen_by_bob or "alice" in {
            s["user"] for s in p1.value
        } and "bob" in {s["user"] for s in p1.value + p2.value}
        # and the card filesystem mixes both tenants' files
        assert "/tmp/secret-alice" in daemon.filesystem
        assert "/tmp/secret-bob" in daemon.filesystem

    def test_vphi_clients_do_not_appear_in_ssh_sessions(self, machine, network):
        """By contrast, vPHI tenants never log into the card at all."""
        daemon = SshDaemon(machine, network=network).start()
        vm = machine.create_vm("vm0")
        ctx = ClientContext.guest(vm)
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("srv"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, 6000)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield from slib.recv(conn, 1)

        def client():
            ep = yield from ctx.lib.open()
            yield from ctx.lib.connect(ep, (card_node, 6000))
            yield from ctx.lib.send(ep, b"x")

        machine.sim.spawn(server())
        ctx.spawn(client())
        machine.run()
        assert daemon.sessions == []


class TestSshLaunch:
    def test_ssh_launch_matches_micnativeloadex_result(self, machine, network):
        """Both §IV-A native-mode variants produce the same computation;
        the ssh path just pays the slow tunnel for the 119MB of binaries."""
        from repro.coi import start_coi_daemon
        from repro.mpss import micnativeloadex

        SshDaemon(machine, network=network).start()
        start_coi_daemon(machine, card=0)

        clib = machine.scif(machine.host_process("sshuser"))

        def ssh_body():
            sock = NetSocket(network, clib)
            res = yield from ssh_native_launch(
                machine, network, sock, DGEMM_BINARY, argv=["128", "112"]
            )
            return res

        ctx = ClientContext.native(machine, "mloadex")

        def tool_body():
            res = yield from micnativeloadex(machine, ctx, DGEMM_BINARY,
                                             argv=["128", "112"])
            return res

        p_ssh = machine.sim.spawn(ssh_body())
        machine.run()
        p_tool = machine.sim.spawn(tool_body())
        machine.run()
        ssh_res, tool_res = p_ssh.value, p_tool.value
        assert ssh_res.status == 0 and tool_res.status == 0
        assert ssh_res.exit_record["c_checksum"] == pytest.approx(
            tool_res.exit_record["c_checksum"]
        )
        # the explicit-copy path is much slower at shipping the binaries
        assert ssh_res.transfer_time > 3 * tool_res.transfer_time
