"""mic0 framing details: MTU segmentation, bridge hop, byte accounting."""

import numpy as np
import pytest

from repro import Machine
from repro.micnet import MicNetwork, NetBridge, NetSocket
from repro.micnet.stack import FRAME_COST, MTU
from repro.scif import EINVAL


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


@pytest.fixture
def network(machine):
    return MicNetwork(machine)


def test_send_segments_at_the_mtu(machine, network):
    """A 3.5-MTU payload crosses as 4 frames (visible in the frame-cost
    time and in the SCIF send counter)."""
    size = 3 * MTU + MTU // 2
    sproc = machine.card_process("sink")
    slib = machine.scif(sproc)

    def server():
        listener = NetSocket(network, slib)
        yield from listener.bind_listen(6100)
        sock, _ = yield from listener.accept()
        yield from sock.recv(size)

    cproc = machine.host_process("cli")
    clib = machine.scif(cproc)

    def client():
        sock = NetSocket(network, clib)
        yield from sock.connect("172.31.0.1", 6100)
        sends_before = machine.tracer.counters["scif.send"]
        t0 = machine.sim.now
        yield from sock.send(np.zeros(size, dtype=np.uint8))
        dt = machine.sim.now - t0
        frames = machine.tracer.counters["scif.send"] - sends_before
        return frames, dt

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    frames, dt = c.value
    assert frames == 4
    assert dt >= 4 * FRAME_COST


def test_socket_accounting(machine, network):
    sproc = machine.card_process("sink")
    slib = machine.scif(sproc)

    def server():
        listener = NetSocket(network, slib)
        yield from listener.bind_listen(6101)
        sock, _ = yield from listener.accept()
        data = yield from sock.recv(1000)
        yield from sock.send(data)
        return sock.bytes_received, sock.bytes_sent

    cproc = machine.host_process("cli")
    clib = machine.scif(cproc)

    def client():
        sock = NetSocket(network, clib)
        yield from sock.connect("172.31.0.1", 6101)
        yield from sock.send(bytes(1000))
        yield from sock.recv(1000)
        return sock.bytes_sent, sock.bytes_received

    s = machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert s.value == (1000, 1000)
    assert c.value == (1000, 1000)


def test_bad_tcp_port_rejected(machine, network):
    slib = machine.scif(machine.card_process("p"))

    def body():
        sock = NetSocket(network, slib)
        with pytest.raises(EINVAL):
            yield from sock.bind_listen(0)
        with pytest.raises(EINVAL):
            yield from sock.bind_listen(70000)
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_bridged_socket_pays_the_extra_hop(machine, network):
    """Bridge latency: the same 1-byte exchange is slower from a bridged
    VM socket than from a host socket."""
    vm = machine.create_vm("vm0")
    bridge = NetBridge(machine, vm, network)
    sproc = machine.card_process("sink")
    slib = machine.scif(sproc)

    def echo_server(port):
        def body():
            listener = NetSocket(network, slib)
            yield from listener.bind_listen(port)
            sock, _ = yield from listener.accept()
            data = yield from sock.recv(1)
            yield from sock.send(data)

        machine.sim.spawn(body())

    echo_server(6102)
    echo_server(6103)
    hlib = machine.scif(machine.host_process("hostcli"))

    def timed_roundtrip(sock, port):
        yield from sock.connect("172.31.0.1", port)
        t0 = machine.sim.now
        yield from sock.send(b"\x01")
        yield from sock.recv(1)
        return machine.sim.now - t0

    h = machine.sim.spawn(timed_roundtrip(NetSocket(network, hlib), 6102))
    b = machine.sim.spawn(timed_roundtrip(bridge.socket(), 6103))
    machine.run()
    assert b.value > h.value


def test_vm_gets_an_address_on_the_bridge(machine, network):
    vm = machine.create_vm("vm0")
    bridge = NetBridge(machine, vm, network)
    assert bridge.vm_ip.startswith("172.31.0.")
    assert network.resolve(bridge.vm_ip) == 0  # reachable via the host node
