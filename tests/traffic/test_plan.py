"""Traffic plans: validation, expansion, serialization round-trips."""

import json

import pytest

from repro.traffic import Poisson, TenantSpec, TrafficPlan, WorkloadMix
from repro.traffic.plan import plan_check


def simple_plan(**kw):
    defaults = dict(
        tenants=[TenantSpec(name="t", arrivals=Poisson(1000.0),
                            mix=WorkloadMix.interactive(), count=3)],
        policy="wfq", duration=0.01, seed=5,
    )
    defaults.update(kw)
    return TrafficPlan(**defaults)


class TestMix:
    def test_presets_round_trip_by_name(self):
        for name in WorkloadMix.PRESETS:
            mix = getattr(WorkloadMix, name)()
            assert mix.to_dict() == name
            assert WorkloadMix.from_spec(name) == mix

    def test_custom_mix_round_trips_as_dict(self):
        mix = WorkloadMix("special", (("send", 128, 1.0),
                                      ("rma_read", 4096, 2.0)))
        d = mix.to_dict()
        assert isinstance(d, dict)
        assert WorkloadMix.from_spec(d) == mix

    def test_draw_is_deterministic_and_valid(self):
        import random
        mix = WorkloadMix.mixed()
        a = [mix.draw(random.Random(1)) for _ in range(5)]
        b = [mix.draw(random.Random(1)) for _ in range(5)]
        assert a == b
        kinds = {k for k, _, _ in mix.items}
        assert all(k in kinds for k, _ in a)

    def test_bad_mixes_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            WorkloadMix("x", (("malloc", 64, 1.0),))
        with pytest.raises(ValueError, match="no items"):
            WorkloadMix("x", ())
        with pytest.raises(ValueError, match="unknown mix preset"):
            WorkloadMix.from_spec("interactiv")


class TestPlanValidation:
    def test_expansion_names_tenants(self):
        plan = simple_plan()
        assert [t.name for t in plan.expanded()] == ["t-0", "t-1", "t-2"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            TrafficPlan(tenants=[
                TenantSpec(name="a", arrivals=Poisson(1.0),
                           mix=WorkloadMix.interactive()),
                TenantSpec(name="a", arrivals=Poisson(1.0),
                           mix=WorkloadMix.interactive()),
            ])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            simple_plan(policy="fifo")
        with pytest.raises(ValueError, match="duration"):
            simple_plan(duration=0.0)
        with pytest.raises(ValueError, match="no tenants"):
            TrafficPlan(tenants=[])
        with pytest.raises(ValueError, match="share must be >= 0"):
            TenantSpec(name="x", arrivals=Poisson(1.0),
                       mix=WorkloadMix.bulk(), share=-1.0)


class TestSerialization:
    def test_dict_round_trip(self):
        plan = simple_plan(slots=4, admit_queue_depth=16)
        clone = TrafficPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert [t.name for t in clone.expanded()] == \
            [t.name for t in plan.expanded()]

    def test_file_round_trip(self, tmp_path):
        plan = TrafficPlan.smoke(tenants=4)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        clone = TrafficPlan.from_file(path)
        assert clone.to_dict() == plan.to_dict()

    def test_bad_json_is_a_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            TrafficPlan.from_file(path)

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            TrafficPlan.from_dict({"tenants": [], "polcy": "rr"})

    def test_unknown_tenant_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            TrafficPlan.from_dict({"tenants": [
                {"name": "a", "arrivals": {"kind": "poisson", "rate": 1.0},
                 "wight": 2}
            ]})


class TestPlanCheck:
    def test_summary_lines(self):
        plan = simple_plan()
        lines = plan_check(plan)
        assert lines[0].startswith("plan ok: 3 tenants")
        assert any("t-0" in line for line in lines)

    def test_smoke_plan_is_oversubscribed_and_armed(self):
        plan = TrafficPlan.smoke(tenants=8, oversubscription=10.0)
        assert plan.admit_queue_depth is not None
        offered = sum(t.arrivals.rate for t in plan.expanded())
        # capacity ~ slots / 10us per 1 KB send
        assert offered >= 8 * plan.slots * 1e5
