"""Arrival generators: determinism, statistics, serialization."""

import pytest

from repro.traffic import Diurnal, MMPP, Poisson, make_arrivals


class TestDeterminism:
    @pytest.mark.parametrize("proc", [
        Poisson(rate=5000.0),
        MMPP(rate=2000.0, burst_rate=20000.0, mean_quiet=0.01,
             mean_burst=0.002),
        Diurnal(rate=5000.0, amplitude=0.8, period=0.05),
    ], ids=["poisson", "mmpp", "diurnal"])
    def test_same_seed_same_stream(self, proc):
        a = list(proc.times(seed=42, horizon=0.05))
        b = list(proc.times(seed=42, horizon=0.05))
        assert a == b
        assert a, "a 5 kHz process must emit something in 50 ms"
        c = list(proc.times(seed=43, horizon=0.05))
        assert a != c, "different seeds must decorrelate"

    def test_times_are_sorted_and_within_horizon(self):
        for proc in (Poisson(1e4),
                     MMPP(1e3, 1e5, 0.005, 0.001),
                     Diurnal(1e4, amplitude=0.5, period=0.02)):
            ts = list(proc.times(seed=1, horizon=0.02))
            assert ts == sorted(ts)
            assert all(0.0 < t <= 0.02 for t in ts)


class TestStatistics:
    def test_poisson_mean_rate(self):
        n = Poisson(rate=10_000.0).count(seed=3, horizon=1.0)
        assert 9_500 <= n <= 10_500  # ~5 sigma for a 10k-mean Poisson

    def test_mmpp_is_burstier_than_poisson_at_same_mean(self):
        """Matched mean rates: the two-state process must show higher
        inter-arrival variance (that's the point of MMPP)."""
        mmpp = MMPP(rate=1000.0, burst_rate=50_000.0, mean_quiet=0.01,
                    mean_burst=0.01)
        mean_rate = (1000.0 + 50_000.0) / 2
        pois = Poisson(rate=mean_rate)

        def cv2(ts):
            gaps = [b - a for a, b in zip(ts, ts[1:])]
            mu = sum(gaps) / len(gaps)
            var = sum((g - mu) ** 2 for g in gaps) / len(gaps)
            return var / (mu * mu)

        assert cv2(list(mmpp.times(5, 1.0))) > 2 * cv2(list(pois.times(5, 1.0)))

    def test_diurnal_peak_vs_trough(self):
        """Arrivals concentrate around the sinusoid's peak."""
        proc = Diurnal(rate=20_000.0, amplitude=0.9, period=1.0)
        ts = list(proc.times(seed=9, horizon=1.0))
        # rate(t) = r*(1 + a*sin(2*pi*t)): peak around t=0.25, trough 0.75
        peak = sum(0.0 <= t < 0.5 for t in ts)
        trough = sum(0.5 <= t < 1.0 for t in ts)
        assert peak > 2 * trough


class TestFactory:
    def test_round_trip(self):
        for proc in (Poisson(123.0),
                     MMPP(10.0, 1000.0, 0.5, 0.05),
                     Diurnal(99.0, amplitude=0.25, period=2.0)):
            clone = make_arrivals(proc.to_dict())
            assert type(clone) is type(proc)
            assert clone.to_dict() == proc.to_dict()
            assert (list(clone.times(7, 0.1)) == list(proc.times(7, 0.1)))

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals({"kind": "pareto", "rate": 1.0})

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ValueError):
            make_arrivals({"kind": "poisson", "rate": 1.0, "ratee": 2.0})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Poisson(rate=0.0)
        with pytest.raises(ValueError):
            Diurnal(rate=10.0, amplitude=1.5)
