"""The open-loop harness end-to-end: conservation, determinism, QoS.

Includes the chaos hook: setting ``VPHI_CHAOS_TRAFFIC=1`` (the nightly
job does) randomizes the plan seed; the failing seed is printed so a
red run replays bit-for-bit with ``TrafficPlan(..., seed=<seed>)``.
"""

import os
import random

import pytest

from repro.analysis import qos_stats, render_qos
from repro.traffic import (
    MMPP,
    Poisson,
    TenantSpec,
    TrafficPlan,
    WorkloadMix,
    run_plan,
)

# the nightly chaos job randomizes the traffic seed; CI stays pinned
if os.environ.get("VPHI_CHAOS_TRAFFIC"):
    CHAOS_SEED = random.SystemRandom().randrange(1 << 30)
else:
    CHAOS_SEED = 0


def small_plan(policy="wfq", seed=CHAOS_SEED, **kw):
    defaults = dict(
        tenants=[
            TenantSpec(name="fast", arrivals=Poisson(40_000.0),
                       mix=WorkloadMix.interactive(), share=2.0, count=3),
            TenantSpec(name="slow", arrivals=Poisson(20_000.0),
                       mix=WorkloadMix.interactive(), share=1.0, count=3),
        ],
        policy=policy, duration=0.004, seed=seed, slots=2,
        backend_workers=2, max_inflight=4, admit_queue_depth=6,
    )
    defaults.update(kw)
    return TrafficPlan(**defaults)


class TestConservation:
    @pytest.mark.parametrize("policy", ["rr", "wfq", "priority"])
    def test_every_arrival_gets_a_typed_outcome(self, policy):
        """The harness invariant under every policy, chaos-seeded in
        the nightly job: offered == completed + shed + errors, and the
        arbiter holds its full credit complement afterwards."""
        result = run_plan(small_plan(policy))
        result.check_conservation()  # raises on a stranded arrival
        total = sum(load.offered for load in result.loads)
        assert total > 0, f"seed {CHAOS_SEED}: no arrivals generated"
        shed = sum(load.shed for load in result.loads)
        assert shed > 0, (
            f"seed {CHAOS_SEED}: oversubscribed plan shed nothing — "
            "admission control is not engaging"
        )

    def test_conservation_with_bursty_arrivals(self):
        plan = small_plan(tenants=[
            TenantSpec(name="burst",
                       arrivals=MMPP(5_000.0, 100_000.0, 0.002, 0.001),
                       mix=WorkloadMix.mixed(), count=4),
        ])
        result = run_plan(plan)
        result.check_conservation()

    def test_conservation_when_tenant_vm_errors_mid_plan(self):
        """A tenant whose requests fail mid-plan still settles every
        arrival: errors are a typed outcome, not a leak.  Injected
        SCIF_ERROR on every 7th send — setup ops (open/connect) stay
        clean so the pacers all reach the measurement gate."""
        from repro.faults import FaultKind, FaultPlan, FaultSpec
        from repro.scif.errors import EINVAL
        from repro.system import Machine

        plan = FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR,
                                      errno=EINVAL, op="send", every=7))
        machine = Machine(cards=1, fault_plan=plan).boot()
        result = run_plan(small_plan("wfq", seed=3), machine=machine)
        result.check_conservation()
        errors = sum(load.errors for load in result.loads)
        completed = sum(load.completed for load in result.loads)
        assert errors > 0, "fault plan injected nothing"
        assert completed > 0, "every request failed — plan too aggressive"
        for load in result.loads:
            assert load.offered == load.completed + load.shed + load.errors


class TestDeterminism:
    def test_same_plan_same_counters(self):
        a = run_plan(small_plan(seed=11))
        b = run_plan(small_plan(seed=11))
        for la, lb in zip(a.loads, b.loads):
            assert (la.offered, la.completed, la.shed, la.errors) == \
                (lb.offered, lb.completed, lb.shed, lb.errors)
            assert la.latencies == lb.latencies

    def test_different_seed_different_trace(self):
        a = run_plan(small_plan(seed=11))
        b = run_plan(small_plan(seed=12))
        assert [x.offered for x in a.loads] != [x.offered for x in b.loads]


class TestQosIntegration:
    def test_wfq_report_shape_and_fairness(self):
        result = run_plan(small_plan("wfq"))
        result.check_conservation()
        report = qos_stats(result)
        assert report.policy == "wfq"
        assert len(report.tenants) == 6
        assert report.total_offered == sum(x.offered for x in result.loads)
        assert 0.0 < report.weighted_jain <= 1.0
        # equal-mix tenants at 2:1 shares under sustained overload: wfq
        # keeps share-normalized throughput close to even
        assert report.weighted_jain >= 0.9
        rendered = render_qos(report)
        assert "fast-0" in rendered and "wfq" in rendered
        for t in report.tenants:
            if t.completed:
                assert t.p50 <= t.p95 <= t.p99

    def test_render_limits_rows(self):
        result = run_plan(small_plan("rr"))
        rendered = render_qos(qos_stats(result), limit=2)
        assert "... and 4 more tenants" in rendered
