"""pepc control plane: scope resolution, property set/get, CLI."""

import pytest

from repro import Machine
from repro.cli import main
from repro.phi import PowerControl, Scope
from repro.sim import SimError


def powered(cards=2):
    return Machine(cards=cards, power_model="knc").boot()


class TestScopes:
    def test_global_addresses_every_card(self):
        m = powered(cards=2)
        rows = m.pepc().info()
        assert [r["card"] for r in rows] == ["mic0", "mic1"]
        assert all(r["state"] == "online" for r in rows)

    def test_card_scope_addresses_one_card(self):
        m = powered(cards=2)
        ctl = m.pepc()
        ctl.set_tdp(200.0, Scope.one_card(1))
        rows = ctl.info()
        assert rows[0]["tdp_cap_w"] == m.devices[0].sku.tdp_watts
        assert rows[1]["tdp_cap_w"] == 200.0

    def test_core_scope_addresses_a_subset(self):
        m = powered(cards=1)
        ctl = m.pepc()
        ctl.set_pstate(3, Scope.one_core([0, 1], card=0))
        row = ctl.info(Scope.one_card(0))[0]
        assert row["requested_pstate"][0] == 3
        assert row["requested_pstate"][1] == 3
        assert row["requested_pstate"][2] == 0
        # effective clock follows the request when nothing throttles
        assert row["effective_khz"][0] == 800_000
        assert row["effective_khz"][2] == 1_100_000

    def test_scope_str_forms(self):
        assert str(Scope.everything()) == "global"
        assert str(Scope.one_card(0)) == "c0"
        assert str(Scope.one_card(1, host=0)) == "h0c1"
        assert str(Scope.one_core([0, 3], card=2)) == "c2:cores[0, 3]"
        assert str(Scope.one_vm("vm0")) == "vm:vm0"

    def test_unmatched_scope_is_an_error(self):
        m = powered(cards=1)
        with pytest.raises(SimError, match="matches no cards"):
            m.pepc().info(Scope.one_card(7))

    def test_unknown_level_is_an_error(self):
        m = powered(cards=1)
        with pytest.raises(SimError, match="scope level"):
            m.pepc().info(Scope("package"))


class TestVmScope:
    def test_vm_scope_resolves_to_its_card(self):
        m = powered(cards=2)
        vm = m.create_vm("vm0", card=1)
        ctl = m.pepc(vms={"vm0": vm})
        ctl.set_pstate(2, Scope.one_vm("vm0"))
        rows = ctl.info()
        assert set(rows[0]["requested_pstate"].values()) == {0}
        assert set(rows[1]["requested_pstate"].values()) == {2}

    def test_unknown_vm_is_an_error(self):
        m = powered(cards=1)
        with pytest.raises(SimError, match="unknown VM"):
            m.pepc().set_pstate(1, Scope.one_vm("ghost"))


class TestErrors:
    def test_unpowered_card_is_a_typed_error(self):
        m = Machine(cards=1).boot()
        with pytest.raises(SimError, match="power_model='knc'"):
            m.pepc().info()

    def test_no_machines_rejected(self):
        with pytest.raises(SimError, match="at least one machine"):
            PowerControl([])


class TestCli:
    def test_pepc_card_scope_sets_and_renders(self, capsys):
        assert main(["pepc", "--card", "0", "--tdp", "200"]) == 0
        out = capsys.readouterr().out
        assert "scope: c0" in out
        assert "200" in out
        assert "mic0" in out

    def test_pepc_core_scope_renders_a_range(self, capsys):
        assert main(["pepc", "--core", "0-3", "--pstate", "5"]) == 0
        out = capsys.readouterr().out
        assert "cores[0, 1, 2, 3]" in out
        assert "P0-P5" in out

    def test_pepc_vm_scope(self, capsys):
        assert main(["pepc", "--vm", "--pstate", "2"]) == 0
        out = capsys.readouterr().out
        assert "scope: vm:vm0" in out
