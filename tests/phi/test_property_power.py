"""Power-model properties: monotone slowdowns, cap safety, determinism.

Three invariants the rest of the stack leans on:

* **lower frequency is never faster** — a deeper requested P-state can
  only stretch a compute job, and the cost multiplier only grows with
  depth (the registry's fixed costs never get cheaper under throttle);
* **the ladder is power-monotone** — deeper floors draw fewer watts, so
  the governor's lowest-feasible-floor scan is well-defined;
* **seed-determinism** — the same cap and workload reproduce the exact
  job time and energy, which is what lets A14 commit golden floats.
"""

import os

from hypothesis import given, settings, strategies as st

from repro import Machine
from repro.phi import PowerConfig, Scope, XeonPhiDevice, sku
from repro.sim import Simulator, run_with

N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "8"))

CARD = sku("3120P")
N_PSTATES = 6
#: small job keeps each Hypothesis example cheap (~50 ms simulated)
FLOPS = 2e10


def job_time(pstate=None, cap=None):
    m = Machine(cards=1, power_model="knc").boot()
    if pstate is not None:
        m.pepc().set_pstate(pstate, Scope.one_card(0))
    if cap is not None:
        m.pepc().set_tdp(cap, Scope.one_card(0))
    out = {}

    def drive():
        job = yield from m.uos(0).run_compute(FLOPS, 224, efficiency=0.8,
                                              name="prop")
        out["t"] = job.finished_at - job.started_at

    m.sim.spawn(drive(), name="prop-drive")
    m.run()
    return out["t"], m.devices[0].power


@settings(max_examples=N_EXAMPLES, deadline=None)
@given(st.integers(min_value=0, max_value=N_PSTATES - 1),
       st.integers(min_value=0, max_value=N_PSTATES - 1))
def test_deeper_pstate_never_faster(a, b):
    lo, hi = sorted((a, b))
    t_lo, _ = job_time(pstate=lo)
    t_hi, _ = job_time(pstate=hi)
    assert t_hi >= t_lo
    if hi > lo:
        assert t_hi > t_lo


@settings(max_examples=N_EXAMPLES, deadline=None)
@given(st.integers(min_value=0, max_value=N_PSTATES - 1),
       st.floats(min_value=0.4, max_value=1.0))
def test_cost_multiplier_is_a_slowdown(pstate, uncore):
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P", power_model="knc")
    run_with(sim, dev.boot())
    dev.power.set_pstate(pstate)
    dev.power.set_uncore(uncore)
    mult = dev.power.cost_multiplier()
    assert mult >= 1.0 - 1e-12
    # deepening the request can only grow the multiplier
    if pstate + 1 < N_PSTATES:
        dev.power.set_pstate(pstate + 1)
        assert dev.power.cost_multiplier() >= mult - 1e-12


@settings(max_examples=N_EXAMPLES, deadline=None)
@given(st.integers(min_value=0, max_value=N_PSTATES - 1),
       st.integers(min_value=0, max_value=300))
def test_power_ladder_is_monotone_in_floor(floor, demand):
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P", power_model="knc")
    run_with(sim, dev.boot())
    power = dev.power
    watts = power.power_watts(floor=floor, demand=demand)
    assert 0 < watts <= CARD.tdp_watts + 1e-9
    if floor + 1 < N_PSTATES:
        assert power.power_watts(floor=floor + 1, demand=demand) <= watts


@settings(max_examples=N_EXAMPLES, deadline=None)
@given(st.sampled_from([None, 280.0, 240.0, 200.0]))
def test_capped_run_is_seed_deterministic(cap):
    t1, p1 = job_time(cap=cap)
    t2, p2 = job_time(cap=cap)
    assert t1 == t2
    assert p1.energy_j == p2.energy_j
    assert p1.throttled_time == p2.throttled_time
    assert p1.pstate_residency == p2.pstate_residency


def test_thermal_trip_count_is_deterministic():
    hot = PowerConfig(thermal_tau_s=0.005, trip_c=80.0,
                      trip_hysteresis_c=5.0,
                      thermal_resistance_c_per_w=0.15)

    def run():
        m = Machine(cards=1, power_model="knc", power_config=hot).boot()

        def drive():
            yield from m.uos(0).run_compute(2e11, 224, efficiency=0.8,
                                            name="hot")

        m.sim.spawn(drive(), name="hot-drive")
        m.run()
        p = m.devices[0].power
        return p.thermal_trips, p.max_temp_c, p.energy_j

    assert run() == run()
