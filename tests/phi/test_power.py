"""Power/thermal model: P/C-states, throttle convergence, thermal trips."""

import pytest

from repro import Machine
from repro.phi import PowerConfig, Scope, XeonPhiDevice, pstate_table, sku
from repro.phi.power import CSTATES, PSTATE_FLOOR_HZ, V_MAX, V_MIN
from repro.sim import SimError, Simulator, run_with

CARD = sku("3120P")
TDP = CARD.tdp_watts

FLOPS = 2e11
THREADS = 224


def powered_machine(**kw):
    return Machine(cards=1, power_model="knc", **kw).boot()


def run_dgemm(m, flops=FLOPS, threads=THREADS):
    out = {}

    def drive():
        job = yield from m.uos(0).run_compute(flops, threads,
                                              efficiency=0.8, name="job")
        out["t"] = job.finished_at - job.started_at

    m.sim.spawn(drive(), name="drive")
    m.run()
    return out["t"]


def booted_device(config=None):
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P", power_model="knc", power_config=config)
    run_with(sim, dev.boot())
    return sim, dev


class TestPStateTable:
    def test_ladder_endpoints_and_step(self):
        table = pstate_table(CARD)
        assert table[0].freq_hz == CARD.clock_hz
        assert table[-1].freq_hz == PSTATE_FLOOR_HZ
        assert table[0].voltage == V_MAX
        assert table[-1].voltage == V_MIN
        # 1100 -> 600 MHz in 100 MHz steps
        assert len(table) == 6
        steps = [a.freq_hz - b.freq_hz for a, b in zip(table, table[1:])]
        assert all(s == pytest.approx(100e6) for s in steps)

    def test_voltage_monotone_with_frequency(self):
        table = pstate_table(CARD)
        volts = [p.voltage for p in table]
        assert volts == sorted(volts, reverse=True)

    def test_freq_khz_is_integral(self):
        assert pstate_table(CARD)[0].freq_khz == 1_100_000


class TestConfigValidation:
    def test_bad_tdp_rejected(self):
        with pytest.raises(SimError, match="tdp_watts"):
            PowerConfig(tdp_watts=-5.0)

    def test_bad_fractions_rejected(self):
        with pytest.raises(SimError, match="fraction"):
            PowerConfig(idle_fraction=0.7, uncore_fraction=0.4)

    def test_bad_tau_rejected(self):
        with pytest.raises(SimError, match="thermal_tau_s"):
            PowerConfig(thermal_tau_s=0.0)

    def test_unknown_power_model_rejected(self):
        with pytest.raises(SimError, match="power model"):
            XeonPhiDevice(Simulator(), "3120P", power_model="skylake")


class TestPowerAccounting:
    def test_full_load_at_p0_is_exactly_tdp(self):
        """The power split is normalized so a fully loaded card at P0
        dissipates the SKU TDP — the default cap never throttles."""
        _, dev = booted_device()
        assert dev.power.power_watts(demand=THREADS) == pytest.approx(TDP)

    def test_idle_card_burns_the_static_floor(self):
        _, dev = booted_device()
        idle = dev.power.power_watts(demand=0)
        # base + uncore + one active uOS core + 56 gated cores
        assert idle < 0.5 * TDP
        assert idle > (dev.power.p_idle + dev.power.p_uncore)

    def test_cstates_off_burns_more_when_idle(self):
        _, dev = booted_device()
        gated = dev.power.power_watts(demand=0)
        dev.power.set_cstates(False)
        ungated = dev.power.power_watts(demand=0)
        assert ungated > gated
        # the C0-idle residual scales with V/f; C6 is a flat trickle
        assert ungated - gated == pytest.approx(
            CARD.usable_cores * dev.power.p_core
            * (CSTATES["C0_IDLE"] - CSTATES["C6"]), rel=1e-6)

    def test_cstate_residency_accumulates(self):
        m = powered_machine()
        run_dgemm(m)
        secs = m.devices[0].power.stats()["cstate_core_seconds"]
        assert secs["C0"] > 0          # busy cores during the job
        assert secs["C6"] > 0          # gated cores while idle
        assert secs["C0_IDLE"] == 0.0  # C-states were never disabled

    def test_deeper_pstate_draws_less(self):
        _, dev = booted_device()
        ladder = [dev.power.power_watts(floor=i, demand=THREADS)
                  for i in range(len(dev.power.pstates))]
        assert ladder == sorted(ladder, reverse=True)
        assert ladder[0] == pytest.approx(TDP)


class TestPStateControl:
    def test_per_core_request(self):
        _, dev = booted_device()
        dev.power.set_pstate(3, cores=[0, 1])
        assert dev.power.requested[0] == 3
        assert dev.power.requested[2] == 0
        assert dev.power.effective_index(0) == 3

    def test_out_of_range_pstate_rejected(self):
        _, dev = booted_device()
        with pytest.raises(SimError, match="out of range"):
            dev.power.set_pstate(99)

    def test_unknown_core_rejected(self):
        _, dev = booted_device()
        with pytest.raises(SimError, match="no core"):
            dev.power.set_pstate(1, cores=[CARD.cores])

    def test_uncore_bounds(self):
        _, dev = booted_device()
        with pytest.raises(SimError, match="uncore"):
            dev.power.set_uncore(0.1)

    def test_uncore_slows_the_cost_path(self):
        _, dev = booted_device()
        assert dev.power.cost_multiplier() == pytest.approx(1.0)
        dev.power.set_uncore(0.5)
        assert dev.power.cost_multiplier() == pytest.approx(2.0)

    def test_deep_request_slows_compute(self):
        m0 = powered_machine()
        t0 = run_dgemm(m0)
        m5 = powered_machine()
        m5.pepc().set_pstate(5, Scope.one_card(0))
        t5 = run_dgemm(m5)
        f = m5.devices[0].power.pstates
        assert t5 / t0 == pytest.approx(f[0].freq_hz / f[5].freq_hz, rel=1e-6)


class TestThrottleLoop:
    def test_tdp_cap_converges_under_the_cap(self):
        m = powered_machine()
        m.pepc().set_tdp(210.0, Scope.one_card(0))
        probe = {}

        def probe_proc():
            yield m.sim.timeout(0.3)
            power = m.devices[0].power
            power.refresh()
            probe["watts"] = power.power_watts()
            probe["khz"] = int(m.devices[0].sysfs_attrs()["cores_frequency"])

        m.sim.spawn(probe_proc(), name="probe")
        t_cap = run_dgemm(m)
        power = m.devices[0].power
        assert probe["watts"] <= 210.0
        # live sysfs frequency reflected the throttle mid-run...
        assert probe["khz"] < power.pstates[0].freq_khz
        # ...and recovered once the job retired and demand dropped
        assert int(m.devices[0].sysfs_attrs()["cores_frequency"]) \
            == power.pstates[0].freq_khz
        assert power.throttled_time > 0
        assert power.governor_ticks > 0
        assert t_cap > FLOPS / 1e12  # visibly slower than uncapped ballpark

    def test_cap_below_deepest_floor_pins_the_deepest(self):
        """An unsatisfiable cap pins P-deepest rather than oscillating."""
        _, dev = booted_device(PowerConfig(tdp_watts=50.0))
        deepest = len(dev.power.pstates) - 1
        dev.power.refresh()
        assert dev.power.throttle_idx == deepest

    def test_default_cap_never_throttles(self):
        m = powered_machine()
        run_dgemm(m)
        assert m.devices[0].power.throttled_time == 0.0


#: fast thermal plant: tiny tau + low trip make the trip/release cycle
#: observable inside a sub-second compute job.
HOT = PowerConfig(thermal_tau_s=0.005, trip_c=80.0, trip_hysteresis_c=5.0,
                  thermal_resistance_c_per_w=0.15)


class TestThermal:
    def test_trip_and_hysteresis_recovery(self):
        m = powered_machine(power_config=HOT)
        run_dgemm(m)
        power = m.devices[0].power
        assert power.thermal_trips >= 1
        assert power.max_temp_c >= HOT.trip_c
        # tripping forces the deepest P-state for a while
        assert power.pstate_residency[-1] > 0
        # the job is gone, the card cooled through the hysteresis band
        power.refresh()
        assert not power.thermal_throttled
        assert power.temp_c < HOT.trip_c

    def test_temperature_relaxes_toward_ambient(self):
        sim, dev = booted_device()
        run_with(sim, dev.reset())
        assert dev.power.temp_c == dev.power.config.ambient_c


class TestResetRestoresDefaults:
    def test_reset_restores_power_and_clock_state(self):
        sim, dev = booted_device()
        power = dev.power
        power.set_tdp_cap(150.0)
        power.set_pstate(4)
        power.set_uncore(0.6)
        power.set_cstates(False)
        power.refresh()
        assert power.tdp_cap == 150.0
        run_with(sim, dev.reset())
        assert power.tdp_cap == power.default_cap == TDP
        assert power.requested == [0] * CARD.cores
        assert power.throttle_idx == 0
        assert not power.thermal_throttled
        assert power.uncore_mult == 1.0
        assert power.cstates_enabled
        assert dev.sysfs_attrs()["cores_frequency"] == "1100000"

    def test_accounting_survives_reset(self):
        """Energy/residency integrals describe the card's lifetime."""
        m = powered_machine()
        m.pepc().set_tdp(210.0, Scope.one_card(0))
        run_dgemm(m)
        dev = m.devices[0]
        before = dev.power.energy_j
        throttled = dev.power.throttled_time
        run_with(m.sim, m.reboot_card(0))
        assert dev.power.energy_j >= before
        assert dev.power.throttled_time == throttled
        assert dev.power.tdp_cap == TDP


class TestSysfs:
    def test_frequency_exported_in_khz(self):
        """Regression: the attribute was exported in Hz (and static)."""
        sim = Simulator()
        dev = XeonPhiDevice(sim, "3120P")
        assert dev.sysfs_attrs()["cores_frequency"] == "1100000"

    def test_frequency_live_without_power_model(self):
        sim = Simulator()
        dev = XeonPhiDevice(sim, "3120P")
        assert dev.current_clock_hz == CARD.clock_hz
