"""Xeon Phi device model and SKU catalog."""

import pytest

from repro.phi import DeviceState, SKUS, XeonPhiDevice, sku
from repro.sim import Simulator, run_with

GB = 1 << 30


def test_sku_catalog_contains_paper_card():
    card = sku("3120P")
    assert card.cores == 57
    assert card.threads_per_core == 4
    assert card.gddr_bytes == 6 * GB
    assert card.usable_cores == 56
    assert card.hw_threads == 228


def test_peak_dp_flops_about_one_tflop():
    assert sku("3120P").peak_dp_flops == pytest.approx(1.003e12, rel=0.01)


def test_unknown_sku_rejected():
    with pytest.raises(KeyError, match="unknown"):
        sku("9999X")


def test_catalog_skus_are_consistent():
    for name, s in SKUS.items():
        assert s.name == name
        assert s.usable_cores == s.cores - 1
        assert s.peak_dp_flops > 0


def test_device_boot_brings_card_online():
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")
    assert dev.state is DeviceState.READY
    assert dev.uos is None

    def proc():
        uos = yield from dev.boot()
        return uos

    uos = run_with(sim, proc())
    assert dev.state is DeviceState.ONLINE
    assert uos is dev.uos
    assert uos.scheduler.slots == 224


def test_double_boot_is_idempotent():
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")

    def proc():
        u1 = yield from dev.boot()
        u2 = yield from dev.boot()
        return u1 is u2

    assert run_with(sim, proc()) is True


def test_concurrent_boots_share_one_uos():
    """Regression: two boot() processes racing while the card was
    BOOTING each ran the full sequence and constructed their own UOS,
    orphaning one.  They must serialize and return the same instance."""
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")
    got = []

    def booter():
        uos = yield from dev.boot()
        got.append((sim.now, uos))

    sim.spawn(booter())
    sim.spawn(booter())
    sim.run()
    assert len(got) == 2
    assert got[0][1] is got[1][1] is dev.uos
    # the loser waited out the winner's boot, not a second boot
    assert got[0][0] == got[1][0] == XeonPhiDevice.BOOT_TIME


def test_boot_racing_reset_serializes():
    """A reset issued mid-boot waits for the boot to settle, then tears
    the card down — it never interleaves with the boot sequence."""
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")
    order = []

    def booter():
        yield from dev.boot()
        order.append(("booted", sim.now))

    def resetter():
        yield sim.timeout(XeonPhiDevice.BOOT_TIME / 2)
        yield from dev.reset()
        order.append(("reset", sim.now))

    sim.spawn(booter())
    sim.spawn(resetter())
    sim.run()
    assert [e for e, _ in order] == ["booted", "reset"]
    assert order[1][1] == XeonPhiDevice.BOOT_TIME + XeonPhiDevice.RESET_TIME
    assert dev.state is DeviceState.READY
    assert dev.uos is None


def test_boot_after_reset_constructs_a_fresh_uos():
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")

    def proc():
        first = yield from dev.boot()
        yield from dev.reset()
        second = yield from dev.boot()
        return first, second

    first, second = run_with(sim, proc())
    assert first is not second
    assert dev.uos is second
    assert dev.state is DeviceState.ONLINE


def test_sysfs_attrs_reflect_sku_and_state():
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P", index=2)
    attrs = dev.sysfs_attrs()
    assert attrs["family"] == "x100"
    assert attrs["version"] == "3120P"
    assert attrs["state"] == "ready"
    assert attrs["cores_count"] == "57"
    assert dev.name == "mic2"


def test_gddr_is_device_local():
    sim = Simulator()
    dev = XeonPhiDevice(sim, "3120P")
    ext = dev.gddr.alloc(1 << 20)
    ext.write(b"on-card")
    assert ext.read(0, 7).tobytes() == b"on-card"
    assert dev.gddr.size == 6 * GB
