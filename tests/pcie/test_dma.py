"""DMA engine: SG copies, channel contention, data integrity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import MemError, PAGE_SIZE, PhysicalMemory, SGEntry
from repro.pcie import DMAEngine, PCIeLink, sg_copy
from repro.sim import Simulator, run_with

MB = 1 << 20


def make_sg(mem, sizes, fill=None):
    """Allocate extents of the given sizes; return SG list."""
    sg = []
    for i, size in enumerate(sizes):
        ext = mem.alloc(max(size, 1))
        if fill is not None:
            ext.fill(fill)
        sg.append(SGEntry(mem, ext.addr, size))
    return sg


class TestSGCopy:
    def test_matched_segmentation(self):
        mem = PhysicalMemory(16 * MB)
        src = make_sg(mem, [PAGE_SIZE, PAGE_SIZE])
        dst = make_sg(mem, [PAGE_SIZE, PAGE_SIZE])
        payload = np.random.default_rng(0).integers(0, 256, 2 * PAGE_SIZE, dtype=np.uint8)
        mem.write(src[0].paddr, payload[:PAGE_SIZE])
        mem.write(src[1].paddr, payload[PAGE_SIZE:])
        assert sg_copy(dst, src) == 2 * PAGE_SIZE
        got = np.concatenate([mem.read(dst[0].paddr, PAGE_SIZE), mem.read(dst[1].paddr, PAGE_SIZE)])
        assert np.array_equal(got, payload)

    def test_mismatched_segmentation(self):
        mem = PhysicalMemory(16 * MB)
        src = make_sg(mem, [100, 300, 600])
        dst = make_sg(mem, [512, 488])
        payload = np.arange(1000, dtype=np.int64).astype(np.uint8)
        off = 0
        for e in src:
            mem.write(e.paddr, payload[off : off + e.nbytes])
            off += e.nbytes
        assert sg_copy(dst, src) == 1000
        got = np.concatenate([mem.read(e.paddr, e.nbytes) for e in dst])
        assert np.array_equal(got, payload)

    def test_partial_copy(self):
        mem = PhysicalMemory(16 * MB)
        src = make_sg(mem, [1024], fill=0xAA)
        dst = make_sg(mem, [1024], fill=0x00)
        sg_copy(dst, src, nbytes=100)
        got = mem.read(dst[0].paddr, 1024)
        assert (got[:100] == 0xAA).all()
        assert (got[100:] == 0).all()

    def test_overlong_copy_rejected(self):
        mem = PhysicalMemory(16 * MB)
        src = make_sg(mem, [100])
        dst = make_sg(mem, [100])
        with pytest.raises(MemError):
            sg_copy(dst, src, nbytes=101)

    @settings(max_examples=25, deadline=None)
    @given(
        src_sizes=st.lists(st.integers(1, 2000), min_size=1, max_size=6),
        dst_cuts=st.lists(st.integers(1, 2000), min_size=1, max_size=6),
        seed=st.integers(0, 2**16),
    )
    def test_sg_copy_preserves_bytes_property(self, src_sizes, dst_cuts, seed):
        """Property: any segmentation pair moves bytes exactly in order."""
        mem = PhysicalMemory(64 * MB)
        total = sum(src_sizes)
        # make dst at least as large by padding the last cut
        dst_sizes = list(dst_cuts)
        short = total - sum(dst_sizes)
        if short > 0:
            dst_sizes.append(short)
        src = make_sg(mem, src_sizes)
        dst = make_sg(mem, dst_sizes)
        payload = np.random.default_rng(seed).integers(0, 256, total, dtype=np.uint8)
        off = 0
        for e in src:
            mem.write(e.paddr, payload[off : off + e.nbytes])
            off += e.nbytes
        assert sg_copy(dst, src, nbytes=total) == total
        got = np.concatenate([mem.read(e.paddr, e.nbytes) for e in dst])[:total]
        assert np.array_equal(got, payload)


class TestDMAEngine:
    def test_transfer_moves_data_and_charges_time(self):
        sim = Simulator()
        link = PCIeLink(sim)
        dma = DMAEngine(sim, link)
        host = PhysicalMemory(64 * MB, "host")
        card = PhysicalMemory(64 * MB, "gddr")
        src = make_sg(card, [8 * MB])
        card.write(src[0].paddr, np.full(8 * MB, 0x5C, dtype=np.uint8))
        dst = make_sg(host, [8 * MB])

        def proc():
            moved = yield from dma.transfer(dst, src)
            return moved, sim.now

        moved, t = run_with(sim, proc())
        assert moved == 8 * MB
        assert (host.read(dst[0].paddr, 8 * MB) == 0x5C).all()
        expected = dma.setup_cost + 8 * MB / link.bandwidth
        assert t == pytest.approx(expected, rel=0.01)

    def test_zero_byte_transfer_is_free(self):
        sim = Simulator()
        dma = DMAEngine(sim, PCIeLink(sim))

        def proc():
            moved = yield from dma.transfer([], [])
            return moved, sim.now

        moved, t = run_with(sim, proc())
        assert moved == 0
        assert t == 0.0

    def test_channel_contention(self):
        sim = Simulator()
        link = PCIeLink(sim)
        dma = DMAEngine(sim, link, channels=2)
        mem = PhysicalMemory(256 * MB)

        def proc():
            src = make_sg(mem, [16 * MB])
            dst = make_sg(mem, [16 * MB])
            yield from dma.transfer(dst, src)

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        assert dma.channels.peak_in_use == 2
        assert dma.transfers == 4

    def test_transfers_serialize_on_shared_link(self):
        sim = Simulator()
        link = PCIeLink(sim)
        dma = DMAEngine(sim, link, channels=8)
        mem = PhysicalMemory(256 * MB)
        ends = []

        def proc():
            src = make_sg(mem, [32 * MB])
            dst = make_sg(mem, [32 * MB])
            yield from dma.transfer(dst, src)
            ends.append(sim.now)

        for _ in range(3):
            sim.spawn(proc())
        sim.run()
        # 3 transfers of 32MB over one 6.4GB/s link: last ends at ~3x single
        single = 32 * MB / link.bandwidth
        assert max(ends) >= 3 * single
