"""PCIe link: bandwidth math, arbitration, messages."""

import pytest

from repro.pcie import GEN2, GEN3, LinkConfig, PCIeLink
from repro.sim import Simulator, run_with, us

MB = 1 << 20


def test_gen2_x16_effective_bandwidth_matches_anchor():
    cfg = LinkConfig(generation=2, lanes=16, protocol_efficiency=0.8)
    # 5 GT/s * 8/10 / 8 = 0.5 GB/s per lane; x16 = 8 GB/s raw; 80% -> 6.4
    assert cfg.raw_bandwidth == pytest.approx(8e9)
    assert cfg.effective_bandwidth == pytest.approx(6.4e9)


def test_gen_lane_scaling():
    assert GEN3.lane_bandwidth > GEN2.lane_bandwidth
    narrow = LinkConfig(generation=2, lanes=4)
    wide = LinkConfig(generation=2, lanes=16)
    assert wide.raw_bandwidth == pytest.approx(4 * narrow.raw_bandwidth)


def test_transfer_time_linear_in_size():
    sim = Simulator()
    link = PCIeLink(sim)
    assert link.transfer_time(2 * MB) == pytest.approx(2 * link.transfer_time(MB))


def test_occupy_charges_link_time():
    sim = Simulator()
    link = PCIeLink(sim)

    def proc():
        yield from link.occupy(64 * MB)
        return sim.now

    t = run_with(sim, proc())
    assert t == pytest.approx(64 * MB / 6.4e9, rel=0.01)
    assert link.bytes_transferred == 64 * MB
    assert link.bulk_transfers == 1


def test_bulk_transfers_serialize_fifo():
    sim = Simulator()
    link = PCIeLink(sim)
    done = []

    def sender(tag, nbytes):
        yield from link.occupy(nbytes)
        done.append((tag, sim.now))

    sim.spawn(sender("a", 64 * MB))
    sim.spawn(sender("b", 64 * MB))
    sim.run()
    ta = dict(done)["a"]
    tb = dict(done)["b"]
    # b waits for a: finishes at ~2x
    assert tb == pytest.approx(2 * ta, rel=0.01)
    assert link.utilization(sim.now) == pytest.approx(1.0, rel=0.01)


def test_message_latency_and_payload():
    sim = Simulator()
    link = PCIeLink(sim)

    def proc():
        payload = yield from link.message("doorbell-3")
        return payload, sim.now

    payload, t = run_with(sim, proc())
    assert payload == "doorbell-3"
    assert t == pytest.approx(us(2))
    assert link.messages == 1


def test_messages_do_not_arbitrate_with_bulk():
    sim = Simulator()
    link = PCIeLink(sim)
    times = {}

    def bulk():
        yield from link.occupy(640 * MB)  # 100 ms
        times["bulk"] = sim.now

    def msg():
        yield from link.message()
        times["msg"] = sim.now

    sim.spawn(bulk())
    sim.spawn(msg())
    sim.run()
    assert times["msg"] < times["bulk"]
    assert times["msg"] == pytest.approx(us(2))
