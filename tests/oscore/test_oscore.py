"""OS core: kernels, processes, fd tables, sysfs."""

import pytest

from repro.mem import PhysicalMemory
from repro.oscore import Kernel, Sysfs, SysfsError
from repro.sim import Simulator

MB = 1 << 20


@pytest.fixture
def kernel():
    return Kernel(Simulator(), PhysicalMemory(64 * MB), name="k")


class TestKernel:
    def test_create_process_assigns_unique_pids(self, kernel):
        p1 = kernel.create_process("a")
        p2 = kernel.create_process("b")
        assert p1.pid != p2.pid
        assert kernel.find_process(p1.pid) is p1

    def test_exit_reaps_process(self, kernel):
        p = kernel.create_process("a")
        p.exit()
        assert not p.alive
        assert kernel.find_process(p.pid) is None

    def test_process_address_spaces_isolated(self, kernel):
        p1 = kernel.create_process("a")
        p2 = kernel.create_process("b")
        v1 = p1.address_space.mmap(4096)
        v2 = p2.address_space.mmap(4096)
        p1.address_space.write(v1.start, b"one")
        p2.address_space.write(v2.start, b"two")
        assert p1.address_space.read(v1.start, 3).tobytes() == b"one"
        assert p2.address_space.read(v2.start, 3).tobytes() == b"two"

    def test_fd_table(self, kernel):
        p = kernel.create_process("a")
        fd1 = p.install_fd("obj1")
        fd2 = p.install_fd("obj2")
        assert fd1 != fd2
        assert p.close_fd(fd1) == "obj1"
        with pytest.raises(KeyError):
            p.close_fd(fd1)

    def test_kmalloc_comes_from_kernel_phys(self, kernel):
        ext = kernel.kmalloc.kmalloc(4096)
        assert ext.mem is kernel.phys
        kernel.kmalloc.kfree(ext)


class TestSysfs:
    def test_publish_read(self):
        fs = Sysfs()
        fs.publish("sys/class/mic/mic0/family", "x100")
        assert fs.read("sys/class/mic/mic0/family") == "x100"
        assert fs.exists("sys/class/mic/mic0/family")
        assert not fs.exists("sys/class/mic/mic0/nope")

    def test_live_attribute(self):
        fs = Sysfs()
        state = {"v": "ready"}
        fs.publish("mic0/state", lambda: state["v"])
        assert fs.read("mic0/state") == "ready"
        state["v"] = "online"
        assert fs.read("mic0/state") == "online"

    def test_missing_path_raises(self):
        fs = Sysfs()
        with pytest.raises(SysfsError):
            fs.read("does/not/exist")

    def test_listdir(self):
        fs = Sysfs()
        fs.publish("sys/class/mic/mic0/family", "x100")
        fs.publish("sys/class/mic/mic0/state", "ready")
        fs.publish("sys/class/mic/mic1/family", "x100")
        assert fs.listdir("sys/class/mic") == ["mic0", "mic1"]
        assert fs.listdir("sys/class/mic/mic0") == ["family", "state"]

    def test_listdir_missing_raises(self):
        fs = Sysfs()
        with pytest.raises(SysfsError):
            fs.listdir("nothing/here")

    def test_remove(self):
        fs = Sysfs()
        fs.publish("a/b", "1")
        fs.remove("a/b")
        assert not fs.exists("a/b")
        with pytest.raises(SysfsError):
            fs.remove("a/b")

    def test_path_normalization(self):
        fs = Sysfs()
        fs.publish("/sys//class/mic0/", "x")
        assert fs.read("sys/class/mic0") == "x"

    def test_walk(self):
        fs = Sysfs()
        fs.publish("b", "2")
        fs.publish("a", "1")
        assert list(fs.walk()) == [("a", "1"), ("b", "2")]
