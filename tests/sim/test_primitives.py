"""Unit tests for wait queues, semaphores, channels and resources."""

import pytest

from repro.sim import (
    Channel,
    ChannelClosed,
    Mutex,
    Resource,
    Semaphore,
    SimError,
    Simulator,
    WaitQueue,
    run_with,
    us,
)


class TestWaitQueue:
    def test_wake_one_fifo(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        order = []

        def sleeper(tag):
            yield wq.wait()
            order.append(tag)

        def waker():
            yield sim.timeout(1.0)
            wq.wake_one()
            yield sim.timeout(1.0)
            wq.wake_one()

        sim.spawn(sleeper("a"))
        sim.spawn(sleeper("b"))
        sim.spawn(waker())
        sim.run()
        assert order == ["a", "b"]

    def test_wake_one_on_empty_returns_false(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        assert wq.wake_one() is False

    def test_wake_all_staggers_by_cost(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        times = []

        def sleeper():
            yield wq.wait()
            times.append(sim.now)

        def waker():
            yield sim.timeout(1.0)
            wq.wake_all(per_waiter_cost=us(5))

        for _ in range(3):
            sim.spawn(sleeper())
        sim.spawn(waker())
        sim.run()
        assert times == [
            pytest.approx(1.0),
            pytest.approx(1.0 + us(5)),
            pytest.approx(1.0 + us(10)),
        ]
        assert wq.wakeups == 3

    def test_wake_all_count(self):
        sim = Simulator()
        wq = WaitQueue(sim)

        def sleeper():
            yield wq.wait()

        for _ in range(5):
            sim.spawn(sleeper())

        def waker():
            yield sim.timeout(0.1)
            assert wq.wake_all() == 5

        sim.spawn(waker())
        sim.run()

    def test_cancel_withdraws_waiter(self):
        sim = Simulator()
        wq = WaitQueue(sim)
        hits = []

        def poller():
            ev = wq.wait()
            t = sim.timeout(1.0)
            idx, _ = yield sim.any_of([ev, t])
            if idx == 1:
                wq.cancel(ev)
                hits.append("timeout")
            else:
                hits.append("woken")

        sim.spawn(poller())
        sim.run()
        assert hits == ["timeout"]
        assert len(wq) == 0

    def test_wait_carries_value(self):
        sim = Simulator()
        wq = WaitQueue(sim)

        def sleeper():
            v = yield wq.wait()
            return v

        def waker():
            yield sim.timeout(0.5)
            wq.wake_one("reply-7")

        p = sim.spawn(sleeper())
        sim.spawn(waker())
        sim.run()
        assert p.value == "reply-7"


class TestSemaphore:
    def test_initial_value_counts(self):
        sim = Simulator()
        sem = Semaphore(sim, value=2)
        grants = []

        def worker(tag):
            yield sem.acquire()
            grants.append((tag, sim.now))
            yield sim.timeout(1.0)
            sem.release()

        for tag in "abc":
            sim.spawn(worker(tag))
        sim.run()
        # a, b immediately; c after a release at t=1
        assert grants == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_try_acquire(self):
        sim = Simulator()
        sem = Semaphore(sim, value=1)
        assert sem.try_acquire() is True
        assert sem.try_acquire() is False
        sem.release()
        assert sem.try_acquire() is True

    def test_negative_initial_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)

    def test_release_hands_off_directly(self):
        sim = Simulator()
        sem = Semaphore(sim, value=1)

        def holder():
            yield sem.acquire()
            yield sim.timeout(1.0)
            sem.release()

        def contender():
            yield sim.timeout(0.1)
            yield sem.acquire()
            return sim.now

        sim.spawn(holder())
        p = sim.spawn(contender())
        sim.run()
        assert p.value == pytest.approx(1.0)
        assert sem.value == 0  # handed to contender, not returned to pool


class TestMutex:
    def test_release_unheld_raises(self):
        sim = Simulator()
        m = Mutex(sim, name="lk")
        with pytest.raises(SimError):
            m.release()

    def test_mutual_exclusion(self):
        sim = Simulator()
        m = Mutex(sim)
        inside = []

        def critical(tag):
            yield m.acquire()
            inside.append(tag)
            assert len(inside) == 1
            yield sim.timeout(1.0)
            inside.remove(tag)
            m.release()

        for tag in range(4):
            sim.spawn(critical(tag))
        sim.run()
        assert inside == []


class TestChannel:
    def test_put_get_fifo(self):
        sim = Simulator()
        ch = Channel(sim)

        def producer():
            for i in range(3):
                yield ch.put(i)

        def consumer():
            got = []
            for _ in range(3):
                v = yield ch.get()
                got.append(v)
            return got

        sim.spawn(producer())
        p = sim.spawn(consumer())
        sim.run()
        assert p.value == [0, 1, 2]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        ch = Channel(sim)

        def consumer():
            v = yield ch.get()
            return (v, sim.now)

        def producer():
            yield sim.timeout(2.0)
            yield ch.put("x")

        p = sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert p.value == ("x", pytest.approx(2.0))

    def test_bounded_put_blocks_when_full(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)

        def producer():
            yield ch.put("a")
            yield ch.put("b")  # blocks until consumer drains
            return sim.now

        def consumer():
            yield sim.timeout(3.0)
            yield ch.get()

        p = sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert p.value == pytest.approx(3.0)

    def test_try_put_try_get(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        assert ch.try_put(1) is True
        assert ch.try_put(2) is False
        ok, v = ch.try_get()
        assert (ok, v) == (True, 1)
        ok, v = ch.try_get()
        assert ok is False

    def test_close_fails_pending_getters(self):
        sim = Simulator()
        ch = Channel(sim, name="q")

        def consumer():
            with pytest.raises(ChannelClosed):
                yield ch.get()
            return "closed-seen"

        def closer():
            yield sim.timeout(1.0)
            ch.close()

        p = sim.spawn(consumer())
        sim.spawn(closer())
        sim.run()
        assert p.value == "closed-seen"

    def test_put_after_close_fails(self):
        sim = Simulator()
        ch = Channel(sim)
        ch.close()

        def producer():
            with pytest.raises(ChannelClosed):
                yield ch.put(1)
            return True

        assert run_with(sim, producer()) is True

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Channel(sim, capacity=0)


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker():
            yield res.request()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            res.release()

        for _ in range(5):
            sim.spawn(worker())
        sim.run()
        assert max(peak) == 2
        assert res.peak_in_use == 2
        assert res.in_use == 0

    def test_release_below_zero_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimError):
            res.release()

    def test_fifo_grants(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag, arrive):
            yield sim.timeout(arrive)
            yield res.request()
            order.append(tag)
            yield sim.timeout(10.0)
            res.release()

        sim.spawn(worker("a", 0.0))
        sim.spawn(worker("b", 1.0))
        sim.spawn(worker("c", 2.0))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)
