"""The calendar queue must be observationally identical to a plain heap.

The scheduler rebuild (calendar buckets + same-tick fast lane + far-future
heap) is only admissible because firing order is *exactly* the old heap's
``(time, seq)`` order — every golden digest depends on it.  These tests
drive the queue directly with adversarial schedules (Hypothesis) and
through the Simulator, and pin the tombstone/compaction behavior that
keeps abandoned timeouts from growing the queue without bound.
"""

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, Interrupted, Simulator


# ----------------------------------------------------------------------
# reference model: the original single-heap scheduler
# ----------------------------------------------------------------------
class HeapModel:
    def __init__(self):
        self._q = []
        self._seq = 0
        self.now = 0.0

    def push(self, when, label):
        heapq.heappush(self._q, (when, self._seq, label))
        self._seq += 1

    def drain(self):
        order = []
        while self._q:
            when, _, label = heapq.heappop(self._q)
            self.now = max(self.now, when)
            order.append((when, label))
        return order


#: delays spanning the regimes the queue tiers split on: zero-delay (fast
#: lane), sub-horizon microsecond costs (wheel), and far-future sleeps
#: (overflow heap) — plus exact duplicates to exercise FIFO tie-breaks.
_delays = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=20e-6),
    st.sampled_from([1e-6, 5e-6, 375e-6, 1e-3, 0.5, 2.0]),
    st.floats(min_value=0.0, max_value=3.0),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_delays, min_size=0, max_size=120), st.randoms())
def test_firing_order_indistinguishable_from_heap(delays, rng):
    """Random schedules, including pushes interleaved with pops, fire in
    identical order on the calendar queue and the reference heap."""
    cq = CalendarQueue()
    ref = HeapModel()
    pending = list(enumerate(delays))
    got, want = [], []
    now = 0.0
    # interleave: push a random prefix, pop a few, repeat — mid-drain
    # insertion is where bucket/cursor bugs hide
    while pending or len(cq):
        take = rng.randint(0, len(pending)) if pending else 0
        for label, delay in pending[:take]:
            cq.push(now + delay, ("t", label), now)
            ref.push(now + delay, ("t", label))
        del pending[:take]
        pops = rng.randint(1, 5)
        for _ in range(pops):
            entry = cq.pop()
            if entry is None:
                break
            now = max(now, entry[0])
            got.append((entry[0], entry[2]))
    want = ref.drain()
    assert got == want


@settings(max_examples=100, deadline=None)
@given(st.lists(_delays, min_size=1, max_size=80))
def test_simulator_timeout_order_matches_heap_order(delays):
    """End-to-end through the Simulator: processes sleeping random delays
    complete in (time, spawn-order) order, same-timestamp ties FIFO."""
    sim = Simulator()
    fired = []

    def sleeper(i, d):
        yield sim.timeout(d)
        fired.append((sim.now, i))

    for i, d in enumerate(delays):
        sim.spawn(sleeper(i, d))
    sim.run()
    assert fired == sorted(fired, key=lambda p: (p[0], p[1]))
    # same-delay spawns must complete in spawn order (FIFO tie-break)
    by_time = {}
    for t, i in fired:
        by_time.setdefault(t, []).append(i)
    for ids in by_time.values():
        assert ids == sorted(ids)


def test_zero_delay_fast_lane_respects_earlier_heap_entries():
    """A wheel entry at time T with a smaller seq must fire before a
    zero-delay entry created later at the same instant."""
    cq = CalendarQueue()
    cq.push(1e-6, "scheduled-first", 0.0)   # lands in the wheel
    entry = cq.pop()
    assert entry[2] == "scheduled-first"
    now = entry[0]
    cq.push(now, "lane-a", now)
    cq.push(now + 1e-6, "wheel-later", now)
    cq.push(now, "lane-b", now)
    assert [cq.pop()[2] for _ in range(3)] == ["lane-a", "lane-b", "wheel-later"]


def test_pop_limit_stops_at_horizon():
    cq = CalendarQueue()
    cq.push(1.0, "a", 0.0)
    cq.push(2.0, "b", 0.0)
    assert cq.pop(limit=1.5)[2] == "a"
    assert cq.pop(limit=1.5) is None
    assert cq.peek() == 2.0
    assert cq.pop(limit=None)[2] == "b"


# ----------------------------------------------------------------------
# rebase against a far-future head (the run(until=...) reordering bug)
# ----------------------------------------------------------------------
def test_pop_limit_rebase_then_earlier_push_keeps_order():
    """The regression: pop(limit) below a far-future head eagerly rebases
    the wheel to that head's time; a later push *between* now and the
    rebased base must still fire first, not after it."""
    cq = CalendarQueue()
    cq.push(100.0, "late", 0.0)
    assert cq.pop(limit=5.0) is None     # parks; wheel rebased to t=100
    cq.push(50.0, "early", 5.0)          # now < when < base
    a = cq.pop()
    b = cq.pop()
    assert (a[0], a[2]) == (50.0, "early")
    assert (b[0], b[2]) == (100.0, "late")
    assert cq.pop() is None


def test_peek_rebase_then_earlier_push_keeps_order():
    """peek() also rebases eagerly; a subsequent sub-base push must win."""
    cq = CalendarQueue()
    cq.push(100.0, "late", 0.0)
    assert cq.peek() == 100.0
    cq.push(50.0, "early", 0.0)
    assert cq.peek() == 50.0
    assert [cq.pop()[2] for _ in range(2)] == ["early", "late"]


def test_run_until_then_earlier_schedule_fires_in_order():
    """End-to-end repro from the review: run(until=) short of a distant
    callback, then schedule an earlier one — it must run first, at its
    own time, and the distant one at its own time."""
    sim = Simulator()
    fired = []
    sim.call_at(100.0, lambda: fired.append(("late", sim.now)))
    sim.run(until=5.0)
    assert sim.now == 5.0 and fired == []
    sim.call_at(50.0, lambda: fired.append(("early", sim.now)))
    sim.run()
    assert fired == [("early", 50.0), ("late", 100.0)]


def test_rewind_rebase_with_far_entries_below_start():
    """Wheel emptied by compaction while the far heap holds sub-base
    leftovers: the rewind rebase must front-bucket far entries even
    earlier than its start time instead of mis-indexing them."""
    cq = CalendarQueue(compact_threshold=0)
    a = cq.push(100.0, "a", 0.0)
    assert cq.pop(limit=1.0) is None     # wheel rebased to base=100
    cq.push(3.0, "b", 1.0)               # below base -> far heap
    c = cq.push(100.2, "c", 1.0)         # beyond the wheel horizon -> far
    cq.cancel(a)
    cq.cancel(c)                         # tombstones > live: compaction
    assert cq.compactions >= 1
    cq.push(5.0, "d", 1.0)               # empty wheel + below base: rewind
    assert [(e[0], e[2]) for e in (cq.pop(), cq.pop())] == [
        (3.0, "b"), (5.0, "d")]
    assert cq.pop() is None
    assert len(cq) == 0


@settings(max_examples=200, deadline=None)
@given(st.lists(_delays, min_size=0, max_size=100), st.randoms())
def test_limited_pops_and_peeks_never_reorder(delays, rng):
    """Random schedules interleaved with peek() and pop(limit) — the
    calls that eagerly rebase the wheel — still fire in exact reference
    heap order, including pushes landing below the rebased base."""
    cq = CalendarQueue()
    ref = []
    seq = 0
    pending = list(enumerate(delays))
    now = 0.0
    while pending or len(cq):
        take = rng.randint(0, len(pending)) if pending else 0
        for label, delay in pending[:take]:
            cq.push(now + delay, ("t", label), now)
            heapq.heappush(ref, (now + delay, seq, ("t", label)))
            seq += 1
        del pending[:take]
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.3:
                cq.peek()  # may rebase; must never reorder
                continue
            limit = None
            if roll < 0.7:
                head = cq.peek()
                limit = (head if head is not None else now) * rng.uniform(0.0, 1.5)
            entry = cq.pop(limit)
            if entry is None:
                assert not ref or (limit is not None and ref[0][0] > limit)
                break
            when, _, label = heapq.heappop(ref)
            assert (entry[0], entry[2]) == (when, label)
            now = max(now, entry[0])
    assert not ref


# ----------------------------------------------------------------------
# tombstones and compaction (the run(until=...) leak)
# ----------------------------------------------------------------------
def test_cancelled_entries_compact_instead_of_accumulating():
    cq = CalendarQueue(compact_threshold=64)
    entries = [cq.push(10.0 + i, i, 0.0) for i in range(500)]
    for e in entries[:400]:
        cq.cancel(e)
    # lazy delete reaped in bulk: far more than threshold cancelled, so
    # at least one compaction ran and the backlog stayed bounded
    assert cq.compactions >= 1
    assert cq.tombstones <= len(cq)
    assert len(cq) == 100
    got = [cq.pop()[2] for _ in range(100)]
    assert got == list(range(400, 500))
    assert cq.pop() is None


def test_interrupted_sleepers_do_not_grow_the_queue():
    """The regression: interrupting processes parked on far-future
    timeouts used to leave dead entries queued until their expiry."""
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(3600.0)
        except Interrupted:
            pass

    procs = [sim.spawn(sleeper()) for _ in range(300)]
    sim.run(until=1e-3)  # everyone is now parked on its hour-long timeout
    backlog = len(sim._queue)
    for p in procs:
        p.interrupt("teardown")
    sim.run(until=2e-3)
    # the interrupt deliveries ran and the abandoned timeout entries were
    # tombstoned + compacted away instead of lingering for the hour
    assert len(sim._queue) < backlog - 250
    assert sim._queue.compactions >= 1
    assert sim.now < 1.0  # nothing waited for the hour to elapse


def test_revived_timeout_still_fires():
    """Cancel-then-rewait: if a new waiter subscribes to a timeout whose
    entry was tombstoned, the firing must come back."""
    sim = Simulator()
    t = sim.timeout(5e-3, value="late")
    got = []

    def first():
        try:
            yield t
        except Interrupted:
            got.append("interrupted")

    def second():
        yield sim.timeout(1e-3)
        got.append((yield t))

    p1 = sim.spawn(first())
    sim.spawn(second())
    sim.run(until=5e-4)
    p1.interrupt("bail")  # tombstones the shared timeout's entry
    sim.run()
    assert got == ["interrupted", "late"]
    assert sim.now >= 5e-3


def test_run_until_and_peek_semantics_unchanged():
    sim = Simulator()
    seen = []

    def ticker():
        for _ in range(5):
            yield sim.timeout(1.0)
            seen.append(sim.now)

    sim.spawn(ticker())
    sim.run(until=2.5)
    assert sim.now == 2.5
    assert seen == [1.0, 2.0]
    assert sim.peek() == 3.0
    sim.run()
    assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_queue_survives_randomized_cancel_storms():
    rng = random.Random(7)
    cq = CalendarQueue(compact_threshold=16)
    live = {}
    fired = []
    now = 0.0
    next_label = 0
    for _ in range(3000):
        op = rng.random()
        if op < 0.55 or not live:
            when = now + rng.choice([0.0, 1e-6, 4e-6, 1e-3, 1.0])
            live[next_label] = cq.push(when, next_label, now)
            next_label += 1
        elif op < 0.75:
            label = rng.choice(list(live))
            cq.cancel(live.pop(label))
        else:
            entry = cq.pop()
            if entry is not None:
                now = max(now, entry[0])
                live.pop(entry[2], None)
                fired.append((entry[0], entry[1]))
    while True:
        entry = cq.pop()
        if entry is None:
            break
        now = max(now, entry[0])
        fired.append((entry[0], entry[1]))
    assert fired == sorted(fired)      # global (when, seq) order held
    assert len(cq) == 0
    assert cq.tombstones == 0
