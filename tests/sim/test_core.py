"""Unit tests for the DES kernel: events, processes, time, domains."""

import pytest

from repro.sim import (
    Interrupted,
    Killed,
    SimError,
    Simulator,
    ms,
    run_with,
    us,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.5)
        return sim.now

    assert run_with(sim, proc()) == pytest.approx(1.5)


def test_timeouts_fire_in_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(waiter(3.0, "c"))
    sim.spawn(waiter(1.0, "a"))
    sim.spawn(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_ties_broken_by_spawn_order():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.spawn(waiter(tag))
    sim.run()
    assert order == list("abcde")


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(0.1, value="payload")
        return got

    assert run_with(sim, proc()) == "payload"


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event("e")

    def waiter():
        v = yield ev
        return v

    def trigger():
        yield sim.timeout(1.0)
        ev.succeed(42)

    p = sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert p.value == 42
    assert sim.now == pytest.approx(1.0)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        with pytest.raises(RuntimeError, match="boom"):
            yield ev
        return "survived"

    def trigger():
        yield sim.timeout(0.5)
        ev.fail(RuntimeError("boom"))

    assert ev.triggered is False
    p = sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert p.value == "survived"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)
    with pytest.raises(SimError):
        ev.fail(RuntimeError())


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimError):
        _ = ev.value


def test_late_waiter_on_fired_event_still_resumed():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")

    def late():
        yield sim.timeout(2.0)
        v = yield ev
        return v

    assert run_with(sim, late()) == "early"


def test_process_join_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent():
        v = yield sim.spawn(child())
        return v

    assert run_with(sim, parent()) == "done"


def test_process_join_propagates_exception():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        with pytest.raises(ValueError, match="child died"):
            yield sim.spawn(child())
        return "handled"

    assert run_with(sim, parent()) == "handled"


def test_unobserved_crash_surfaces_at_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(0.1)
        raise RuntimeError("silent failure")

    sim.spawn(bad())
    with pytest.raises(SimError, match="died"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.spawn(bad())
    with pytest.raises(SimError):
        sim.run()
    assert p.triggered and not p.ok


def test_interrupt_raises_interrupted_with_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupted as e:
            return ("interrupted", e.cause, sim.now)
        return "not reached"

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt("wakeup-call")

    p = sim.spawn(sleeper())
    sim.spawn(interrupter(p))
    sim.run()
    assert p.value == ("interrupted", "wakeup-call", pytest.approx(1.0))


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)
        return 1

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("too late")
    sim.run()
    assert p.value == 1


def test_kill_terminates_process():
    sim = Simulator()

    def immortal():
        while True:
            yield sim.timeout(1.0)

    def killer(target):
        yield sim.timeout(2.5)
        target.kill()

    p = sim.spawn(immortal())

    def parent():
        with pytest.raises(Killed):
            yield p
        return "ok"

    par = sim.spawn(parent())
    sim.spawn(killer(p))
    sim.run()
    assert par.value == "ok"
    assert not p.alive


def test_run_until_stops_clock():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(10.0)

    def parent():
        child = sim.spawn(forever())
        yield sim.timeout(1.0)
        child.kill()
        with pytest.raises(Killed):
            yield child

    sim.spawn(parent())
    end = sim.run(until=25.0)
    assert end == pytest.approx(25.0)


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    hits = []

    def proc():
        yield sim.timeout(10.0)
        hits.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0)
    assert hits == []
    sim.run()
    assert hits == [pytest.approx(10.0)]


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc():
        evs = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        vals = yield sim.all_of(evs)
        return vals

    assert run_with(sim, proc()) == ["c", "a", "b"]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def proc():
        vals = yield sim.all_of([])
        return (vals, sim.now)

    assert run_with(sim, proc()) == ([], 0.0)


def test_any_of_returns_first():
    sim = Simulator()

    def proc():
        idx, val = yield sim.any_of(
            [sim.timeout(3.0, "c"), sim.timeout(1.0, "a")]
        )
        return idx, val, sim.now

    assert run_with(sim, proc()) == (1, "a", pytest.approx(1.0))


def test_call_at_runs_callback():
    sim = Simulator()
    hits = []
    sim.call_at(5.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [pytest.approx(5.0)]


def test_call_at_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)

    sim.spawn(proc())
    sim.run()
    with pytest.raises(SimError):
        sim.call_at(5.0, lambda: None)


def test_peek_and_step():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)

    sim.spawn(proc())
    assert sim.peek() == pytest.approx(0.0)  # process start thunk
    assert sim.step() is True
    assert sim.peek() == pytest.approx(2.0)
    while sim.step():
        pass
    assert sim.peek() is None


class TestDomain:
    def test_paused_domain_defers_resumption(self):
        sim = Simulator()
        dom = sim.domain("vm0")
        hits = []

        def guest():
            yield sim.timeout(1.0)
            hits.append(("guest", sim.now))

        def host():
            dom.pause()
            yield sim.timeout(5.0)
            dom.resume()
            hits.append(("host", sim.now))

        sim.spawn(guest(), domain=dom)
        sim.spawn(host())
        sim.run()
        # guest's 1.0s wakeup was deferred until the domain resumed at 5.0
        assert hits == [("host", 5.0), ("guest", 5.0)]

    def test_nested_pause_requires_matching_resumes(self):
        sim = Simulator()
        dom = sim.domain()
        hits = []

        def guest():
            yield sim.timeout(1.0)
            hits.append(sim.now)

        def host():
            dom.pause()
            dom.pause()
            yield sim.timeout(3.0)
            dom.resume()
            yield sim.timeout(3.0)
            dom.resume()

        sim.spawn(guest(), domain=dom)
        sim.spawn(host())
        sim.run()
        assert hits == [pytest.approx(6.0)]

    def test_resume_without_pause_raises(self):
        sim = Simulator()
        dom = sim.domain()
        with pytest.raises(SimError):
            dom.resume()

    def test_paused_time_accounting(self):
        sim = Simulator()
        dom = sim.domain()

        def host():
            dom.pause()
            yield sim.timeout(2.0)
            dom.resume()
            yield sim.timeout(1.0)
            dom.pause()
            yield sim.timeout(3.0)
            dom.resume()

        sim.spawn(host())
        sim.run()
        assert dom.paused_time == pytest.approx(5.0)

    def test_paused_seconds_counts_the_open_pause(self):
        """paused_time only settles at resume; paused_seconds includes
        the pause still open right now (windowed accounting needs it)."""
        sim = Simulator()
        dom = sim.domain()
        seen = {}

        def host():
            dom.pause()
            yield sim.timeout(2.0)
            seen["mid"] = (dom.paused_time, dom.paused_seconds)
            yield sim.timeout(1.0)
            dom.resume()
            seen["after"] = (dom.paused_time, dom.paused_seconds)

        sim.spawn(host())
        sim.run()
        assert seen["mid"] == (0.0, pytest.approx(2.0))
        assert seen["after"] == (pytest.approx(3.0), pytest.approx(3.0))

    def test_interrupt_deferred_while_paused(self):
        sim = Simulator()
        dom = sim.domain()
        hits = []

        def guest():
            try:
                yield sim.timeout(100.0)
            except Interrupted:
                hits.append(sim.now)

        def host(target):
            dom.pause()
            target.interrupt()
            yield sim.timeout(4.0)
            dom.resume()

        g = sim.spawn(guest(), domain=dom)
        sim.spawn(host(g))
        sim.run()
        assert hits == [pytest.approx(4.0)]

    def test_fifo_replay_order_on_resume(self):
        sim = Simulator()
        dom = sim.domain()
        order = []

        def guest(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        def host():
            dom.pause()
            yield sim.timeout(10.0)
            dom.resume()

        sim.spawn(guest("first", 1.0), domain=dom)
        sim.spawn(guest("second", 2.0), domain=dom)
        sim.spawn(guest("third", 3.0), domain=dom)
        sim.spawn(host())
        sim.run()
        assert order == ["first", "second", "third"]


def test_us_ms_helpers():
    assert us(7) == pytest.approx(7e-6)
    assert ms(2) == pytest.approx(2e-3)
