"""AllOf/AnyOf combinators: failure propagation, mixed events."""

import pytest

from repro.sim import Simulator, run_with


def test_allof_fails_fast_on_child_failure():
    sim = Simulator()
    bad = sim.event("bad")
    slow = sim.timeout(100.0)

    def trigger():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("child broke"))

    def waiter():
        with pytest.raises(RuntimeError, match="child broke"):
            yield sim.all_of([slow, bad])
        return sim.now

    sim.spawn(trigger())
    p = sim.spawn(waiter())
    sim.run()
    # failed at t=1, long before the 100s timeout
    assert p.value == pytest.approx(1.0)


def test_anyof_failure_of_first_child_propagates():
    sim = Simulator()
    bad = sim.event("bad")

    def trigger():
        yield sim.timeout(0.5)
        bad.fail(ValueError("boom"))

    def waiter():
        with pytest.raises(ValueError):
            yield sim.any_of([bad, sim.timeout(10.0)])
        return True

    sim.spawn(trigger())
    p = sim.spawn(waiter())
    sim.run()
    assert p.value is True


def test_anyof_ignores_later_events_after_first():
    sim = Simulator()

    def waiter():
        first = sim.timeout(1.0, "fast")
        second = sim.timeout(2.0, "slow")
        idx, val = yield sim.any_of([second, first])
        # the slow event still fires later without disturbing anyone
        yield sim.timeout(5.0)
        return idx, val

    assert run_with(sim, waiter()) == (1, "fast")


def test_allof_mixed_processes_and_timeouts():
    sim = Simulator()

    def child(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        vals = yield sim.all_of(
            [sim.spawn(child(2.0, "b")), sim.timeout(1.0, "t"),
             sim.spawn(child(0.5, "a"))]
        )
        return vals, sim.now

    vals, t = run_with(sim, parent())
    assert vals == ["b", "t", "a"]
    assert t == pytest.approx(2.0)


def test_anyof_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_nested_combinators():
    sim = Simulator()

    def proc():
        inner = sim.all_of([sim.timeout(1.0, 1), sim.timeout(2.0, 2)])
        idx, val = yield sim.any_of([inner, sim.timeout(10.0)])
        return idx, val, sim.now

    idx, val, t = run_with(sim, proc())
    assert idx == 0
    assert val == [1, 2]
    assert t == pytest.approx(2.0)
