"""Tracer: counters, accumulators, stats, record filtering."""

import pytest

from repro.sim import LatencyStat, Simulator, Tracer


def test_counters_always_on():
    t = Tracer()
    t.emit("cat.a", "hello")
    t.emit("cat.a", "again")
    t.emit("cat.b", "other")
    assert t.counters["cat.a"] == 2
    assert t.counters["cat.b"] == 1
    # records not kept unless enabled
    assert t.records == []


def test_enable_records_category():
    t = Tracer()
    t.enable("keep")
    t.emit("keep", "m1", size=10)
    t.emit("drop", "m2")
    assert len(t.records) == 1
    rec = t.records[0]
    assert rec.category == "keep"
    assert rec.field("size") == 10
    assert rec.field("missing", "dflt") == "dflt"
    t.disable("keep")
    t.emit("keep", "m3")
    assert len(t.records) == 1


def test_record_all_mode():
    t = Tracer(record_all=True)
    t.emit("anything", "x")
    assert len(t.records) == 1


def test_clock_binding():
    sim = Simulator()
    t = Tracer(record_all=True)
    t.bind_clock(lambda: sim.now)

    def proc():
        yield sim.timeout(2.5)
        t.emit("evt", "later")

    sim.spawn(proc())
    sim.run()
    assert t.records[0].time == pytest.approx(2.5)


def test_accumulate_and_observe():
    t = Tracer()
    t.accumulate("bytes", 100)
    t.accumulate("bytes", 50)
    assert t.accumulators["bytes"] == 150
    for v in (1.0, 3.0, 2.0):
        t.observe("lat", v)
    stat = t.stats["lat"]
    assert stat.count == 3
    assert stat.mean == pytest.approx(2.0)
    assert stat.min == 1.0
    assert stat.max == 3.0


def test_latency_stat_empty_mean():
    assert LatencyStat("x").mean == 0.0


def test_find_and_reset():
    t = Tracer(record_all=True)
    t.emit("a", "1")
    t.emit("b", "2")
    assert len(t.find("a")) == 1
    t.reset()
    assert t.records == [] and not t.counters and not t.accumulators


def test_summary_renders():
    t = Tracer()
    t.count("ops", 5)
    t.accumulate("time", 1.5)
    s = t.summary()
    assert "ops: 5" in s
    assert "time" in s
