"""Tracer: counters, accumulators, stats, records, histograms, spans."""

import pytest

from repro.sim import LatencyStat, SimError, Simulator, Span, Tracer
from repro.sim.trace import DROPPED_RECORDS_KEY, DROPPED_SPANS_KEY


def test_counters_always_on():
    t = Tracer()
    t.emit("cat.a", "hello")
    t.emit("cat.a", "again")
    t.emit("cat.b", "other")
    assert t.counters["cat.a"] == 2
    assert t.counters["cat.b"] == 1
    # records not kept unless enabled
    assert len(t.records) == 0


def test_enable_records_category():
    t = Tracer()
    t.enable("keep")
    t.emit("keep", "m1", size=10)
    t.emit("drop", "m2")
    assert len(t.records) == 1
    rec = t.records[0]
    assert rec.category == "keep"
    assert rec.field("size") == 10
    assert rec.field("missing", "dflt") == "dflt"
    t.disable("keep")
    t.emit("keep", "m3")
    assert len(t.records) == 1


def test_record_all_mode():
    t = Tracer(record_all=True)
    t.emit("anything", "x")
    assert len(t.records) == 1


def test_records_ring_buffer_caps_and_counts_drops():
    t = Tracer(record_all=True, max_records=4)
    for i in range(10):
        t.emit("soak", f"m{i}")
    assert len(t.records) == 4
    # the newest records survive, the oldest were dropped
    assert [r.message for r in t.records] == ["m6", "m7", "m8", "m9"]
    assert t.dropped_records == 6
    assert t.counters[DROPPED_RECORDS_KEY] == 6
    # the emit counter still saw every event
    assert t.counters["soak"] == 10


def test_records_uncapped_when_requested():
    t = Tracer(record_all=True, max_records=None)
    for i in range(100):
        t.emit("x", str(i))
    assert len(t.records) == 100 and t.dropped_records == 0


def test_clock_binding():
    sim = Simulator()
    t = Tracer(record_all=True)
    t.bind_clock(lambda: sim.now)

    def proc():
        yield sim.timeout(2.5)
        t.emit("evt", "later")

    sim.spawn(proc())
    sim.run()
    assert t.records[0].time == pytest.approx(2.5)


def test_accumulate_and_observe():
    t = Tracer()
    t.accumulate("bytes", 100)
    t.accumulate("bytes", 50)
    assert t.accumulators["bytes"] == 150
    for v in (1.0, 3.0, 2.0):
        t.observe("lat", v)
    stat = t.stats["lat"]
    assert stat.count == 3
    assert stat.mean == pytest.approx(2.0)
    assert stat.min == 1.0
    assert stat.max == 3.0


def test_latency_stat_empty_mean():
    assert LatencyStat("x").mean == 0.0


def test_latency_stat_empty_renders_dashes():
    s = LatencyStat("empty")
    text = repr(s)
    assert "n=0" in text
    assert "inf" not in text  # never leak min=inf / max=-inf
    assert "mean=-" in text and "min=-" in text and "max=-" in text
    assert s.percentile(99) == 0.0


def test_latency_stat_percentiles():
    s = LatencyStat("lat")
    for v in range(1, 101):  # 1..100 us
        s.add(v * 1e-6)
    assert s.p50 == pytest.approx(50e-6, rel=0.30)
    assert s.p95 == pytest.approx(95e-6, rel=0.30)
    assert s.p99 == pytest.approx(99e-6, rel=0.30)
    # percentiles clamp to the exact observed extremes
    assert s.min <= s.percentile(0.1) <= s.percentile(99.9) <= s.max
    assert s.percentile(100) == s.max
    with pytest.raises(ValueError):
        s.percentile(101)


def test_latency_stat_percentile_single_value():
    s = LatencyStat("one")
    s.add(7e-6)
    for q in (1, 50, 99):
        assert s.percentile(q) == pytest.approx(7e-6)


def test_latency_stat_zero_values_bucketed():
    s = LatencyStat("z")
    s.add(0.0)
    s.add(0.0)
    s.add(1e-3)
    assert s.zeros == 2
    assert s.percentile(50) == 0.0
    assert s.percentile(99) == pytest.approx(1e-3)


def test_find_and_reset():
    t = Tracer(record_all=True)
    t.emit("a", "1")
    t.emit("b", "2")
    assert len(t.find("a")) == 1
    t.reset()
    assert len(t.records) == 0 and not t.counters and not t.accumulators


def test_summary_renders():
    t = Tracer()
    t.count("ops", 5)
    t.accumulate("time", 1.5)
    s = t.summary()
    assert "ops: 5" in s
    assert "time" in s


def test_summary_category_filter_applies_to_accumulators():
    t = Tracer()
    t.count("keep.ops", 2)
    t.count("drop.ops", 3)
    t.accumulate("keep.ops", 1.0)
    t.accumulate("drop.time", 9.0)
    s = t.summary(categories=["keep.ops"])
    assert "keep.ops" in s
    assert "drop.ops" not in s
    assert "drop.time" not in s  # the filter reaches the accumulators too


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def _clocked_tracer():
    sim = Simulator()
    t = Tracer()
    t.bind_clock(lambda: sim.now)
    return sim, t


def test_span_phase_durations_telescope():
    span = Span("send", start=1.0)
    span.mark("a", 1.5)
    span.mark("b", 1.5)   # zero-duration phases are fine
    span.mark("c", 2.25)
    assert span.elapsed == pytest.approx(1.25)
    d = span.phase_durations()
    assert d == {"a": 0.5, "b": 0.0, "c": 0.75}
    assert sum(d.values()) == span.elapsed  # exact, not approx


def test_span_repeated_phase_accumulates():
    span = Span("rma", start=0.0)
    span.mark("retry", 1.0)
    span.mark("post", 1.5)
    span.mark("retry", 3.0)
    assert span.phase_durations()["retry"] == pytest.approx(2.5)


def test_span_marks_must_be_monotone():
    span = Span("send", start=5.0)
    span.mark("a", 6.0)
    with pytest.raises(SimError):
        span.mark("b", 5.5)
    with pytest.raises(SimError):
        Span("x", start=2.0).mark("a", 1.0)


def test_tracer_span_lifecycle_and_tag_binding():
    sim, t = _clocked_tracer()
    span = t.new_span("send", vm="vm0")
    t.bind_span(7, span)
    assert t.span_for(7) is span
    t.mark_tag(7, "posted")
    t.mark_tag(99, "nobody")  # unknown tags are ignored
    # a retry renews the tag; both correlate to the same span
    t.bind_span(8, span)
    assert span.tags == [7, 8]
    assert t.span_for(8) is span
    t.end_span(span, "ok")
    assert span.closed and span.status == "ok"
    assert t.span_for(7) is None and t.span_for(8) is None
    assert list(t.spans) == [span]
    # ending twice keeps the first status and does not double-store
    t.end_span(span, "error")
    assert span.status == "ok" and len(t.spans) == 1


def test_tracer_mark_skips_closed_spans():
    sim, t = _clocked_tracer()
    span = t.new_span("send")
    t.end_span(span, "ok")
    t.mark(span, "late")
    assert span.marks == []


def test_tracer_spans_disabled_is_nullop():
    t = Tracer(record_spans=False)
    assert t.new_span("send") is None
    t.bind_span(1, None)
    t.mark(None, "x")
    t.end_span(None)
    assert len(t.spans) == 0 and not t.active_spans


def test_tracer_span_buffer_caps_and_counts_drops():
    sim, t = _clocked_tracer()
    t.spans = type(t.spans)(maxlen=2)
    for i in range(5):
        t.end_span(t.new_span(f"op{i}"), "ok")
    assert [s.op for s in t.spans] == ["op3", "op4"]
    assert t.dropped_spans == 3
    assert t.counters[DROPPED_SPANS_KEY] == 3


def test_export_chrome_trace_shape():
    sim, t = _clocked_tracer()

    def work():
        span = t.new_span("send", vm="vm0")
        t.bind_span(1, span)
        yield sim.timeout(1e-6)
        t.mark(span, "post")
        yield sim.timeout(2e-6)
        t.mark(span, "wait")
        t.end_span(span, "ok")

    sim.spawn(work())
    sim.run()
    doc = t.export_chrome_trace()
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    xs = [e for e in events if e["ph"] == "X"]
    assert meta[0]["args"]["name"] == "vm0"
    # one enclosing event + one per phase segment
    assert len(xs) == 3
    enclosing = xs[0]
    assert enclosing["name"] == "send"
    assert enclosing["dur"] == pytest.approx(3.0)  # microseconds
    assert sum(e["dur"] for e in xs[1:]) == pytest.approx(enclosing["dur"])
    # every X event is well-formed
    for e in xs:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)


def test_export_chrome_trace_include_open():
    sim, t = _clocked_tracer()
    span = t.new_span("poll", vm="vm1")
    t.bind_span(3, span)
    assert all(e["ph"] == "M" or e["args"].get("status") != "open"
               for e in t.export_chrome_trace()["traceEvents"])
    doc = t.export_chrome_trace(include_open=True)
    open_events = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["args"].get("status") == "open"]
    assert len(open_events) == 1


def test_reset_clears_spans():
    sim, t = _clocked_tracer()
    t.bind_span(1, t.new_span("send"))
    t.end_span(t.new_span("recv"), "ok")
    t.reset()
    assert not t.active_spans and len(t.spans) == 0
    assert t.dropped_spans == 0 and t.dropped_records == 0


def test_replacing_a_ring_rebinds_its_drop_bookkeeping():
    """The bound checks are hoisted to precomputed caps; swapping in a
    replacement deque (as soak harnesses do) must rebind them — drops
    keep being counted against the *new* cap, and uncapped replacements
    stop counting drops entirely."""
    from collections import deque

    t = Tracer(record_all=True, max_records=100)
    t.records = deque(maxlen=2)
    for i in range(5):
        t.emit("soak", f"m{i}")
    assert [r.message for r in t.records] == ["m3", "m4"]
    assert t.dropped_records == 3
    assert t.counters[DROPPED_RECORDS_KEY] == 3

    t.records = deque()  # uncapped: nothing further drops
    for i in range(10):
        t.emit("soak", f"n{i}")
    assert len(t.records) == 10
    assert t.dropped_records == 3
    assert t.counters[DROPPED_RECORDS_KEY] == 3
