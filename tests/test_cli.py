"""CLI: every subcommand runs and prints sensible output."""

import pytest

from repro.cli import main


def test_micinfo(capsys):
    assert main(["micinfo"]) == 0
    out = capsys.readouterr().out
    assert "mic0" in out and "3120P" in out


def test_fig4_table(capsys):
    assert main(["fig4", "--sizes", "1,1024"]) == 0
    out = capsys.readouterr().out
    assert "native(us)" in out
    # the two anchors appear in the table
    assert "7.0" in out
    assert "382" in out


def test_fig4_csv(capsys):
    assert main(["fig4", "--sizes", "1", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("size_bytes,native_s,vphi_s")


def test_fig5_table(capsys):
    assert main(["fig5", "--sizes", "268435456"]) == 0
    out = capsys.readouterr().out
    assert "6.40" in out
    assert "73%" in out or "72%" in out


def test_dgemm_host_and_vm(capsys):
    assert main(["dgemm", "--n", "128", "--threads", "56"]) == 0
    host_out = capsys.readouterr().out
    assert "from host: status=0" in host_out
    assert "c_checksum" in host_out
    assert main(["dgemm", "--n", "128", "--threads", "56", "--vm"]) == 0
    vm_out = capsys.readouterr().out
    assert "from VM (vPHI): status=0" in vm_out


def test_stream(capsys):
    assert main(["stream", "--n", "16384", "--iters", "2"]) == 0
    out = capsys.readouterr().out
    assert "triad_gbps" in out


def test_trace_exports_valid_chrome_json(tmp_path, capsys):
    import json

    from repro.analysis import validate_chrome_trace

    out_path = tmp_path / "trace.json"
    assert main(["trace", "--sizes", "1,1024", "--out", str(out_path),
                 "--check"]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out
    assert "request lifecycle" in out
    assert "span invariants hold" in out
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["warp"])


def test_profile_prints_stats_and_dumps_pstats(tmp_path, capsys):
    import pstats

    out_path = tmp_path / "fig4.pstats"
    assert main(["profile", "fig4", "--sizes", "1,1024", "--top", "5",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "Ordered by: internal time" in out
    assert f"wrote raw profile to {out_path}" in out
    # the dump loads back as valid pstats data
    stats = pstats.Stats(str(out_path))
    assert stats.total_calls > 0


def test_profile_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["profile", "fig9"])


def test_qos_smoke_runs_and_renders(capsys):
    assert main(["qos", "--tenants", "4", "--duration", "0.004",
                 "--policy", "wfq"]) == 0
    out = capsys.readouterr().out
    assert "QoS report: policy=wfq" in out
    assert "Jain's index" in out
    assert "tenant-0" in out


def test_qos_check_validates_and_asserts(tmp_path, capsys):
    report_path = tmp_path / "slo.txt"
    assert main(["qos", "--check", "--tenants", "4", "--duration", "0.004",
                 "--assert-jain", "0.9", "--assert-shed",
                 "--out", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "plan ok: 4 tenants" in out
    assert "every arrival got a typed completion" in out
    assert "QoS report" in report_path.read_text()


def test_qos_check_plan_file_round_trip(tmp_path, capsys):
    import json as _json

    from repro.traffic import TrafficPlan

    plan_path = tmp_path / "plan.json"
    plan_path.write_text(_json.dumps(
        TrafficPlan.smoke(tenants=4, duration=0.004).to_dict()))
    assert main(["qos", "--check", "--plan", str(plan_path)]) == 0
    out = capsys.readouterr().out
    assert "plan ok" in out


def test_qos_invalid_plan_fails(tmp_path, capsys):
    plan_path = tmp_path / "bad.json"
    plan_path.write_text('{"tenants": [], "policy": "warp"}')
    assert main(["qos", "--check", "--plan", str(plan_path)]) == 1
    err = capsys.readouterr().err
    assert "FAIL invalid plan" in err


def test_qos_jain_assertion_can_fail(capsys):
    # an impossible bar: weighted Jain can never exceed 1.0
    assert main(["qos", "--tenants", "4", "--duration", "0.004",
                 "--assert-jain", "1.1"]) == 1
    err = capsys.readouterr().err
    assert "weighted Jain's index" in err
