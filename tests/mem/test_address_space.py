"""AddressSpace: VMAs, faulting, pinning, swap, scatter-gather."""

import numpy as np
import pytest

from repro.mem import (
    AddressSpace,
    BadAddress,
    MemError,
    PAGE_SIZE,
    PageFault,
    PhysicalMemory,
    PinViolation,
    VMAFlag,
)

MB = 1 << 20


@pytest.fixture
def space():
    return AddressSpace(PhysicalMemory(64 * MB, "ram"), name="proc")


def test_mmap_returns_page_aligned_vma(space):
    vma = space.mmap(10000, name="buf")
    assert vma.start % PAGE_SIZE == 0
    assert vma.nbytes == 12288  # rounded up to 3 pages


def test_mmap_rejects_bad_length(space):
    with pytest.raises(MemError):
        space.mmap(0)


def test_mmap_hint_must_be_aligned(space):
    with pytest.raises(MemError):
        space.mmap(PAGE_SIZE, addr=0x1001)


def test_mmap_overlap_rejected(space):
    space.mmap(PAGE_SIZE, addr=0x10000)
    with pytest.raises(MemError):
        space.mmap(2 * PAGE_SIZE, addr=0x10000)


def test_demand_faulting_allocates_lazily(space):
    vma = space.mmap(16 * PAGE_SIZE, name="lazy")
    assert space.resident_pages() == 0
    space.write(vma.start + 5, b"hello")
    assert space.resident_pages() == 1
    assert space.fault_count == 1
    assert space.read(vma.start + 5, 5).tobytes() == b"hello"


def test_read_write_across_page_boundary(space):
    vma = space.mmap(2 * PAGE_SIZE)
    payload = np.arange(100, dtype=np.uint8)
    space.write(vma.start + PAGE_SIZE - 50, payload)
    assert np.array_equal(space.read(vma.start + PAGE_SIZE - 50, 100), payload)
    assert space.resident_pages() == 2


def test_access_unmapped_is_segv(space):
    with pytest.raises(BadAddress):
        space.read(0xDEAD0000, 1)


def test_munmap_frees_and_invalidates(space):
    vma = space.mmap(4 * PAGE_SIZE)
    space.write(vma.start, b"x" * PAGE_SIZE)
    allocated = space.phys.bytes_allocated
    assert allocated > 0
    space.munmap(vma)
    assert space.phys.bytes_allocated == 0
    with pytest.raises(BadAddress):
        space.read(vma.start, 1)


def test_munmap_unknown_vma_rejected(space):
    vma = space.mmap(PAGE_SIZE)
    space.munmap(vma)
    with pytest.raises(MemError):
        space.munmap(vma)


def test_populate_backs_with_contiguous_extent(space):
    vma = space.mmap(8 * PAGE_SIZE, populate=True)
    assert space.resident_pages() == 8
    sg = space.sg_list(vma.start, 8 * PAGE_SIZE)
    assert len(sg) == 1  # fully contiguous
    space.munmap(vma)
    assert space.phys.bytes_allocated == 0


def test_device_vma_uses_fault_handler(space):
    dev = PhysicalMemory(MB, "gddr")
    hits = []

    def handler(vma, page_vaddr):
        hits.append(page_vaddr)
        return dev, (page_vaddr - vma.start) % MB

    vma = space.mmap(
        2 * PAGE_SIZE,
        flags=VMAFlag.READ | VMAFlag.WRITE | VMAFlag.DEVICE,
        fault_handler=handler,
        name="mic-window",
    )
    dev.write(0, b"device!")
    assert space.read(vma.start, 7).tobytes() == b"device!"
    assert hits == [vma.start]


def test_device_vma_without_handler_faults(space):
    vma = space.mmap(PAGE_SIZE, flags=VMAFlag.READ | VMAFlag.DEVICE)
    with pytest.raises(PageFault):
        space.read(vma.start, 1)


def test_vma_private_and_pfnphi_flag(space):
    vma = space.mmap(
        PAGE_SIZE,
        flags=VMAFlag.READ | VMAFlag.DEVICE | VMAFlag.PFNPHI,
        fault_handler=lambda v, a: (space.phys, 0),
    )
    vma.private = ("phi-frame", 1234)
    found = space.find_vma(vma.start)
    assert found is vma
    assert found.flags & VMAFlag.PFNPHI
    assert found.private == ("phi-frame", 1234)


class TestSG:
    def test_sg_covers_exact_bytes(self, space):
        vma = space.mmap(4 * PAGE_SIZE)
        sg = space.sg_list(vma.start + 100, 2 * PAGE_SIZE)
        assert sum(e.nbytes for e in sg) == 2 * PAGE_SIZE

    def test_sg_coalesces_contiguous_pages(self, space):
        vma = space.mmap(4 * PAGE_SIZE, populate=True)
        sg = space.sg_list(vma.start, 4 * PAGE_SIZE)
        assert len(sg) == 1

    def test_sg_empty_for_zero_length(self, space):
        assert space.sg_list(0x1000, 0) == []

    def test_sg_no_fault_mode_raises_on_absent(self, space):
        vma = space.mmap(PAGE_SIZE)
        with pytest.raises(PageFault):
            space.sg_list(vma.start, 10, fault_in=False)


class TestPinning:
    def test_pin_faults_in_and_counts(self, space):
        vma = space.mmap(4 * PAGE_SIZE)
        pinned = space.pin(vma.start, 4 * PAGE_SIZE)
        assert space.pinned_pages() == 4
        assert sum(e.nbytes for e in pinned.sg) == 4 * PAGE_SIZE
        pinned.unpin()
        assert space.pinned_pages() == 0

    def test_pin_partial_pages_rounds_out(self, space):
        vma = space.mmap(3 * PAGE_SIZE)
        pinned = space.pin(vma.start + 100, PAGE_SIZE)  # straddles 2 pages
        assert space.pinned_pages() == 2
        pinned.unpin()

    def test_double_unpin_rejected(self, space):
        vma = space.mmap(PAGE_SIZE)
        pinned = space.pin(vma.start, PAGE_SIZE)
        pinned.unpin()
        with pytest.raises(PinViolation):
            pinned.unpin()

    def test_munmap_of_pinned_page_rejected(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.pin(vma.start, PAGE_SIZE)
        with pytest.raises(PinViolation):
            space.munmap(vma)

    def test_nested_pins(self, space):
        vma = space.mmap(PAGE_SIZE)
        p1 = space.pin(vma.start, PAGE_SIZE)
        p2 = space.pin(vma.start, PAGE_SIZE)
        p1.unpin()
        assert space.pinned_pages() == 1
        p2.unpin()
        assert space.pinned_pages() == 0


class TestSwap:
    def test_swap_out_and_transparent_swap_in(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.write(vma.start, b"important")
        assert space.swap_out(vma.start) is True
        assert space.resident_pages() == 0
        # CPU access faults the page back in with its contents
        assert space.read(vma.start, 9).tobytes() == b"important"
        assert space.swapin_count == 1

    def test_pinned_page_refuses_swap(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.pin(vma.start, PAGE_SIZE)
        assert space.swap_out(vma.start) is False

    def test_swap_out_nonresident_is_noop(self, space):
        vma = space.mmap(PAGE_SIZE)
        assert space.swap_out(vma.start) is False

    def test_dma_sees_stale_frame_after_swap(self, space):
        """The paper's §III pinning rationale, demonstrated: DMA against an
        unpinned, swapped-out page reads poison/garbage, not the data."""
        vma = space.mmap(PAGE_SIZE)
        space.write(vma.start, b"valid-data")
        sg = space.sg_list(vma.start, 10, fault_in=False)  # DMA address grabbed
        mem, paddr, n = next(iter(sg[0])), sg[0].paddr, sg[0].nbytes
        space.swap_out(vma.start)
        # the DMA engine still holds the old physical address
        stale = sg[0].mem.read(sg[0].paddr, 10)
        assert stale.tobytes() != b"valid-data"
