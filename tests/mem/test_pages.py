"""Page arithmetic unit + property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import (
    PAGE_SIZE,
    is_page_aligned,
    page_align_down,
    page_align_up,
    page_offset,
    pages_spanned,
)


def test_constants():
    assert PAGE_SIZE == 4096


@pytest.mark.parametrize(
    "addr,down,up",
    [
        (0, 0, 0),
        (1, 0, 4096),
        (4095, 0, 4096),
        (4096, 4096, 4096),
        (4097, 4096, 8192),
    ],
)
def test_align_examples(addr, down, up):
    assert page_align_down(addr) == down
    assert page_align_up(addr) == up


@pytest.mark.parametrize(
    "addr,nbytes,n",
    [
        (0, 0, 0),
        (0, 1, 1),
        (0, 4096, 1),
        (0, 4097, 2),
        (4095, 2, 2),
        (4095, 1, 1),
        (100, 8192, 3),
    ],
)
def test_pages_spanned_examples(addr, nbytes, n):
    assert pages_spanned(addr, nbytes) == n


@given(st.integers(min_value=0, max_value=2**48))
def test_align_down_le_addr_le_align_up(addr):
    assert page_align_down(addr) <= addr <= page_align_up(addr)
    assert is_page_aligned(page_align_down(addr))
    assert is_page_aligned(page_align_up(addr))
    assert page_align_down(addr) + page_offset(addr) == addr


@given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=2**24))
def test_pages_spanned_bounds(addr, nbytes):
    n = pages_spanned(addr, nbytes)
    # Must cover the range but never exceed one extra page at each end.
    assert n * PAGE_SIZE >= nbytes
    assert (n - 1) * PAGE_SIZE < nbytes + 2 * PAGE_SIZE
    # Definition check against the naive computation.
    first = addr // PAGE_SIZE
    last = (addr + nbytes - 1) // PAGE_SIZE
    assert n == last - first + 1
