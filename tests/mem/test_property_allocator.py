"""Stateful property test: the physical allocator against a shadow model."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.mem import OutOfMemory, PAGE_SIZE, PhysicalMemory

MB = 1 << 20


class AllocatorMachine(RuleBasedStateMachine):
    """alloc/free/write interleavings preserve content and accounting."""

    def __init__(self):
        super().__init__()
        self.mem = PhysicalMemory(32 * MB)
        #: live extents with their expected fill byte
        self.live: dict[int, tuple] = {}
        self._next_tag = 0

    @rule(pages=st.integers(1, 64))
    def alloc_and_stamp(self, pages):
        try:
            ext = self.mem.alloc(pages * PAGE_SIZE)
        except OutOfMemory:
            # legal only when the request genuinely doesn't fit any hole
            assert self.mem.largest_free_block() < pages * PAGE_SIZE
            return
        tag = self._next_tag = (self._next_tag + 1) % 255 or 1
        ext.fill(tag)
        self.live[ext.addr] = (ext, tag)

    @rule(data=st.data())
    def free_one(self, data):
        if not self.live:
            return
        addr = data.draw(st.sampled_from(sorted(self.live)))
        ext, _ = self.live.pop(addr)
        ext.free()

    @rule(data=st.data(), off=st.integers(0, PAGE_SIZE - 1))
    def rewrite_region(self, data, off):
        if not self.live:
            return
        addr = data.draw(st.sampled_from(sorted(self.live)))
        ext, tag = self.live[addr]
        new_tag = (tag % 254) + 1
        ext.fill(new_tag)
        self.live[addr] = (ext, new_tag)

    @invariant()
    def live_contents_uncorrupted(self):
        for addr, (ext, tag) in self.live.items():
            data = ext.read()
            assert (data == tag).all(), f"extent @{addr:#x} corrupted"

    @invariant()
    def accounting_conserved(self):
        assert self.mem.bytes_free + self.mem.bytes_allocated == self.mem.size
        assert self.mem.bytes_allocated == sum(
            e.nbytes for e, _ in self.live.values()
        )

    @invariant()
    def extents_disjoint(self):
        spans = sorted((e.addr, e.end) for e, _ in self.live.values())
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
