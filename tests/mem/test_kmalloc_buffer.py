"""KernelAllocator (KMALLOC_MAX_SIZE) and Buffer tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import (
    AllocTooLarge,
    Buffer,
    KMALLOC_MAX_SIZE,
    KernelAllocator,
    PhysicalMemory,
)

MB = 1 << 20


class TestKmalloc:
    def test_limit_is_4mb(self):
        assert KMALLOC_MAX_SIZE == 4 * MB

    def test_alloc_within_limit(self):
        ka = KernelAllocator(PhysicalMemory(16 * MB))
        ext = ka.kmalloc(4 * MB)
        assert ext.nbytes == 4 * MB
        assert ka.live == 1
        ka.kfree(ext)
        assert ka.live == 0

    def test_alloc_above_limit_rejected(self):
        ka = KernelAllocator(PhysicalMemory(16 * MB))
        with pytest.raises(AllocTooLarge):
            ka.kmalloc(4 * MB + 1)

    def test_chunked_alloc_splits(self):
        ka = KernelAllocator(PhysicalMemory(32 * MB))
        chunks = ka.kmalloc_chunked(10 * MB)
        assert [c.nbytes for c in chunks] == [4 * MB, 4 * MB, 2 * MB]
        for c in chunks:
            ka.kfree(c)
        assert ka.live == 0

    def test_chunked_alloc_rolls_back_on_oom(self):
        ka = KernelAllocator(PhysicalMemory(6 * MB))
        with pytest.raises(Exception):
            ka.kmalloc_chunked(10 * MB)
        assert ka.live == 0
        assert ka.phys.bytes_allocated == 0

    @given(st.integers(min_value=1, max_value=40 * MB))
    @settings(max_examples=30, deadline=None)
    def test_chunk_sizes_property(self, nbytes):
        """Every chunk <= limit; total covers nbytes; only last is partial."""
        ka = KernelAllocator(PhysicalMemory(64 * MB))
        chunks = ka.kmalloc_chunked(nbytes)
        assert all(c.nbytes <= KMALLOC_MAX_SIZE for c in chunks)
        assert all(c.nbytes == KMALLOC_MAX_SIZE for c in chunks[:-1])
        total = sum(c.nbytes for c in chunks)
        assert nbytes <= total < nbytes + KMALLOC_MAX_SIZE


class TestBuffer:
    def test_pattern_is_deterministic(self):
        assert Buffer.pattern(1000, seed=7) == Buffer.pattern(1000, seed=7)
        assert Buffer.pattern(1000, seed=7) != Buffer.pattern(1000, seed=8)

    def test_sequential(self):
        b = Buffer.sequential(300, start=250)
        assert b.data[0] == 250
        assert b.data[6] == 0  # wraps at 256
        assert len(b) == 300

    def test_view_is_zero_copy(self):
        b = Buffer.zeros(100)
        v = b.view(10, 20)
        v.fill(0xFF)
        assert (b.data[10:30] == 0xFF).all()
        assert (b.data[:10] == 0).all()

    def test_view_bounds(self):
        b = Buffer.zeros(10)
        with pytest.raises(IndexError):
            b.view(5, 6)

    def test_checksum_changes_with_content(self):
        b = Buffer.pattern(512, seed=1)
        c1 = b.checksum()
        b.data[0] ^= 0xFF
        assert b.checksum() != c1

    def test_eq_bytes(self):
        assert Buffer(b"abc") == b"abc"
        assert not (Buffer(b"abc") == b"abd")

    def test_requires_uint8(self):
        with pytest.raises(TypeError):
            Buffer(np.zeros(4, dtype=np.float64))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Buffer(b"x"))
