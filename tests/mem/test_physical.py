"""PhysicalMemory: allocator, data access, nesting, poisoning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import (
    BadAddress,
    MemError,
    OutOfMemory,
    PAGE_SIZE,
    POISON_BYTE,
    PhysicalMemory,
)
from repro.mem.physical import CHUNK_SIZE

MB = 1 << 20


def test_alloc_returns_aligned_disjoint_extents():
    mem = PhysicalMemory(16 * MB, "ram")
    a = mem.alloc(5000)
    b = mem.alloc(5000)
    assert a.addr % PAGE_SIZE == 0
    assert b.addr % PAGE_SIZE == 0
    assert a.end <= b.addr or b.end <= a.addr
    # sizes round up to pages
    assert a.nbytes == 8192


def test_alloc_custom_alignment():
    mem = PhysicalMemory(16 * MB)
    mem.alloc(PAGE_SIZE)  # disturb
    ext = mem.alloc(PAGE_SIZE, align=1 << 16)
    assert ext.addr % (1 << 16) == 0


def test_alloc_bad_alignment_rejected():
    mem = PhysicalMemory(MB)
    with pytest.raises(MemError):
        mem.alloc(100, align=3)


def test_alloc_nonpositive_rejected():
    mem = PhysicalMemory(MB)
    with pytest.raises(MemError):
        mem.alloc(0)


def test_out_of_memory():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    mem.alloc(PAGE_SIZE)
    mem.alloc(PAGE_SIZE)
    with pytest.raises(OutOfMemory):
        mem.alloc(PAGE_SIZE)


def test_free_allows_reuse_and_coalesces():
    mem = PhysicalMemory(4 * PAGE_SIZE)
    a = mem.alloc(PAGE_SIZE)
    b = mem.alloc(PAGE_SIZE)
    c = mem.alloc(2 * PAGE_SIZE)
    a.free()
    b.free()
    c.free()
    # after freeing everything the full span is one hole again
    assert mem.largest_free_block() == 4 * PAGE_SIZE
    big = mem.alloc(4 * PAGE_SIZE)
    assert big.nbytes == 4 * PAGE_SIZE


def test_double_free_rejected():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    ext.free()
    with pytest.raises(MemError):
        ext.free()


def test_use_after_free_rejected():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    ext.free()
    with pytest.raises(BadAddress):
        ext.read()


def test_read_write_roundtrip():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    payload = np.arange(256, dtype=np.uint8)
    ext.write(payload, off=100)
    assert np.array_equal(ext.read(100, 256), payload)


def test_write_bytes_accepted():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    ext.write(b"hello world")
    assert ext.read(0, 11).tobytes() == b"hello world"


def test_extent_bounds_checked():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    with pytest.raises(BadAddress):
        ext.read(0, PAGE_SIZE + 1)
    with pytest.raises(BadAddress):
        ext.write(b"x", off=PAGE_SIZE)


def test_memory_bounds_checked():
    mem = PhysicalMemory(MB)
    with pytest.raises(BadAddress):
        mem.read(MB - 1, 2)
    with pytest.raises(BadAddress):
        mem.write(MB, b"x")


def test_cross_chunk_access():
    mem = PhysicalMemory(4 * CHUNK_SIZE)
    ext = mem.alloc(2 * CHUNK_SIZE, align=PAGE_SIZE)
    # place a write straddling the chunk boundary inside the extent
    start = CHUNK_SIZE - ext.addr - 100 if ext.addr < CHUNK_SIZE else 0
    payload = np.random.default_rng(1).integers(0, 256, 300, dtype=np.uint8)
    ext.write(payload, off=start)
    assert np.array_equal(ext.read(start, 300), payload)


def test_unwritten_memory_reads_zero():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    assert not ext.read().any()


def test_freed_region_poisoned():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    ext.write(b"secret-data!")
    addr = ext.addr
    ext.free()
    # direct physical read now sees poison, not the old contents
    got = mem.read(addr, 12)
    assert (got == POISON_BYTE).all()


def test_fill():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(PAGE_SIZE)
    ext.fill(0xAB)
    assert (ext.read() == 0xAB).all()
    ext.fill(0x00, off=10, nbytes=10)
    assert (ext.read(10, 10) == 0).all()


def test_copy_between_memories():
    src = PhysicalMemory(MB, "a")
    dst = PhysicalMemory(MB, "b")
    se = src.alloc(PAGE_SIZE)
    de = dst.alloc(PAGE_SIZE)
    se.write(b"payload-x")
    PhysicalMemory.copy(dst, de.addr, src, se.addr, 9)
    assert de.read(0, 9).tobytes() == b"payload-x"


def test_copy_within():
    mem = PhysicalMemory(MB)
    ext = mem.alloc(2 * PAGE_SIZE)
    ext.write(b"abcd")
    mem.copy_within(ext.addr + PAGE_SIZE, ext.addr, 4)
    assert ext.read(PAGE_SIZE, 4).tobytes() == b"abcd"


class TestNested:
    def test_carve_creates_window_into_parent(self):
        host = PhysicalMemory(64 * MB, "host")
        guest = host.carve(8 * MB, name="vm0-ram")
        guest.write(0x1000, b"guest-bytes")
        # the same bytes are visible at host physical base+0x1000
        base = guest.host_base
        assert host.read(base + 0x1000, 11).tobytes() == b"guest-bytes"

    def test_nested_alloc_and_bounds(self):
        host = PhysicalMemory(64 * MB, "host")
        guest = host.carve(4 * MB, name="vm0-ram")
        ext = guest.alloc(PAGE_SIZE)
        ext.write(b"inner")
        assert ext.read(0, 5).tobytes() == b"inner"
        with pytest.raises(BadAddress):
            guest.read(4 * MB, 1)

    def test_two_level_nesting_host_base(self):
        root = PhysicalMemory(64 * MB, "root")
        mid = root.carve(16 * MB, name="mid")
        leaf = mid.carve(4 * MB, name="leaf")
        leaf.write(0, b"Z")
        assert root.read(leaf.host_base, 1).tobytes() == b"Z"
        assert leaf.root() is root

    def test_accounting(self):
        mem = PhysicalMemory(MB)
        assert mem.bytes_free == MB
        e = mem.alloc(3 * PAGE_SIZE)
        assert mem.bytes_allocated == 3 * PAGE_SIZE
        assert mem.bytes_free == MB - 3 * PAGE_SIZE
        e.free()
        assert mem.bytes_allocated == 0


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=6 * PAGE_SIZE),  # alloc size
            st.booleans(),  # free it afterwards in this round?
        ),
        min_size=1,
        max_size=25,
    )
)
def test_allocator_never_overlaps_and_conserves(ops):
    """Property: live extents never overlap; free+allocated == size."""
    mem = PhysicalMemory(256 * PAGE_SIZE)
    live = []
    for size, do_free in ops:
        try:
            ext = mem.alloc(size)
        except OutOfMemory:
            continue
        for other in live:
            assert ext.end <= other.addr or other.end <= ext.addr
        if do_free:
            ext.free()
        else:
            live.append(ext)
        assert mem.bytes_free + mem.bytes_allocated == mem.size


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3 * PAGE_SIZE - 1),
            st.binary(min_size=1, max_size=600),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_read_back_matches_reference_model(writes):
    """Property: PhysicalMemory behaves like a flat bytearray."""
    mem = PhysicalMemory(4 * PAGE_SIZE)
    ref = bytearray(4 * PAGE_SIZE)
    for off, data in writes:
        data = data[: 4 * PAGE_SIZE - off]
        if not data:
            continue
        mem.write(off, data)
        ref[off : off + len(data)] = data
    assert mem.read(0, 4 * PAGE_SIZE).tobytes() == bytes(ref)
