"""/dev/mic/scif char device: open/ioctl/mmap/poll dispatch (§II-B).

libscif reaches the driver through this fd layer; the vPHI backend is
"just another" user of it.  These tests drive the full ioctl surface.
"""

import numpy as np
import pytest

from repro import Machine
from repro.host import IoctlRequest, ScifIoctl
from repro.scif import EBADF, EINVAL, PollEvent, Prot
from repro.sim import ms

PORT = 4000
MB = 1 << 20


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


def run(machine, gen):
    p = machine.sim.spawn(gen)
    machine.run()
    return p.value


def test_open_installs_fd_with_endpoint(machine):
    proc = machine.host_process("app")

    def body():
        fd, f = yield from machine.kernel.scif_dev.open(proc)
        return fd, f

    fd, f = run(machine, body())
    assert proc.fds[fd] is f
    assert f.endpoint is not None
    assert machine.kernel.scif_dev.opens == 1


def test_ioctl_bind_listen_accept_returns_new_fd(machine):
    sproc = machine.card_process("server")
    # card-side server over the raw API
    slib = machine.scif(sproc)
    hproc = machine.host_process("client")

    def server():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        yield from f.ioctl(IoctlRequest(ScifIoctl.BIND, port=PORT))
        yield from f.ioctl(IoctlRequest(ScifIoctl.LISTEN))
        newfd, peer = yield from f.ioctl(IoctlRequest(ScifIoctl.ACCEPTREQ))
        newfile = hproc.fds[newfd]
        data = yield from newfile.ioctl(IoctlRequest(ScifIoctl.RECV, nbytes=5))
        return newfd, peer, data.tobytes()

    def client():
        ep = yield from slib.open()
        yield from slib.connect(ep, (0, PORT))
        yield from slib.send(ep, b"hello")

    s = machine.sim.spawn(server())
    machine.sim.spawn(client())
    machine.run()
    newfd, peer, data = s.value
    assert data == b"hello"
    assert newfd in hproc.fds
    assert peer[0] == machine.card_node_id(0)


def test_ioctl_send_recv_roundtrip(machine):
    hproc = machine.host_process("client")
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, 3)
        yield from slib.send(conn, data.tobytes().upper())

    def client():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        yield from f.ioctl(IoctlRequest(ScifIoctl.CONNECT,
                                        addr=(machine.card_node_id(0), PORT)))
        yield from f.ioctl(IoctlRequest(ScifIoctl.SEND, payload=b"abc"))
        data = yield from f.ioctl(IoctlRequest(ScifIoctl.RECV, nbytes=3))
        yield from f.close()
        return data.tobytes()

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value == b"ABC"


def test_ioctl_register_and_rma(machine):
    hproc = machine.host_process("client")
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    ready = machine.sim.event()
    size = MB

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, 0xEE, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    def client():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        yield from f.ioctl(IoctlRequest(ScifIoctl.CONNECT,
                                        addr=(machine.card_node_id(0), PORT)))
        roff = yield ready
        vma = hproc.address_space.mmap(size, populate=True)
        n = yield from f.ioctl(IoctlRequest(
            ScifIoctl.VREADFROM, vaddr=vma.start, nbytes=size, roffset=roff))
        mark = yield from f.ioctl(IoctlRequest(ScifIoctl.FENCE_MARK))
        yield from f.ioctl(IoctlRequest(ScifIoctl.FENCE_WAIT, mark=mark))
        got = hproc.address_space.read(vma.start, 64)
        yield from f.ioctl(IoctlRequest(ScifIoctl.SEND, payload=b"x"))
        return n, got

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    n, got = c.value
    assert n == size
    assert (got == 0xEE).all()


def test_fd_mmap_and_poll(machine):
    hproc = machine.host_process("client")
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(4096, populate=True)
        sproc.address_space.write(vma.start, b"window-data")
        roff = yield from slib.register(conn, vma.start, 4096)
        ready.succeed(roff)
        yield machine.sim.timeout(ms(1))
        yield from slib.send(conn, b"ping")
        yield from slib.recv(conn, 1)

    def client():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        yield from f.ioctl(IoctlRequest(ScifIoctl.CONNECT,
                                        addr=(machine.card_node_id(0), PORT)))
        roff = yield ready
        vma = yield from f.mmap(roff, 4096, Prot.SCIF_PROT_READ)
        window = hproc.address_space.read(vma.start, 11)
        revents = yield from f.poll(PollEvent.SCIF_POLLIN)
        data = yield from f.ioctl(IoctlRequest(ScifIoctl.RECV, nbytes=4))
        yield from f.ioctl(IoctlRequest(ScifIoctl.SEND, payload=b"x"))
        return window.tobytes(), bool(revents & PollEvent.SCIF_POLLIN), data.tobytes()

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    window, pollin, data = c.value
    assert window == b"window-data"
    assert pollin
    assert data == b"ping"


def test_get_node_ids_ioctl(machine):
    hproc = machine.host_process("app")

    def body():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        ids = yield from f.ioctl(IoctlRequest(ScifIoctl.GET_NODE_IDS))
        return ids

    assert run(machine, body()) == ([0, 1], 0)


def test_closed_fd_rejected(machine):
    hproc = machine.host_process("app")

    def body():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        yield from f.close()
        with pytest.raises(EBADF):
            yield from f.ioctl(IoctlRequest(ScifIoctl.BIND, port=PORT))
        return True

    assert run(machine, body()) is True


def test_unknown_ioctl_rejected(machine):
    hproc = machine.host_process("app")

    def body():
        fd, f = yield from machine.kernel.scif_dev.open(hproc)
        req = IoctlRequest(ScifIoctl.CONNECT)  # missing addr
        with pytest.raises(EINVAL):
            yield from f.ioctl(req)
        return True

    assert run(machine, body()) is True
