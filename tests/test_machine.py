"""Machine facade: construction, boot ordering, error paths."""

import pytest

from repro import Machine
from repro.sim import DeadlockError, SimError, Simulator, run_with


def test_negative_cards_rejected():
    with pytest.raises(ValueError):
        Machine(cards=-1)


def test_zero_cards_boots_host_only():
    m = Machine(cards=0).boot()
    assert m.booted
    assert m.fabric.nodes.keys() == {0}


def test_scif_before_boot_rejected():
    m = Machine(cards=1)
    proc = m.host_process("p")
    with pytest.raises(SimError):
        m.scif(proc)


def test_create_vm_before_boot_rejected():
    m = Machine(cards=1)
    with pytest.raises(SimError):
        m.create_vm("vm0")


def test_card_node_id_before_boot_rejected():
    m = Machine(cards=1)
    with pytest.raises(SimError):
        m.card_node_id(0)


def test_boot_assigns_sequential_node_ids():
    m = Machine(cards=3).boot()
    assert [m.card_node_id(i) for i in range(3)] == [1, 2, 3]
    assert sorted(m.fabric.nodes) == [0, 1, 2, 3]


def test_sysfs_published_for_every_card():
    m = Machine(cards=2).boot()
    for i in range(2):
        assert m.kernel.sysfs.read(f"sys/class/mic/mic{i}/state") == "online"


def test_alternate_card_model():
    m = Machine(cards=1, card_model="7120P").boot()
    assert m.devices[0].sku.cores == 61
    assert m.kernel.sysfs.read("sys/class/mic/mic0/version") == "7120P"


def test_run_with_reports_deadlock():
    sim = Simulator()
    ev = sim.event("never")

    def stuck():
        yield ev

    with pytest.raises(DeadlockError):
        run_with(sim, stuck())


def test_repr_is_informative():
    m = Machine(cards=1)
    assert "cards=1" in repr(m)
    assert "booted=False" in repr(m)
