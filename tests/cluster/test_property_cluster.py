"""Chaos property: random churn never deadlocks, leaks, or corrupts.

Whatever topology Hypothesis picks, wherever the scheduler places the
tenants, and whenever the director fires its churn events — live
migrations, card hot-unplugs, re-plugs, in any order, overlapping the
tenants' RMA traffic — four invariants must hold at quiescence:

* **no deadlock** — every tenant generator runs to completion (an
  evicted tenant exits on its typed error; nobody parks forever);
* **no credit leak** — every card arbiter ends with all slots free;
* **no stranded tags** — every frontend's in-flight table drains;
* **no cross-corruption** — a surviving tenant's final readback is
  exactly its own pattern, never a byte of a neighbour's.  The final
  round is write-then-read inside one session epoch: migration is
  re-dial semantics (the destination card's server window is fresh
  memory), so a fence landing between a write and the readback
  legitimately resets the region and the round retries instead of
  calling documented data-loss corruption.

Errors are part of the contract too: the only ScifError a tenant may
ever see is the typed eviction of its own VM (card gone with no spare
capacity, host dead).  Any other error is a real datapath defect and
fails the run.

The deterministic companion test pins the abrupt-failure path the
random walk can't control precisely: a host dies mid-traffic, its VMs
are evicted broken, the survivors keep their SLO and their bytes.
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.mem import PAGE_SIZE
from repro.scif import MapFlag, ScifError
from repro.sim import SimError
from repro.vphi import VPhiConfig

# the nightly chaos job raises this well past the CI default
N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "8"))

PORT = 7300
WIN = 4 * PAGE_SIZE
FIXED_ROFF = 0x40000
ROUNDS = 10
CADENCE = 0.3e-3
RAM = 64 << 20


def resilient_servers(cluster, port=PORT):
    """One accept-forever fixed-window peer per card: any replayed or
    re-dialed session finds the same remote state wherever it lands."""
    for ref in cluster.cards:
        machine = cluster.machine(ref)
        sproc = machine.card_process(f"chaos-srv-{ref}", card=ref.card)
        slib = machine.scif(sproc)

        def server(slib=slib, sproc=sproc):
            ep = yield from slib.open()
            yield from slib.bind(ep, port)
            yield from slib.listen(ep)
            vma = sproc.address_space.mmap(WIN, populate=True)
            while True:
                conn, _ = yield from slib.accept(ep)
                yield from slib.register(
                    conn, vma.start, WIN,
                    offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
                )

        machine.sim.spawn(server(), name=f"chaos-srv-{ref}")


def spawn_tenant(cluster, vm, idx, done, integrity, unexplained):
    """RMA rounds against the tenant's own disjoint window region; the
    only tolerated error is this VM's own eviction."""
    gproc = vm.guest_process("chaos-tenant")
    glib = vm.vphi.libscif(gproc)
    sim = cluster.sim
    name = vm.name
    pattern = np.full(PAGE_SIZE, 0x40 + idx, dtype=np.uint8)
    roff = FIXED_ROFF + idx * PAGE_SIZE

    def evicted() -> bool:
        return (name in cluster.evicted
                or vm.vphi.frontend.session.state == "broken")

    def body():
        try:
            node = cluster.node_of(cluster.placement_of(name))
            ep = yield from glib.open()
            yield from glib.connect(ep, (node, PORT))
            vma = gproc.address_space.mmap(PAGE_SIZE, populate=True)
            gproc.address_space.write(vma.start, pattern)
            loff = yield from glib.register(ep, vma.start, PAGE_SIZE)
            for _ in range(ROUNDS):
                yield from glib.writeto(ep, loff, PAGE_SIZE, roff)
                yield sim.timeout(CADENCE)
            # final integrity round: my region holds my bytes, only
            # mine.  Write-then-read within one epoch: a migration
            # fence between the two lands the read on a fresh window
            # (re-dial semantics, not corruption) — retry, bounded by
            # the director's event budget of possible fences.
            session = vm.vphi.frontend.session
            for _ in range(4):
                epoch = session.epoch
                gproc.address_space.write(vma.start, pattern)
                yield from glib.writeto(ep, loff, PAGE_SIZE, roff)
                gproc.address_space.write(
                    vma.start, np.zeros(PAGE_SIZE, dtype=np.uint8))
                yield from glib.readfrom(ep, loff, PAGE_SIZE, roff)
                got = gproc.address_space.read(vma.start, PAGE_SIZE)
                if session.epoch == epoch:
                    integrity[name] = bool((got == pattern).all())
                    break
        except ScifError as e:
            if not evicted():
                unexplained[name] = repr(e)
        finally:
            done[name] = True

    vm.spawn_guest(body())


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    hosts=st.integers(1, 2),
    cards=st.integers(1, 2),
    policy=st.sampled_from(["spread", "pack"]),
    n_vms=st.integers(2, 3),
    events=st.lists(
        st.tuples(st.sampled_from(["migrate", "unplug", "plug"]),
                  st.integers(0, 3), st.integers(1, 8)),
        min_size=1, max_size=3),
)
def test_random_churn_never_deadlocks_leaks_or_corrupts(
        hosts, cards, policy, n_vms, events):
    if hosts * cards < 2:
        cards = 2  # churn needs somewhere to move to
    cluster = Cluster(hosts=hosts, cards_per_host=cards,
                      placement=policy).boot()
    resilient_servers(cluster)
    done, integrity, unexplained = {}, {}, {}
    names = []
    for idx in range(n_vms):
        vm = cluster.create_vm(
            f"vm{idx}", ram_bytes=RAM, arbiter_policy="wfq",
            vphi_config=VPhiConfig(
                backend_workers=2, recovery_policy="queue",
                qos_share=float(1 + idx % 2)),
        )
        names.append(vm.name)
        spawn_tenant(cluster, vm, idx, done, integrity, unexplained)

    def director():
        unplugged = []
        for kind, target, delay in events:
            yield cluster.sim.timeout(delay * 0.4e-3)
            try:
                if kind == "migrate":
                    yield from cluster.migrate(names[target % len(names)])
                elif kind == "unplug":
                    ref = cluster.cards[target % len(cluster.cards)]
                    yield from cluster.hot_unplug(ref.host, ref.card)
                    unplugged.append(ref)
                elif kind == "plug" and unplugged:
                    ref = unplugged.pop()
                    cluster.hot_plug(ref.host, ref.card)
            except SimError:
                # offline card, evicted VM, no destination capacity —
                # legal director misfires, not datapath defects
                pass

    cluster.sim.spawn(director(), name="chaos-director")
    cluster.run(until=1.0)

    assert done == {n: True for n in names}, (
        f"tenant deadlocked: finished {sorted(done)} of {names}")
    assert not unexplained, (
        f"non-eviction errors surfaced: {unexplained}")
    for machine in cluster.machines:
        for arb in machine.card_arbiters.values():
            assert arb.free == arb.slots, f"{arb.name} leaked credits"
    for name in names:
        vm = cluster.vms[name]
        assert not vm.vphi.frontend._inflight, (
            f"{name} stranded in-flight tags")
        if name in cluster.placements:
            assert vm.vphi.frontend.session.state == "active"
            assert integrity.get(name, True), (
                f"{name} read a corrupted pattern")
        else:
            assert name in cluster.evicted
            assert vm.vphi.frontend.session.state == "broken"


def test_host_failure_evicts_broken_and_survivors_keep_their_bytes():
    """Abrupt host death: the dead host's tenants are evicted with
    typed errors, the surviving host's tenant is untouched."""
    cluster = Cluster(hosts=2, cards_per_host=1).boot()
    resilient_servers(cluster)
    done, integrity, unexplained = {}, {}, {}
    vm_a = cluster.create_vm(
        "vma", ram_bytes=RAM,
        vphi_config=VPhiConfig(backend_workers=2, recovery_policy="queue"))
    ref_a = cluster.placement_of("vma")
    other = next(r for r in cluster.cards if r.host != ref_a.host)
    vm_b = cluster.create_vm(
        "vmb", ram_bytes=RAM, placement=other,
        vphi_config=VPhiConfig(backend_workers=2, recovery_policy="queue"))
    spawn_tenant(cluster, vm_a, 0, done, integrity, unexplained)
    spawn_tenant(cluster, vm_b, 1, done, integrity, unexplained)

    def director():
        yield cluster.sim.timeout(1e-3)
        victims = cluster.fail_host(ref_a.host)
        assert victims == ["vma"]

    cluster.sim.spawn(director(), name="reaper")
    cluster.run(until=1.0)

    assert done == {"vma": True, "vmb": True}
    assert not unexplained
    assert cluster.evicted == ["vma"]
    assert vm_a.vphi.frontend.session.state == "broken"
    assert vm_b.vphi.frontend.session.state == "active"
    assert integrity.get("vmb") is True
    assert "vma" not in integrity, "a dead host's tenant finished cleanly"
    assert cluster.machines[ref_a.host].faults.fires_of("host_fail") == 1
    for machine in cluster.machines:
        for arb in machine.card_arbiters.values():
            assert arb.free == arb.slots, f"{arb.name} leaked credits"
