"""Migration conformance: a migrated VM is indistinguishable from one
that never moved.

The cluster layer's contract (DESIGN §14) is the differential suite's
contract one level up: live migration — fence, journal replay against
the destination card, re-mmap, retarget — must be invisible to the
guest by anything except time.  Every operation in the
:mod:`repro.vphi.ops` registry is exercised by a *scenario* (the same
observable-tuple idiom as ``tests/vphi/test_differential_native.py``)
run in three tranches against one VM:

* **pre**  — before the migration is even scheduled;
* **mid**  — issued while the VM is fenced (the ops park at the session
  gate and complete after replay on the destination);
* **post** — after the migration completed.

The full three-tranche walk runs twice per (topology, dispatch-mode)
cell — once with a live migration between the tranches, once without —
and every scenario's observables must match the never-migrated run
byte for byte.  A *persistent* session (endpoint + registered window +
scif_mmap created at setup) is additionally exercised in every tranche
with self-contained RMA rounds, pinning the replayed-state path: the
window a round writes is the window its readback and its mmap probe
see, on whichever card the VM lives by then.

Topologies cover both migration paths: ``intra`` (1 host x 2 cards:
arbiter hand-off, same backend) and ``inter`` (2 hosts x 1 card: full
backend rebuild + RAM pre-copy over the inter-host fabric).  Peers are
spawned symmetrically on every card at the same ports with the same
fills, so the destination presents identical remote state — the
restartable-daemon pattern the churn ablation (A13) established.

Structural coverage is enforced exactly like the native differential
suite: a parametrized test fails for any registry op no scenario
claims, so new ops cannot ship without migration conformance.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mem import PAGE_SIZE
from repro.scif import MapFlag, PollEvent, ScifError
from repro.scif.errors import ECONNRESET, ENOTCONN
from repro.vphi import VPhiConfig, VPhiOp, registered_ops

KB = 1 << 10
MB = 1 << 20
#: small guest RAM keeps the inter-host pre-copy short; it is live
#: (outside the downtime window) either way.
RAM = 64 * MB
PORT_BASE = 5100
#: port space per tranche; each scenario gets an 8-port slot inside it.
TRANCHE_STRIDE = 128
PERSIST_PORT = PORT_BASE - 16
PERSIST_WIN = 2 * PAGE_SIZE
FIXED_ROFF = 0x40000
TRANCHES = ("pre", "mid", "post")

TOPOLOGIES = {
    "intra": dict(hosts=1, cards_per_host=2),
    "inter": dict(hosts=2, cards_per_host=1),
}
MODES = {
    "blocking": lambda: VPhiConfig(recovery_policy="queue"),
    "pooled": lambda: VPhiConfig(backend_workers=4, recovery_policy="queue"),
}


# ----------------------------------------------------------------------
# the environment one scenario body runs against
# ----------------------------------------------------------------------


class Env:
    """The guest stack under test plus symmetric-peer spawners."""

    def __init__(self, cluster, vm):
        self.cluster = cluster
        self.vm = vm
        self.proc = vm.guest_process("mig-client")
        self.lib = vm.vphi.libscif(self.proc)
        #: the peer node id, captured at the *original* placement.  Node
        #: ids are per-machine (host = 0, cards 1..M), so with peers on
        #: every card the same number resolves to identical remote state
        #: wherever the VM lives.
        self.node = cluster.node_of(cluster.placement_of(vm.name))

    @property
    def sim(self):
        return self.cluster.sim

    def ep_state(self, ep) -> str:
        """The backing endpoint's state through the *current* backend
        (a migrated VM's table is the destination backend's)."""
        bep = self.vm.vphi.backend.endpoints.get(ep.handle)
        return "closed" if bep is None else bep.state.value

    def sysfs_read(self, path: str):
        result, _ = yield from self.vm.vphi.frontend.submit(
            VPhiOp.SYSFS_READ, args={"path": path}
        )
        return result

    # -- symmetric peers ------------------------------------------------

    def echo_servers(self, port, nbytes):
        """One accept-forever echo peer per card: recv ``nbytes``, send
        them reversed, one exchange per connection."""
        for ref in self.cluster.cards:
            machine = self.cluster.machine(ref)
            slib = machine.scif(
                machine.card_process(f"echo{port}-{ref}", card=ref.card))

            def handler(conn, slib=slib):
                try:
                    data = yield from slib.recv(conn, nbytes)
                    yield from slib.send(conn, data.tobytes()[::-1])
                except (ECONNRESET, ENOTCONN):
                    pass

            def server(slib=slib, machine=machine, ref=ref):
                ep = yield from slib.open()
                yield from slib.bind(ep, port)
                yield from slib.listen(ep)
                n = 0
                while True:
                    conn, _ = yield from slib.accept(ep)
                    machine.sim.spawn(
                        handler(conn), name=f"echo{port}-{ref}-{n}")
                    n += 1

            machine.sim.spawn(server(), name=f"echo{port}-{ref}")

    def window_servers(self, port, size, fill):
        """One accept-forever window peer per card, registered at the
        same fixed offset with the same fill: a replayed session finds
        identical remote state on the destination.  Protocol per
        connection: send ``b"r"`` once registered, then answer ``b"s"``
        with the window checksum until ``b"q"`` (or a reset)."""
        for ref in self.cluster.cards:
            machine = self.cluster.machine(ref)
            sproc = machine.card_process(f"win{port}-{ref}", card=ref.card)
            slib = machine.scif(sproc)

            def handler(conn, vma, slib=slib, sproc=sproc):
                try:
                    yield from slib.register(
                        conn, vma.start, size,
                        offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
                    )
                    yield from slib.send(conn, b"r")
                    while True:
                        cmd = yield from slib.recv(conn, 1)
                        if cmd.tobytes() != b"s":
                            return
                        csum = int(
                            sproc.address_space.read(vma.start, size).sum())
                        yield from slib.send(conn, np.int64(csum).tobytes())
                except (ECONNRESET, ENOTCONN):
                    pass

            def server(slib=slib, sproc=sproc, machine=machine, ref=ref):
                ep = yield from slib.open()
                yield from slib.bind(ep, port)
                yield from slib.listen(ep)
                vma = sproc.address_space.mmap(size, populate=True)
                sproc.address_space.write(
                    vma.start, np.full(size, fill, dtype=np.uint8))
                n = 0
                while True:
                    conn, _ = yield from slib.accept(ep)
                    machine.sim.spawn(
                        handler(conn, vma), name=f"win{port}-{ref}-{n}")
                    n += 1

            machine.sim.spawn(server(), name=f"win{port}-{ref}")

    def dial_all(self, port):
        """One card-side dialer per machine toward the guest's listener
        (host node 0 of that machine).  Only the machine actually
        hosting the VM's backend has a listener; the others' dials are
        refused and swallowed."""
        for host, machine in enumerate(self.cluster.machines):
            dlib = machine.scif(
                machine.card_process(f"dial{port}-h{host}", card=0))

            def dialer(dlib=dlib):
                ep = yield from dlib.open()
                try:
                    yield from dlib.connect(ep, (0, port))
                except ScifError:
                    return
                yield from dlib.recv(ep, 2)

            machine.sim.spawn(dialer(), name=f"dial{port}-h{host}")

    def checksum(self, ep):
        yield from self.lib.send(ep, b"s")
        raw = yield from self.lib.recv(ep, 8)
        return int(np.frombuffer(raw.tobytes(), dtype=np.int64)[0])


# ----------------------------------------------------------------------
# scenario registry: name -> (ops covered, client body)
# ----------------------------------------------------------------------

SCENARIOS: dict = {}


def scenario(*ops):
    """Declare which registry ops a scenario's observables conform."""

    def wrap(fn):
        SCENARIOS[fn.__name__] = (frozenset(ops), fn)
        return fn

    return wrap


@scenario(VPhiOp.OPEN, VPhiOp.BIND, VPhiOp.LISTEN, VPhiOp.ACCEPT,
          VPhiOp.CLOSE)
def conn_lifecycle(env, base):
    """Server-side lifecycle on the guest: a migrated VM's listener
    lives wherever its backend does, and the dialer still reaches it."""
    obs = []
    ep = yield from env.lib.open()
    obs.append(env.ep_state(ep))
    port = yield from env.lib.bind(ep, base)
    obs.append((port, env.ep_state(ep)))
    yield from env.lib.listen(ep)
    obs.append(env.ep_state(ep))
    env.dial_all(base)
    conn, peer = yield from env.lib.accept(ep)
    obs.append((peer[0], env.ep_state(conn)))
    yield from env.lib.send(conn, b"ok")
    yield from env.lib.close(conn)
    yield from env.lib.close(ep)
    obs.append((env.ep_state(conn), env.ep_state(ep)))
    return tuple(obs)


@scenario(VPhiOp.OPEN, VPhiOp.CONNECT, VPhiOp.SEND, VPhiOp.RECV,
          VPhiOp.CLOSE)
def connect_echo(env, base):
    """Active open + messaging, plus the refused-connect errno."""
    env.echo_servers(base, nbytes=8)
    obs = []
    dead = yield from env.lib.open()
    try:
        yield from env.lib.connect(dead, (env.node, base + 7))  # no listener
    except ScifError as e:
        obs.append(type(e).__name__)
    yield from env.lib.close(dead)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    n = yield from env.lib.send(ep, b"abcdefgh")
    echo = yield from env.lib.recv(ep, 8)
    obs.append((n, echo.tobytes()))
    yield from env.lib.close(ep)
    obs.append(env.ep_state(ep))
    return tuple(obs)


@scenario(VPhiOp.SEND, VPhiOp.RECV)
def zero_length_messaging(env, base):
    """Zero-byte send/recv complete with 0 and feed the peer nothing."""
    env.echo_servers(base, nbytes=4)
    obs = []
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    n0 = yield from env.lib.send(ep, b"")
    empty = yield from env.lib.recv(ep, 0)
    obs.append((n0, len(empty)))
    n = yield from env.lib.send(ep, b"wxyz")
    echo = yield from env.lib.recv(ep, 4)
    obs.append((n, echo.tobytes()))
    yield from env.lib.close(ep)
    return tuple(obs)


@scenario(VPhiOp.REGISTER, VPhiOp.UNREGISTER, VPhiOp.READFROM,
          VPhiOp.WRITETO, VPhiOp.FENCE_MARK, VPhiOp.FENCE_WAIT)
def rma_window(env, base):
    """Window-to-window RMA both directions, fenced, then unregistered."""
    size = 16 * KB
    env.window_servers(base, size, fill=0x5A)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    ready = yield from env.lib.recv(ep, 1)
    vma = env.proc.address_space.mmap(size, populate=True)
    loff = yield from env.lib.register(ep, vma.start, size)
    n_read = yield from env.lib.readfrom(ep, loff, size, FIXED_ROFF)
    pulled = int(env.proc.address_space.read(vma.start, size).sum())
    env.proc.address_space.write(
        vma.start, np.full(size, 0xA5, dtype=np.uint8))
    n_write = yield from env.lib.writeto(ep, loff, size, FIXED_ROFF)
    mark = yield from env.lib.fence_mark(ep)
    yield from env.lib.fence_wait(ep, mark)
    remote = yield from env.checksum(ep)
    yield from env.lib.unregister(ep, loff)
    yield from env.lib.send(ep, b"q")
    yield from env.lib.close(ep)
    return (ready.tobytes(), n_read, pulled, n_write, mark, remote)


@scenario(VPhiOp.VREADFROM, VPhiOp.VWRITETO)
def vrma_roundtrip(env, base):
    """Virtual-address RMA: the driver-pinned (vPHI: bounced) path."""
    size = 16 * KB
    env.window_servers(base, size, fill=0x3C)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    yield from env.lib.recv(ep, 1)
    vma = env.proc.address_space.mmap(size, populate=True)
    n_read = yield from env.lib.vreadfrom(ep, vma.start, size, FIXED_ROFF)
    pulled = int(env.proc.address_space.read(vma.start, size).sum())
    env.proc.address_space.write(
        vma.start, np.full(size, 0xC3, dtype=np.uint8))
    n_write = yield from env.lib.vwriteto(ep, vma.start, size, FIXED_ROFF)
    remote = yield from env.checksum(ep)
    yield from env.lib.send(ep, b"q")
    yield from env.lib.close(ep)
    return (n_read, pulled, n_write, remote)


@scenario(VPhiOp.MMAP)
def mmap_window(env, base):
    """scif_mmap: plain loads/stores reach whichever card is current."""
    size = 2 * PAGE_SIZE
    env.window_servers(base, size, fill=0xAB)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    yield from env.lib.recv(ep, 1)
    vma = yield from env.lib.mmap(ep, FIXED_ROFF, size)
    loaded = env.proc.address_space.read(vma.start + 17, 16).tobytes()
    env.proc.address_space.write(vma.start + 64, b"conformance!")
    remote = yield from env.checksum(ep)
    yield from env.lib.send(ep, b"q")
    return (loaded, remote)


@scenario(VPhiOp.FENCE_SIGNAL)
def fence_signal_flag(env, base):
    """The RDMA-completion-flag idiom survives relocation."""
    size = 2 * PAGE_SIZE
    env.window_servers(base, size, fill=0x00)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    yield from env.lib.recv(ep, 1)
    vma = env.proc.address_space.mmap(size, populate=True)
    env.proc.address_space.write(
        vma.start, np.full(size, 0x11, dtype=np.uint8))
    loff = yield from env.lib.register(ep, vma.start, size)
    yield from env.lib.writeto(ep, loff, size - PAGE_SIZE, FIXED_ROFF)
    yield from env.lib.fence_signal(
        ep, loff, 0x1234, FIXED_ROFF + size - 8, 0x5678)
    local_flag = int(np.frombuffer(
        env.proc.address_space.read(vma.start, 8).tobytes(), dtype=np.int64
    )[0])
    remote = yield from env.checksum(ep)
    yield from env.lib.send(ep, b"q")
    return (local_flag, remote)


@scenario(VPhiOp.POLL)
def poll_readiness(env, base):
    """poll readiness transitions: writable, then readable on arrival."""
    env.echo_servers(base, nbytes=4)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, base))
    before = yield from env.lib.poll(
        [(ep, PollEvent.SCIF_POLLIN | PollEvent.SCIF_POLLOUT)], timeout=0)
    yield from env.lib.send(ep, b"ping")
    after = yield from env.lib.poll(
        [(ep, PollEvent.SCIF_POLLIN)], timeout=None)
    data = yield from env.lib.recv(ep, 4)
    yield from env.lib.close(ep)
    return (int(before[0]), int(after[0]), data.tobytes())


@scenario(VPhiOp.GET_NODE_IDS)
def node_enumeration(env, base):
    """Symmetric topologies enumerate identically from either host."""
    ids, own = yield from env.lib.get_node_ids()
    return (tuple(ids), own)


@scenario(VPhiOp.SYSFS_READ)
def sysfs_attributes(env, base):
    """The mirrored mic sysfs answers identically after a rebuild."""
    out = []
    for attr in ("family", "version", "state"):
        val = yield from env.sysfs_read(f"sys/class/mic/mic0/{attr}")
        out.append(val)
    return tuple(out)


# ----------------------------------------------------------------------
# the persistent session: state that must *survive* the migration
# ----------------------------------------------------------------------


def persist_setup(env):
    """Full session — endpoint, registered window, scif_mmap — created
    once, before any migration; its journal is what replay rebuilds."""
    env.window_servers(PERSIST_PORT, PERSIST_WIN, fill=0x77)
    ep = yield from env.lib.open()
    yield from env.lib.connect(ep, (env.node, PERSIST_PORT))
    ready = yield from env.lib.recv(ep, 1)
    vma = env.proc.address_space.mmap(PERSIST_WIN, populate=True)
    loff = yield from env.lib.register(ep, vma.start, PERSIST_WIN)
    mvma = yield from env.lib.mmap(ep, FIXED_ROFF, PERSIST_WIN)
    return {"ep": ep, "vma": vma, "loff": loff, "mvma": mvma,
            "ready": ready.tobytes()}


def persist_round(env, p, tag):
    """One self-contained RMA round: write a pattern, read it back,
    probe it through the mmap.  Migration-safe by construction — each
    op parks at the gate or completes, nothing straddles the fence."""
    space = env.proc.address_space
    pattern = np.full(PERSIST_WIN, tag, dtype=np.uint8)
    space.write(p["vma"].start, pattern)
    yield from env.lib.writeto(p["ep"], p["loff"], PERSIST_WIN, FIXED_ROFF)
    space.write(p["vma"].start, np.zeros(PERSIST_WIN, dtype=np.uint8))
    yield from env.lib.readfrom(p["ep"], p["loff"], PERSIST_WIN, FIXED_ROFF)
    got = space.read(p["vma"].start, PERSIST_WIN)
    probe = int(space.read(p["mvma"].start + 5, 1)[0])
    return (bool((got == pattern).all()), probe)


# ----------------------------------------------------------------------
# harness: one cluster run walks every scenario through all tranches
# ----------------------------------------------------------------------

_memo: dict = {}


def run_cluster(topology: str, mode: str, migrated: bool):
    """The three-tranche walk; memoized per cell so each baseline and
    each migrated run is computed once."""
    key = (topology, mode, migrated)
    if key in _memo:
        return _memo[key]
    cluster = Cluster(**TOPOLOGIES[topology]).boot()
    vm = cluster.create_vm("vm0", ram_bytes=RAM, vphi_config=MODES[mode]())
    src = cluster.placement_of("vm0")
    dest = next(ref for ref in cluster.cards if ref != src)
    env = Env(cluster, vm)
    names = sorted(SCENARIOS)
    obs: dict = {}
    out = {"cluster": cluster, "vm": vm, "report": None}

    def tranche(t_idx, label):
        for slot, name in enumerate(names):
            _, fn = SCENARIOS[name]
            base = PORT_BASE + t_idx * TRANCHE_STRIDE + slot * 8
            obs[(label, name)] = yield from fn(env, base)

    def driver():
        p = yield from persist_setup(env)
        obs[("setup", "persist")] = p.pop("ready")
        yield from tranche(0, "pre")
        obs[("pre", "persist")] = yield from persist_round(env, p, 0x21)
        mover = None
        if migrated:
            mover = cluster.sim.spawn(
                cluster.migrate("vm0", dest), name="mover")
            # let the fence rise (pre-copy is live) so the mid tranche
            # is issued against a *gated* session and parks.
            ses = vm.vphi.frontend.session
            while ses.state == "active":
                yield cluster.sim.timeout(20e-6)
        obs[("mid", "persist")] = yield from persist_round(env, p, 0x22)
        yield from tranche(1, "mid")
        if mover is not None:
            yield mover
            out["report"] = mover.value
        obs[("post", "persist")] = yield from persist_round(env, p, 0x23)
        yield from tranche(2, "post")
        return True

    drv = vm.spawn_guest(driver())
    cluster.run()
    assert drv.value is True, "conformance walk did not run to completion"
    _memo[key] = (obs, out)
    return obs, out


# ----------------------------------------------------------------------
# the differential tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("name", sorted(SCENARIOS) + ["persist"])
def test_migrated_walk_matches_never_migrated(topology, mode, name):
    """Every scenario's observables, in every tranche, are byte-equal
    to the same walk on a VM that never migrated."""
    baseline, _ = run_cluster(topology, mode, migrated=False)
    moved, _ = run_cluster(topology, mode, migrated=True)
    tranches = TRANCHES + (("setup",) if name == "persist" else ())
    for label in tranches:
        key = (label, name)
        assert moved[key] == baseline[key], (
            f"{name} diverged in the {label!r} tranche after migration: "
            f"{moved[key]!r} != {baseline[key]!r}"
        )


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_migration_run_is_clean(topology, mode):
    """The migrated walk really migrated — and leaked nothing."""
    _, out = run_cluster(topology, mode, migrated=True)
    report = out["report"]
    assert report is not None and not report.broken
    # the persistent session alone journals open+connect+register+mmap
    assert report.replayed_ops >= 4
    assert report.downtime > 0
    assert report.cross_host == (topology == "inter")
    vm = out["vm"]
    assert vm.vphi.frontend.session.state == "active"
    assert not vm.vphi.frontend._inflight, "stranded in-flight tags"
    for machine in out["cluster"].machines:
        for arb in machine.card_arbiters.values():
            assert arb.free == arb.slots, f"{arb.name} leaked credits"


@pytest.mark.parametrize(
    "op", [s.op for s in registered_ops()], ids=lambda op: op.value
)
def test_every_registry_op_walks_through_migration(op):
    """Structural coverage: an op nobody's scenario claims fails here —
    migration conformance cannot silently rot as ops are added."""
    covered = frozenset().union(*(ops for ops, _ in SCENARIOS.values()))
    assert op in covered, (
        f"registry op {op.value!r} has no migration-conformance scenario; "
        f"add one (or extend an existing scenario's @scenario(...) claim)"
    )
