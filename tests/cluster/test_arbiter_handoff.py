"""Arbiter hand-off across migration: no ghost slots, no stale clocks.

The latent bug this file pins down: live migration used to leave the
source :class:`~repro.vphi.pool.CardArbiter` holding the departed VM's
scheduling state — a ghost slot in the round-robin order and, under
wfq, a frozen virtual-finish tag the VM would pick back up if it ever
migrated home (an instant, unearned head start or penalty).  The fix is
``CardArbiter.deregister``: the source forgets the tenant entirely and
the destination meets it as brand new.

Unit tests drive the deregister contract directly; the cluster-level
regression migrates a wfq tenant off a contended card and back again,
asserting the home arbiter re-learns it from scratch.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, live_migrate
from repro.mem import PAGE_SIZE
from repro.scif import MapFlag
from repro.sim import SimError, Simulator
from repro.vphi import VPhiConfig
from repro.vphi.pool import CardArbiter

PORT = 6200
WIN = 4 * PAGE_SIZE
FIXED_ROFF = 0x40000


# ----------------------------------------------------------------------
# CardArbiter.deregister unit contract
# ----------------------------------------------------------------------


def test_deregister_unknown_tenant_is_idempotent():
    arb = CardArbiter(Simulator(), slots=2)
    assert arb.deregister("ghost") is False
    arb.configure("a")
    assert arb.deregister("a") is True
    assert arb.deregister("a") is False


def test_deregister_refuses_tenant_with_pending_acquires():
    """A queued waiter means the caller skipped the quiesce drain."""
    arb = CardArbiter(Simulator(), slots=1)
    granted = arb.acquire("a")
    assert granted.triggered
    waiting = arb.acquire("b")
    assert not waiting.triggered
    with pytest.raises(SimError):
        arb.deregister("b")
    arb.release("a")
    assert waiting.triggered


def test_deregister_reanchors_the_rotor():
    """Dropping the VM the rotor points at re-anchors to its
    predecessor, so the scan resumes exactly where it would have."""
    arb = CardArbiter(Simulator(), slots=1)
    for vm in ("a", "b", "c"):
        arb.configure(vm)
    arb.acquire("a")
    arb.release("a")
    arb.acquire("b")          # rotor now on "b", slot held by "b"
    arb.release("b")
    assert arb._last == "b"
    assert arb.deregister("b") is True
    assert arb._last == "a"
    assert arb._order == ["a", "c"]
    # behavioral: with the slot held and both survivors queued, the
    # freed slot goes to "c" — the scan resumed after "a".
    arb.acquire("a")          # rotor back on "a", slot held
    wa = arb.acquire("a")
    wc = arb.acquire("c")
    arb.release("a")
    assert wc.triggered and not wa.triggered
    arb.release("c")
    assert wa.triggered
    arb.release("a")
    assert arb.free == arb.slots


def test_deregister_closes_the_priority_class_gap():
    """Per-class rr cursors index into ``_order``; dropping an earlier
    tenant must shift them left or the class rotation skews."""
    arb = CardArbiter(Simulator(), slots=1, policy="priority")
    for vm in ("a", "b", "c"):
        arb.configure(vm, priority=0)
    arb.acquire("a")
    wb = arb.acquire("b")
    wc = arb.acquire("c")
    arb.release("a")          # class rr grants "b"; cursor past it
    assert wb.triggered and not wc.triggered
    cursor = arb._class_next[0]
    assert arb.deregister("a") is True
    assert arb._class_next[0] == cursor - 1
    arb.release("b")          # the shifted cursor still finds "c" next
    assert wc.triggered
    arb.release("c")
    assert arb.free == arb.slots


def test_deregister_drops_wfq_clock_state():
    arb = CardArbiter(Simulator(), slots=1, policy="wfq")
    arb.configure("gold", weight=2.0)
    arb.configure("best", weight=1.0)
    arb.acquire("gold")
    arb.release("gold")
    assert "gold" in arb._finish
    assert arb.deregister("gold") is True
    for table in (arb._queues, arb._weights, arb._finish,
                  arb._backlog_start):
        assert "gold" not in table
    assert "gold" not in arb._order
    # re-registration meets a brand-new tenant: no inherited tags
    arb.configure("gold", weight=2.0)
    assert "gold" not in arb._finish
    assert arb._order.count("gold") == 1


# ----------------------------------------------------------------------
# the cluster-level regression: migrate away, migrate home
# ----------------------------------------------------------------------


def _window_server(cluster, ref, port):
    machine = cluster.machine(ref)
    sproc = machine.card_process(f"arb-srv-{ref}", card=ref.card)
    slib = machine.scif(sproc)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(WIN, populate=True)
        while True:
            conn, _ = yield from slib.accept(ep)
            yield from slib.register(
                conn, vma.start, WIN,
                offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
            )

    machine.sim.spawn(server(), name=f"arb-srv-{ref}")


def test_migrated_vm_carries_no_stale_wfq_state_home():
    """Round trip h0c0 -> h0c1 -> h0c0 under wfq contention: the source
    forgets the tenant on departure, the home card re-learns it fresh,
    and every credit comes back."""
    cluster = Cluster(hosts=1, cards_per_host=2).boot()
    home = cluster.cards[0]
    away = cluster.cards[1]
    for ref in cluster.cards:
        _window_server(cluster, ref, PORT)
    # both tenants pooled + wfq on the *same* card, so the gold tenant
    # accrues real virtual-finish state before it moves
    config = dict(backend_workers=2, recovery_policy="queue")
    gold = cluster.create_vm(
        "gold", ram_bytes=64 << 20, placement=home, arbiter_policy="wfq",
        vphi_config=VPhiConfig(qos_share=2.0, **config))
    cluster.create_vm(
        "stay", ram_bytes=64 << 20, placement=home, arbiter_policy="wfq",
        vphi_config=VPhiConfig(qos_share=1.0, **config))
    home_arb = cluster.machine(home).arbiter_for(home.card)
    away_arb = cluster.machine(away).arbiter_for(away.card)
    snapshots = {}
    done = {}

    def tenant(vm, idx):
        gproc = vm.guest_process("arb-tenant")
        glib = vm.vphi.libscif(gproc)
        sim = cluster.sim

        def body():
            node = cluster.node_of(home)
            ep = yield from glib.open()
            yield from glib.connect(ep, (node, PORT))
            vma = gproc.address_space.mmap(PAGE_SIZE, populate=True)
            gproc.address_space.write(
                vma.start, np.full(PAGE_SIZE, 0x40 + idx, dtype=np.uint8))
            loff = yield from glib.register(ep, vma.start, PAGE_SIZE)
            for _ in range(24):
                yield from glib.writeto(
                    ep, loff, PAGE_SIZE, FIXED_ROFF + idx * PAGE_SIZE)
                yield sim.timeout(0.2e-3)
            done[vm.name] = True

        return vm.spawn_guest(body())

    tenant(gold, 0)
    tenant(cluster.vms["stay"], 1)

    def director():
        yield cluster.sim.timeout(2e-3)      # both tenants contended
        assert "gold" in home_arb._finish, "no contention before the move"
        yield from live_migrate(cluster, gold, away)
        snapshots["src_forgot"] = all(
            "gold" not in table
            for table in (home_arb._queues, home_arb._finish,
                          home_arb._weights, home_arb._backlog_start))
        snapshots["src_order"] = "gold" not in home_arb._order
        snapshots["dest_weight"] = away_arb.weight_of("gold")
        yield cluster.sim.timeout(2e-3)      # accrue state on the away card
        yield from live_migrate(cluster, gold, home)
        snapshots["away_forgot"] = "gold" not in away_arb._finish
        snapshots["home_order_count"] = home_arb._order.count("gold")

    cluster.sim.spawn(director(), name="director")
    cluster.run(until=0.5)

    assert done == {"gold": True, "stay": True}, "a tenant deadlocked"
    assert snapshots["src_forgot"] and snapshots["src_order"], (
        "source arbiter kept the migrated VM's scheduling state")
    assert snapshots["dest_weight"] == 2.0, (
        "destination arbiter lost the VM's wfq share")
    assert snapshots["away_forgot"], (
        "round-trip left a stale finish tag on the away card")
    assert snapshots["home_order_count"] == 1, (
        "home arbiter double-registered the returning VM")
    for arb in (home_arb, away_arb):
        assert arb.free == arb.slots, f"{arb.name} leaked credits"
    assert len(cluster.migrations) == 2
    assert all(not r.broken for r in cluster.migrations)
