"""Host power budgets constrain placement (and pepc caps free headroom)."""

from repro.cluster import CardRef, Cluster
from repro.phi import Scope

TDP = 300.0  # the 3120P's SKU TDP


def powered_cluster(budget=None, **kw):
    return Cluster(hosts=2, cards_per_host=2, power_model="knc",
                   host_power_budget=budget, **kw).boot()


class TestPowerBudget:
    def test_budget_spreads_across_hosts(self):
        """One 300 W card fills a 300 W host: the second VM must land on
        the other host even though spread would pick the same host."""
        cluster = powered_cluster(budget=TDP)
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        assert cluster.placements["vm0"] == CardRef(0, 0)
        assert cluster.placements["vm1"] == CardRef(1, 0)

    def test_full_hosts_stack_onto_powered_cards(self):
        """Both hosts at their envelope: the next VM shares an
        already-powered card (no extra claim) instead of energizing a
        fresh one over budget."""
        cluster = powered_cluster(budget=TDP)
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        cluster.create_vm("vm2")
        assert cluster.placements["vm2"] == CardRef(0, 0)

    def test_infeasible_everywhere_oversubscribes(self):
        """A budget below any single card's claim can never be met: the
        VM is placed anyway (least-loaded), mirroring the pack-capacity
        oversubscribe-rather-than-refuse fallback."""
        cluster = powered_cluster(budget=TDP / 2)
        cluster.create_vm("vm0")
        assert cluster.placements["vm0"] == CardRef(0, 0)

    def test_pepc_cap_frees_placement_headroom(self):
        """Capping the cards halves their power claim, so two fit under
        the same budget on one host — placement and the throttle loop
        argue about the same watts."""
        cluster = powered_cluster(budget=TDP)
        cluster.pepc().set_tdp(TDP / 2, Scope.everything())
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        assert cluster.placements["vm0"] == CardRef(0, 0)
        assert cluster.placements["vm1"] == CardRef(0, 1)

    def test_no_budget_is_unconstrained(self):
        cluster = powered_cluster(budget=None)
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        assert cluster.placements["vm1"].host == 0  # plain spread

    def test_card_watts_tracks_the_live_cap(self):
        cluster = powered_cluster(budget=TDP)
        ref = CardRef(0, 0)
        assert cluster.scheduler.card_watts(ref) == TDP
        cluster.pepc().set_tdp(180.0, Scope.one_card(0, host=0))
        assert cluster.scheduler.card_watts(ref) == 180.0

    def test_unpowered_cluster_claims_sku_tdp(self):
        cluster = Cluster(hosts=1, cards_per_host=2,
                          host_power_budget=2 * TDP).boot()
        assert cluster.scheduler.card_watts(CardRef(0, 0)) == TDP
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        assert cluster.placements["vm1"] == CardRef(0, 1)


class TestMigrationKeepsBudgets:
    def test_pick_dest_respects_the_budget(self):
        cluster = powered_cluster(budget=TDP)
        cluster.create_vm("vm0")
        cluster.create_vm("vm1")
        dest = cluster.scheduler.pick_dest(
            "vm0", exclude=(cluster.placements["vm0"],))
        # powering up a fresh card would blow either host's envelope;
        # the one feasible destination is the card already claiming its
        # host's watts (vm1's) — consolidation is free, power-wise
        assert dest == CardRef(1, 0)
