"""FaultPlan / FaultInjector unit tests: triggers, cadence, determinism."""

import pytest

from repro.faults import (
    ENODEV,
    NO_FAULTS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSite,
    FaultSpec,
    is_transient,
)
from repro.scif.errors import ECONNRESET, EINVAL, ENXIO, ETIMEDOUT
from repro.sim import SimError, Simulator


def draw_n(injector, n, site=FaultSite.BACKEND_DISPATCH, **kw):
    """n draws at one site; returns the 0-based indexes that fired."""
    fired = []
    for i in range(n):
        if injector.draw(site, **kw) is not None:
            fired.append(i)
    return fired


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimError):
            FaultSpec(kind="meteor_strike")

    def test_zero_cadence_rejected(self):
        with pytest.raises(SimError):
            FaultSpec(kind=FaultKind.SCIF_ERROR, every=0)

    def test_errno_must_be_scif_error(self):
        with pytest.raises(SimError):
            FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ValueError)

    def test_no_cadence_defaults_to_every_match(self):
        assert FaultSpec(kind=FaultKind.SCIF_ERROR).every == 1
        # a cap alone must not leave the spec inert
        assert FaultSpec(kind=FaultKind.SCIF_ERROR, max_fires=2).every == 1
        # explicit `at` indexes suppress the default
        assert FaultSpec(kind=FaultKind.SCIF_ERROR, at=(3,)).every is None

    def test_site_derived_from_kind(self):
        assert FaultSpec(kind=FaultKind.LINK_FLAP).site == FaultSite.FRONTEND_SUBMIT
        assert FaultSpec(kind=FaultKind.RING_CORRUPT).site == FaultSite.RING_POP
        assert (FaultSpec(kind=FaultKind.WORKER_DEATH).site
                == FaultSite.BACKEND_DISPATCH)

    def test_outage_default_and_override(self):
        assert FaultSpec(kind=FaultKind.LINK_FLAP).outage == pytest.approx(200e-6)
        assert FaultSpec(kind=FaultKind.LINK_FLAP, duration=1e-3).outage == 1e-3


class TestTransience:
    def test_transient_classes(self):
        for err in (ECONNRESET("x"), ENODEV("x"), ENXIO("x"), ETIMEDOUT("x")):
            assert is_transient(err)

    def test_caller_errors_are_not_transient(self):
        assert not is_transient(EINVAL("bad argument"))
        assert not is_transient(ValueError("not even scif"))


class TestCadence:
    def test_every_nth_match(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, every=3)),
            Simulator(),
        )
        assert draw_n(inj, 9) == [2, 5, 8]

    def test_at_indexes(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, at=(0, 4))),
            Simulator(),
        )
        assert draw_n(inj, 6) == [0, 4]

    def test_max_fires_caps(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, every=2, max_fires=2)),
            Simulator(),
        )
        assert draw_n(inj, 10) == [1, 3]

    def test_op_filter_only_counts_matching_draws(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, op="send", every=2)),
            Simulator(),
        )
        fired = []
        for i, op in enumerate(["send", "recv", "send", "send", "recv"]):
            if inj.draw(FaultSite.BACKEND_DISPATCH, op=op) is not None:
                fired.append(i)
        # 2nd *matching* draw is the 3rd overall
        assert fired == [2]

    def test_vm_filter(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, vm="vm1", every=1)),
            Simulator(),
        )
        assert inj.draw(FaultSite.BACKEND_DISPATCH, vm="vm2") is None
        assert inj.draw(FaultSite.BACKEND_DISPATCH, vm="vm1") is not None

    def test_time_window(self):
        sim = Simulator()
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, after=1.0, until=2.0)),
            sim,
        )
        assert inj.draw(FaultSite.BACKEND_DISPATCH) is None  # t=0: disarmed

        def advance(to):
            yield sim.timeout(to - sim.now)

        sim.spawn(advance(1.5))
        sim.run()
        assert inj.draw(FaultSite.BACKEND_DISPATCH) is not None
        sim.spawn(advance(2.5))
        sim.run()
        assert inj.draw(FaultSite.BACKEND_DISPATCH) is None  # window closed

    def test_wrong_site_never_matches(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, every=1)),
            Simulator(),
        )
        assert draw_n(inj, 3, site=FaultSite.RING_POP) == []

    def test_determinism_same_plan_same_fires(self):
        plan = FaultPlan.of(
            FaultSpec(kind=FaultKind.SCIF_ERROR, every=3),
            FaultSpec(kind=FaultKind.RING_CORRUPT, at=(1,)),
        )
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan, Simulator())
            fires = []
            for i in range(8):
                for site in (FaultSite.BACKEND_DISPATCH, FaultSite.RING_POP):
                    got = inj.draw(site, op="send", vm="vm0")
                    if got is not None:
                        fires.append((i, site, got.kind))
            runs.append(fires)
        assert runs[0] == runs[1] and runs[0]


class TestInjection:
    def test_make_error_types(self):
        sim = Simulator()
        plan = FaultPlan.of(
            FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ENODEV, max_fires=1),
            FaultSpec(kind=FaultKind.RING_CORRUPT, every=1),
            FaultSpec(kind=FaultKind.WORKER_DEATH, max_fires=1),
            FaultSpec(kind=FaultKind.CARD_RESET, every=1),
        )
        inj = FaultInjector(plan, sim)
        assert isinstance(
            inj.draw(FaultSite.BACKEND_DISPATCH).make_error(), ENODEV
        )
        assert isinstance(inj.draw(FaultSite.RING_POP).make_error(), ECONNRESET)
        # earlier armed specs win; once spent, later ones get their turn
        assert isinstance(
            inj.draw(FaultSite.BACKEND_DISPATCH).make_error(), ECONNRESET
        )
        assert isinstance(
            inj.draw(FaultSite.BACKEND_DISPATCH).make_error(), ENXIO
        )

    def test_link_flap_delivered_to_attached_links(self, machine):
        link = machine.devices[0].link
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.LINK_FLAP, every=1)),
            machine.sim,
        )
        inj.attach_link(link)
        assert link.flaps == 0
        got = inj.draw(FaultSite.FRONTEND_SUBMIT, op="send", vm="vm0")
        assert got is not None and got.kind == FaultKind.LINK_FLAP
        assert link.flaps == 1

    def test_log_and_fires_of(self):
        inj = FaultInjector(
            FaultPlan.of(FaultSpec(kind=FaultKind.SCIF_ERROR, every=2)),
            Simulator(),
        )
        draw_n(inj, 6)
        assert inj.injected == 3
        assert inj.fires_of(FaultKind.SCIF_ERROR) == 3
        assert inj.fires_of(FaultKind.CARD_RESET) == 0
        assert [i.seq for i in inj.log] == [0, 1, 2]

    def test_empty_plan_is_inert(self):
        assert not NO_FAULTS.active
        assert NO_FAULTS.draw(FaultSite.BACKEND_DISPATCH, op="send") is None

    def test_plan_filtered(self):
        plan = FaultPlan.of(
            FaultSpec(kind=FaultKind.LINK_FLAP),
            FaultSpec(kind=FaultKind.SCIF_ERROR),
        )
        sub = plan.filtered([FaultKind.LINK_FLAP])
        assert [s.kind for s in sub] == [FaultKind.LINK_FLAP]
        assert bool(FaultPlan.none()) is False and bool(plan) is True
