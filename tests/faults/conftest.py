"""Fault-injection test fixtures."""

import pytest

from repro import Machine


@pytest.fixture
def machine():
    return Machine(cards=1).boot()
