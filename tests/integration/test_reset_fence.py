"""Card reset/reboot lifecycle + scif_fence_signal end to end."""

import numpy as np
import pytest

from repro import Machine
from repro.phi import DeviceState
from repro.scif import ECONNREFUSED, ScifError

MB = 1 << 20
PORT = 9100


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


class TestResetLifecycle:
    def test_reboot_restores_service(self, machine):
        card_node = machine.card_node_id(0)

        def card_server(tag):
            slib = machine.scif(machine.card_process(f"srv-{tag}"))

            def server():
                ep = yield from slib.open()
                yield from slib.bind(ep, PORT)
                yield from slib.listen(ep)
                conn, _ = yield from slib.accept(ep)
                data = yield from slib.recv(conn, 4)
                yield from slib.send(conn, tag.encode())

            machine.sim.spawn(server())

        hlib = machine.scif(machine.host_process("client"))
        states = []

        def scenario():
            card_server("gen1")
            ep = yield from hlib.open()
            yield from hlib.connect(ep, (card_node, PORT))
            yield from hlib.send(ep, b"ping")
            r1 = yield from hlib.recv(ep, 4)
            # --- crash + reboot ---
            states.append(machine.devices[0].state)
            yield from machine.reboot_card(0)
            states.append(machine.devices[0].state)
            # old endpoint is dead
            dead = False
            try:
                yield from hlib.send(ep, b"ping")
            except ScifError:
                dead = True
            # connecting before a server re-registers is refused
            ep2 = yield from hlib.open()
            with pytest.raises(ECONNREFUSED):
                yield from hlib.connect(ep2, (card_node, PORT))
            # a fresh server generation works again
            card_server("gen2")
            yield machine.sim.timeout(1e-3)
            ep3 = yield from hlib.open()
            yield from hlib.connect(ep3, (card_node, PORT))
            yield from hlib.send(ep3, b"ping")
            r2 = yield from hlib.recv(ep3, 4)
            return r1.tobytes(), dead, r2.tobytes()

        p = machine.sim.spawn(scenario())
        machine.run()
        r1, dead, r2 = p.value
        assert r1 == b"gen1"
        assert dead
        assert r2 == b"gen2"
        assert states == [DeviceState.ONLINE, DeviceState.ONLINE]

    def test_sysfs_state_tracks_reset(self, machine):
        sysfs = machine.kernel.sysfs

        def scenario():
            assert sysfs.read("sys/class/mic/mic0/state") == "online"
            dev = machine.devices[0]
            yield from dev.reset(machine.fabric)
            assert sysfs.read("sys/class/mic/mic0/state") == "ready"
            yield from dev.boot()
            assert sysfs.read("sys/class/mic/mic0/state") == "online"
            return True

        p = machine.sim.spawn(scenario())
        machine.run()
        assert p.value is True


class TestFenceSignal:
    def _setup(self, machine, lib_ctx):
        """Card server with a data window; returns events with offsets."""
        sproc = machine.card_process("fsrv")
        slib = machine.scif(sproc)
        ready = machine.sim.event()

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(MB, populate=True)
            sproc.address_space.write(vma.start, np.full(MB, 0x2B, dtype=np.uint8))
            roff = yield from slib.register(conn, vma.start, MB)
            ready.succeed(roff)
            yield from slib.recv(conn, 1)

        machine.sim.spawn(server())
        return ready

    def test_fence_signal_writes_local_flag_after_rma(self, machine):
        """The RDMA+flag idiom: issue a read, fence_signal a local flag,
        poll the flag from 'another thread'."""
        ready = self._setup(machine, None)
        hproc = machine.host_process("client")
        hlib = machine.scif(hproc)

        def client():
            ep = yield from hlib.open()
            yield from hlib.connect(ep, (machine.card_node_id(0), PORT))
            roff = yield ready
            data_vma = hproc.address_space.mmap(MB, populate=True)
            flag_vma = hproc.address_space.mmap(4096, populate=True)
            flag_off = yield from hlib.register(ep, flag_vma.start, 4096)

            # concurrent RMA + fence_signal
            def rma_thread():
                yield from hlib.vreadfrom(ep, data_vma.start, MB, roff)

            machine.sim.spawn(rma_thread())
            yield machine.sim.timeout(20e-6)  # let the RMA get issued
            yield from hlib.fence_signal(ep, flag_off, 0xDEADBEEF, None, 0)
            flag = int.from_bytes(
                hproc.address_space.read(flag_vma.start, 8).tobytes(), "little"
            )
            data_ok = bool(
                (hproc.address_space.read(data_vma.start, 4096) == 0x2B).all()
            )
            yield from hlib.send(ep, b"x")
            return flag, data_ok

        p = machine.sim.spawn(client())
        machine.run()
        flag, data_ok = p.value
        assert flag == 0xDEADBEEF
        assert data_ok  # the fence ordered the flag after the data

    def test_fence_signal_remote_flag_from_guest(self, machine):
        """Through vPHI: the guest signals a remote (card-side) flag."""
        vm = machine.create_vm("vm0")
        sproc = machine.card_process("fsrv2")
        slib = machine.scif(sproc)
        ready = machine.sim.event()
        flag_loc = {}

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT + 1)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(MB, populate=True)
            roff = yield from slib.register(conn, vma.start, MB)
            flag_vma = sproc.address_space.mmap(4096, populate=True)
            foff = yield from slib.register(conn, flag_vma.start, 4096)
            flag_loc["vma"] = flag_vma
            ready.succeed((roff, foff))
            yield from slib.recv(conn, 1)

        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (machine.card_node_id(0), PORT + 1))
            roff, foff = yield ready
            vma = gproc.address_space.mmap(MB, populate=True)
            gproc.address_space.write(vma.start, np.full(MB, 0x6A, dtype=np.uint8))
            yield from glib.vwriteto(ep, vma.start, MB, roff)
            yield from glib.fence_signal(ep, None, 0, foff, 0xCAFE)
            yield from glib.send(ep, b"x")

        machine.sim.spawn(server())
        vm.spawn_guest(client())
        machine.run()
        flag = int.from_bytes(
            sproc.address_space.read(flag_loc["vma"].start, 8).tobytes(), "little"
        )
        assert flag == 0xCAFE
