"""Cross-stack integration: multi-card, mixed workloads, lifecycles."""

import numpy as np
import pytest

from repro import Machine
from repro.coi import start_coi_daemon
from repro.mpss import micnativeloadex
from repro.scif import ECONNREFUSED, ECONNRESET, ScifError
from repro.workloads import (
    ClientContext,
    DGEMM_BINARY,
    rma_read_throughput,
    sendrecv_latency,
)

MB = 1 << 20
PORT = 7000


def test_one_vm_drives_two_cards(two_cards=None):
    """A single guest talks to both coprocessors in the box."""
    machine = Machine(cards=2).boot()
    vm = machine.create_vm("vm0")
    glib = vm.vphi.libscif(vm.guest_process("app"))
    echoes = {}

    def card_server(card):
        slib = machine.scif(machine.card_process(f"srv{card}", card=card))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            data = yield from slib.recv(conn, 5)
            yield from slib.send(conn, f"mic{card}".encode())

        machine.sim.spawn(server())

    card_server(0)
    card_server(1)

    def client():
        for card in (0, 1):
            ep = yield from glib.open()
            yield from glib.connect(ep, (machine.card_node_id(card), PORT))
            yield from glib.send(ep, b"hello")
            resp = yield from glib.recv(ep, 4)
            echoes[card] = resp.tobytes()
            yield from glib.close(ep)

    vm.spawn_guest(client())
    machine.run()
    assert echoes == {0: b"mic0", 1: b"mic1"}


def test_mixed_concurrent_workloads():
    """dgemm launch from VM1 + RMA sweep from VM2 + native latency on the
    host, all interleaved on one card — nothing corrupts, all complete."""
    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")

    ctx1 = ClientContext.guest(vm1, "loader")
    dgemm_p = ctx1.spawn(
        micnativeloadex(machine, ctx1, DGEMM_BINARY, argv=["128", "112"])
    )
    # note: these run the sim inside, interleaving everything above
    rma = rma_read_throughput(machine, ClientContext.guest(vm2, "reader"), [8 * MB])
    lat = sendrecv_latency(machine, ClientContext.native(machine, "pinger"), [1])
    machine.run()

    res = dgemm_p.value
    assert res.status == 0
    assert res.exit_record["c_checksum"] == pytest.approx(res.exit_record["c_expected"])
    assert rma[0][1] > 1e9
    # native latency unchanged by the surrounding noise (control path is
    # not contended in this scenario)
    assert lat[0][1] == pytest.approx(7e-6, rel=0.05)


def test_guest_oom_propagates_cleanly():
    """A vreadfrom bigger than guest RAM fails with ENOMEM-ish error and
    leaks nothing."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm-small", ram_bytes=64 * MB)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(MB, populate=True)
        roff = yield from slib.register(conn, vma.start, MB)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(4 * MB, populate=True)
        # exhaust guest kernel memory: grab every last contiguous page
        from repro.mem import MemError

        hogs = []
        while True:
            try:
                hogs.append(vm.guest_kernel.kmalloc.kmalloc(4096, label="hog"))
            except MemError:
                break
        failed = False
        try:
            yield from glib.vreadfrom(ep, vma.start, MB, roff)
        except MemError:
            failed = True
        for h in hogs:
            vm.guest_kernel.kmalloc.kfree(h)
        # after freeing the hogs the same call succeeds
        yield from glib.vreadfrom(ep, vma.start, MB, roff)
        yield from glib.send(ep, b"x")
        return failed

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value is True
    assert vm.guest_kernel.kmalloc.live == 0


def test_registered_guest_pages_survive_swap_pressure():
    """§III's pinning rationale at the vPHI level: pages under a guest
    window refuse to swap, so a later card write lands in valid frames."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    goff_box = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        goff = yield goff_box
        svma = sproc.address_space.mmap(MB, populate=True)
        sproc.address_space.write(svma.start, np.full(MB, 0x3D, dtype=np.uint8))
        loff = yield from slib.register(conn, svma.start, MB)
        yield from slib.writeto(conn, loff, MB, goff)
        yield from slib.send(conn, b"done")

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        vma = gproc.address_space.mmap(MB)
        gproc.address_space.write(vma.start, np.zeros(MB, dtype=np.uint8))
        goff = yield from glib.register(ep, vma.start, MB)
        # guest memory pressure: the kernel tries to evict these pages
        evicted = sum(
            gproc.address_space.swap_out(vma.start + i * 4096) for i in range(256)
        )
        goff_box.succeed(goff)
        yield from glib.recv(ep, 4)
        data = gproc.address_space.read(vma.start, MB)
        return evicted, data

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    evicted, data = c.value
    assert evicted == 0  # every page pinned: kernel could evict none
    assert (data == 0x3D).all()  # the remote write landed intact


def test_card_reset_resets_connections():
    """Yanking the card mid-flight: host- and guest-side endpoints see
    connection resets; new connections are refused until reboot."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    glib = vm.vphi.libscif(vm.guest_process("app"))
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))
    connected = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        connected.succeed()
        try:
            yield from slib.recv(conn, 10)
        except ScifError:
            pass

    def crasher():
        yield connected
        yield machine.sim.timeout(1e-4)
        machine.fabric.node(card_node).reset()

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        with pytest.raises(ECONNRESET):
            yield from glib.recv(ep, 10)  # blocks until the reset hits
        # reconnect attempts are refused: the listener died in the reset
        ep2 = yield from glib.open()
        with pytest.raises(ECONNREFUSED):
            yield from glib.connect(ep2, (card_node, PORT))
        return True

    machine.sim.spawn(server())
    machine.sim.spawn(crasher())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value is True


def test_many_sequential_vm_sessions_leak_nothing():
    """Open/use/close loops across the ring must not leak guest kmalloc,
    descriptors, pins or host endpoints."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        while True:
            try:
                conn, _ = yield from slib.accept(ep)
            except ScifError:
                return
            machine.sim.spawn(echo(conn))

    def echo(conn):
        try:
            data = yield from slib.recv(conn, 8)
            yield from slib.send(conn, data)
        except ScifError:
            pass

    machine.sim.spawn(server())
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        for i in range(20):
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            yield from glib.send(ep, f"msg-{i:04d}".encode())
            resp = yield from glib.recv(ep, 8)
            assert resp.tobytes() == f"msg-{i:04d}".encode()
            yield from glib.close(ep)
        return True

    c = vm.spawn_guest(client())
    machine.run(until=machine.sim.now + 5.0)
    assert c.value is True
    assert vm.guest_kernel.kmalloc.live == 0
    assert vm.vphi.virtio.ring.num_free == vm.vphi.virtio.ring.size
    assert vm.vphi.backend.endpoints == {}
    assert gproc.address_space.pinned_pages() == 0
