"""Card-to-card (peer-to-peer) SCIF: RMA between two coprocessors."""

import numpy as np
import pytest

from repro import Machine

MB = 1 << 20
PORT = 9500


@pytest.fixture
def machine():
    return Machine(cards=2).boot()


def test_card_to_card_rma_moves_gddr_to_gddr(machine):
    """mic0 pulls a window from mic1: the bytes cross both PCIe links."""
    n1 = machine.card_node_id(0)
    n2 = machine.card_node_id(1)
    size = 8 * MB

    sproc = machine.card_process("srv", card=1)
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, 0x9C, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    cproc = machine.card_process("cli", card=0)
    clib = machine.scif(cproc)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (n2, PORT))
        roff = yield ready
        vma = cproc.address_space.mmap(size, populate=True)
        t0 = machine.sim.now
        yield from clib.vreadfrom(ep, vma.start, size, roff)
        dt = machine.sim.now - t0
        got = cproc.address_space.read(vma.start, 4096)
        yield from clib.send(ep, b"x")
        return size / dt, got

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    bw, got = c.value
    assert (got == 0x9C).all()
    # the data landed in mic0's GDDR, sourced from mic1's
    assert cproc.address_space.phys is machine.devices[0].gddr
    assert sproc.address_space.phys is machine.devices[1].gddr
    # P2P pays the doubled hop latency but still runs at DMA rate
    assert bw > 3e9


def test_p2p_control_latency_doubles(machine):
    """Small messages between cards cross two links: ~2x the host-card
    one-way latency at each hop."""
    n2 = machine.card_node_id(1)
    slib = machine.scif(machine.card_process("s", card=1))
    clib = machine.scif(machine.card_process("c", card=0))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (n2, PORT))
        t0 = machine.sim.now
        yield from clib.send(ep, b"\x01")
        return machine.sim.now - t0

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    # native host->card is 7us; card->card adds 2us per extra link
    # crossing on each of the two wire hops: 7 + 2*2 = 11us
    assert c.value == pytest.approx(11e-6, rel=0.05)
