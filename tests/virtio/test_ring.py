"""Vring mechanics: descriptor chains, avail/used, exhaustion, reuse."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import SimError
from repro.virtio import DescFlag, Vring


def test_ring_size_must_be_power_of_two():
    with pytest.raises(SimError):
        Vring(100)
    Vring(128)  # fine


def test_add_pop_roundtrip_preserves_chain():
    ring = Vring(8)
    head = ring.add_chain(
        out=[(0x1000, 64), (0x2000, 128)], inb=[(0x3000, 256)], header="req-1"
    )
    elem = ring.pop_avail()
    assert elem is not None
    assert elem.head == head
    assert elem.header == "req-1"
    assert [(d.addr, d.len) for d in elem.out] == [(0x1000, 64), (0x2000, 128)]
    assert [(d.addr, d.len) for d in elem.inb] == [(0x3000, 256)]
    assert all(d.flags & DescFlag.WRITE for d in elem.inb)
    assert not any(d.flags & DescFlag.WRITE for d in elem.out)


def test_used_flows_back_to_driver():
    ring = Vring(8)
    ring.add_chain(out=[(0x1000, 8)], inb=[], header={"op": "nop"})
    elem = ring.pop_avail()
    ring.push_used(elem, written=42)
    head, written, header = ring.get_used()
    assert written == 42
    assert header == {"op": "nop"}
    assert ring.get_used() is None


def test_descriptor_exhaustion():
    ring = Vring(4)
    ring.add_chain(out=[(0, 1), (0, 1)], inb=[])
    ring.add_chain(out=[(0, 1), (0, 1)], inb=[])
    with pytest.raises(SimError, match="full"):
        ring.add_chain(out=[(0, 1)], inb=[])


def test_descriptors_recycled_after_completion():
    ring = Vring(4)
    for _ in range(10):  # 10 rounds through a 4-entry ring
        ring.add_chain(out=[(0, 1)], inb=[(0, 1), (0, 1), (0, 1)])
        elem = ring.pop_avail()
        ring.push_used(elem)
        ring.get_used()
    assert ring.num_free == 4


def test_empty_chain_rejected():
    ring = Vring(4)
    with pytest.raises(SimError):
        ring.add_chain(out=[], inb=[])


def test_pop_on_empty_returns_none():
    ring = Vring(4)
    assert ring.pop_avail() is None


def test_fifo_ordering_of_avail():
    ring = Vring(16)
    heads = [ring.add_chain(out=[(i, 1)], inb=[], header=i) for i in range(5)]
    popped = [ring.pop_avail().header for _ in range(5)]
    assert popped == list(range(5))


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(1, 3), st.integers(0, 3)), min_size=1, max_size=40
    )
)
def test_ring_conservation_property(ops):
    """Property: descriptors are conserved through arbitrary submit/complete
    interleavings; free + in-flight == size always."""
    ring = Vring(32)
    submitted = 0
    completed = 0
    for n_out, n_in in ops:
        chain_len = n_out + n_in
        if chain_len == 0:
            continue
        if chain_len <= ring.num_free:
            ring.add_chain(
                out=[(i, 1) for i in range(n_out)],
                inb=[(i, 1) for i in range(n_in)],
                header=submitted,
            )
            submitted += 1
        # device processes everything available
        while True:
            elem = ring.pop_avail()
            if elem is None:
                break
            ring.push_used(elem)
        # driver reaps
        while ring.get_used() is not None:
            completed += 1
        assert ring.num_free + ring.in_flight == ring.size
    assert completed == submitted
    assert ring.num_free == ring.size
