"""SCIF registration + RMA: windows, readfrom/writeto, integrity, anchors."""

import numpy as np
import pytest

from repro.mem import Buffer, PAGE_SIZE
from repro.scif import EADDRINUSE, EINVAL, MapFlag, Prot, RmaFlag
from repro.sim import us

PORT = 2200
MB = 1 << 20


def rma_pair(machine, server_window_bytes, server_fill=0x5A, port=PORT):
    """Wire a host client to a card server that registers a window.

    Returns (client_driver(coroutine-factory), server_process).  The server
    registers ``server_window_bytes`` of card memory filled with
    ``server_fill`` and then parks; the client body receives
    ``(clib, ep, roffset)``.
    """
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    cproc = machine.host_process("client")
    clib = machine.scif(cproc)
    ready = machine.sim.event("server-ready")

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(server_window_bytes, populate=True, name="srv-buf")
        sproc.address_space.write(
            vma.start, np.full(server_window_bytes, server_fill, dtype=np.uint8)
        )
        roff = yield from slib.register(conn, vma.start, server_window_bytes)
        ready.succeed((conn, roff))
        return conn

    def client(body):
        def run():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, port))
            _, roff = yield ready
            result = yield from body(clib, cproc, ep, roff)
            return result

        return run

    machine.sim.spawn(server())
    return client


class TestRegistration:
    def test_register_requires_page_alignment(self, machine):
        client = rma_pair(machine, PAGE_SIZE)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(2 * PAGE_SIZE)
            with pytest.raises(EINVAL):
                yield from clib.register(ep, vma.start + 1, PAGE_SIZE)
            with pytest.raises(EINVAL):
                yield from clib.register(ep, vma.start, PAGE_SIZE + 5)
            return True

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert p.value is True

    def test_register_pins_pages(self, machine):
        client = rma_pair(machine, PAGE_SIZE)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(4 * PAGE_SIZE)
            off = yield from clib.register(ep, vma.start, 4 * PAGE_SIZE)
            assert cproc.address_space.pinned_pages() == 4
            yield from clib.unregister(ep, off)
            assert cproc.address_space.pinned_pages() == 0
            return True

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert p.value is True

    def test_fixed_offset_and_collision(self, machine):
        client = rma_pair(machine, PAGE_SIZE)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(2 * PAGE_SIZE)
            off = yield from clib.register(
                ep, vma.start, PAGE_SIZE, offset=0x10000, flags=MapFlag.SCIF_MAP_FIXED
            )
            assert off == 0x10000
            with pytest.raises(EADDRINUSE):
                yield from clib.register(
                    ep, vma.start + PAGE_SIZE, PAGE_SIZE,
                    offset=0x10000, flags=MapFlag.SCIF_MAP_FIXED,
                )
            return True

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert p.value is True


class TestRMA:
    def test_vreadfrom_pulls_remote_bytes(self, machine):
        client = rma_pair(machine, 2 * MB, server_fill=0x7E)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(2 * MB, populate=True)
            n = yield from clib.vreadfrom(ep, vma.start, 2 * MB, roff)
            got = cproc.address_space.read(vma.start, 2 * MB)
            return n, got

        p = machine.sim.spawn(client(body)())
        machine.run()
        n, got = p.value
        assert n == 2 * MB
        assert (got == 0x7E).all()

    def test_vwriteto_pushes_local_bytes(self, machine):
        card_node = machine.card_node_id(0)
        sproc = machine.card_process("server")
        slib = machine.scif(sproc)
        cproc = machine.host_process("client")
        clib = machine.scif(cproc)
        ready = machine.sim.event()
        size = MB

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(size, populate=True, name="dst")
            roff = yield from slib.register(conn, vma.start, size)
            ready.succeed(roff)
            # wait for the client's done message then inspect
            yield from slib.recv(conn, 4)
            return sproc.address_space.read(vma.start, size)

        payload = Buffer.pattern(size, seed=11)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff = yield ready
            vma = cproc.address_space.mmap(size, populate=True)
            cproc.address_space.write(vma.start, payload.data)
            yield from clib.vwriteto(ep, vma.start, size, roff)
            yield from clib.send(ep, b"done")

        s = machine.sim.spawn(server())
        machine.sim.spawn(client())
        machine.run()
        assert np.array_equal(s.value, payload.data)

    def test_readfrom_between_registered_windows(self, machine):
        client = rma_pair(machine, MB, server_fill=0x44)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(MB, populate=True)
            loff = yield from clib.register(ep, vma.start, MB)
            yield from clib.readfrom(ep, loff, MB, roff)
            got = cproc.address_space.read(vma.start, MB)
            return got

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert (p.value == 0x44).all()

    def test_rma_outside_window_rejected(self, machine):
        client = rma_pair(machine, PAGE_SIZE)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(2 * PAGE_SIZE, populate=True)
            with pytest.raises(EINVAL):
                yield from clib.vreadfrom(ep, vma.start, 2 * PAGE_SIZE, roff)
            return True

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert p.value is True

    def test_window_prot_enforced(self, machine):
        card_node = machine.card_node_id(0)
        sproc = machine.card_process("server")
        slib = machine.scif(sproc)
        cproc = machine.host_process("client")
        clib = machine.scif(cproc)
        ready = machine.sim.event()

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(PAGE_SIZE, populate=True)
            roff = yield from slib.register(
                conn, vma.start, PAGE_SIZE, prot=Prot.SCIF_PROT_READ
            )
            ready.succeed(roff)
            yield from slib.recv(conn, 1)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff = yield ready
            vma = cproc.address_space.mmap(PAGE_SIZE, populate=True)
            # read allowed
            yield from clib.vreadfrom(ep, vma.start, PAGE_SIZE, roff)
            # write to a read-only window rejected
            with pytest.raises(EINVAL):
                yield from clib.vwriteto(ep, vma.start, PAGE_SIZE, roff)
            yield from clib.send(ep, b"x")
            return True

        machine.sim.spawn(server())
        c = machine.sim.spawn(client())
        machine.run()
        assert c.value is True

    def test_small_rma_uses_cpu_path(self, machine):
        client = rma_pair(machine, PAGE_SIZE, server_fill=0x11)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(PAGE_SIZE, populate=True)
            before = machine.devices[0].dma.transfers
            yield from clib.vreadfrom(ep, vma.start, 64, roff)
            after = machine.devices[0].dma.transfers
            got = cproc.address_space.read(vma.start, 64)
            return before, after, got

        p = machine.sim.spawn(client(body)())
        machine.run()
        before, after, got = p.value
        assert before == after  # no DMA for 64 bytes
        assert (got == 0x11).all()

    def test_usecpu_flag_forces_pio(self, machine):
        client = rma_pair(machine, MB, server_fill=0x22)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(MB, populate=True)
            before = machine.devices[0].dma.transfers
            yield from clib.vreadfrom(ep, vma.start, MB, roff, RmaFlag.SCIF_RMA_USECPU)
            after = machine.devices[0].dma.transfers
            return before, after

        p = machine.sim.spawn(client(body)())
        machine.run()
        before, after = p.value
        assert before == after

    def test_native_rma_throughput_anchor(self, machine):
        """Fig 5 anchor: a large native remote read sustains ~6.4 GB/s."""
        size = 256 * MB
        client = rma_pair(machine, size, server_fill=0x99)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(size, populate=True)
            t0 = machine.sim.now
            yield from clib.vreadfrom(ep, vma.start, size, roff)
            dt = machine.sim.now - t0
            # verify a sample of the data actually arrived
            sample = cproc.address_space.read(vma.start + size // 2, 4096)
            return size / dt, sample

        p = machine.sim.spawn(client(body)())
        machine.run()
        bw, sample = p.value
        assert bw == pytest.approx(6.4e9, rel=0.01)
        assert (sample == 0x99).all()


class TestFence:
    def test_fence_mark_wait_completes(self, machine):
        client = rma_pair(machine, MB)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(MB, populate=True)
            yield from clib.vreadfrom(ep, vma.start, MB, roff)
            mark = yield from clib.fence_mark(ep)
            yield from clib.fence_wait(ep, mark)  # all synchronous: no wait
            return mark

        p = machine.sim.spawn(client(body)())
        machine.run()
        assert p.value == 1

    def test_fence_waits_for_concurrent_rma(self, machine):
        client = rma_pair(machine, 64 * MB)

        def body(clib, cproc, ep, roff):
            vma = cproc.address_space.mmap(64 * MB, populate=True)
            done = {}

            def rma_thread():
                yield from clib.vreadfrom(ep, vma.start, 64 * MB, roff)
                done["rma"] = machine.sim.now

            machine.sim.spawn(rma_thread())
            yield machine.sim.timeout(us(50))  # let the RMA get issued
            mark = yield from clib.fence_mark(ep)
            yield from clib.fence_wait(ep, mark)
            done["fence"] = machine.sim.now
            return done

        p = machine.sim.spawn(client(body)())
        machine.run()
        done = p.value
        # the fence releases at remote data visibility; the issuing thread
        # itself returns one syscall-completion (0.5 us) later
        assert done["fence"] >= done["rma"] - us(1)
        assert done["fence"] > us(50)  # it actually waited for the transfer
