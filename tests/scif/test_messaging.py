"""SCIF send/recv: data integrity, blocking semantics, latency anchor."""

import numpy as np
import pytest

from repro.mem import Buffer
from repro.scif import EAGAIN, EINVAL, ENOTCONN, RecvFlag
from repro.sim import us

PORT = 2100


def connect_pair(machine, port=PORT):
    """Spawn a server/client pair; returns (server_gen_installer, ...)."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    clib = machine.scif(machine.host_process("client"))
    return card_node, slib, clib


def test_send_recv_roundtrip_bytes_intact(machine):
    card_node, slib, clib = connect_pair(machine)
    payload = Buffer.pattern(8192, seed=3)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, len(payload))
        return data

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        n = yield from clib.send(ep, payload)
        return n

    s = machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value == len(payload)
    assert np.array_equal(s.value, payload.data)


def test_send_one_byte_native_latency_anchor(machine):
    """Fig 4 anchor: native 1-byte send completes in 7 us."""
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        yield from clib.send(ep, b"\x01")
        return machine.sim.now - t0

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value == pytest.approx(us(7), rel=0.02)


def test_recv_blocks_until_exact_length(machine):
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, 300)  # needs both sends
        return len(data), machine.sim.now

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        yield from clib.send(ep, b"a" * 100)
        yield machine.sim.timeout(0.01)
        yield from clib.send(ep, b"b" * 200)

    s = machine.sim.spawn(server())
    machine.sim.spawn(client())
    machine.run()
    nbytes, t = s.value
    assert nbytes == 300
    assert t > 0.01  # waited for the second send


def test_recv_nonblocking_partial_and_eagain(machine):
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        with pytest.raises(EAGAIN):
            yield from slib.recv(conn, 100, RecvFlag.NONE)
        yield machine.sim.timeout(0.01)  # let data arrive
        data = yield from slib.recv(conn, 100, RecvFlag.NONE)
        return data

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        yield machine.sim.timeout(0.005)
        yield from clib.send(ep, b"xy")

    s = machine.sim.spawn(server())
    machine.sim.spawn(client())
    machine.run()
    assert s.value.tobytes() == b"xy"  # partial: 2 of requested 100


def test_message_order_preserved(machine):
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, 26)
        return data.tobytes()

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        for ch in b"abcdefghijklmnopqrstuvwxyz":
            yield from clib.send(ep, bytes([ch]))

    s = machine.sim.spawn(server())
    machine.sim.spawn(client())
    machine.run()
    assert s.value == b"abcdefghijklmnopqrstuvwxyz"


def test_bidirectional_traffic(machine):
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        req = yield from slib.recv(conn, 4)
        yield from slib.send(conn, req.tobytes()[::-1])

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        yield from clib.send(ep, b"ping")
        resp = yield from clib.recv(ep, 4)
        return resp.tobytes()

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value == b"gnip"


def test_send_on_unconnected_raises(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        ep = yield from lib.open()
        with pytest.raises(ENOTCONN):
            yield from lib.send(ep, b"x")
        with pytest.raises(ENOTCONN):
            yield from lib.recv(ep, 1)
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_zero_length_send_recv_return_zero(machine):
    """scif_send/recv with len 0 complete immediately: 0 bytes, no wire
    traffic, no payload enqueued for the peer (Linux semantics)."""
    card_node, slib, clib = connect_pair(machine)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.send(conn, b"done")

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        n = yield from clib.send(ep, b"")
        assert n == 0
        empty = yield from clib.recv(ep, 0)
        assert len(empty) == 0
        # neither zero-length op streamed payload or waited on the peer
        assert machine.sim.now - t0 < 1e-5
        with pytest.raises(EINVAL):
            yield from clib.recv(ep, -1)
        resp = yield from clib.recv(ep, 4)
        return ep, resp.tobytes()

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    ep, resp = c.value
    # the zero-length send left nothing in the peer's receive queue:
    # the only real message crossed the wire untouched.
    assert resp == b"done"
    assert ep.bytes_sent == 0


def test_latency_grows_with_payload(machine):
    """Fig 4 shape: latency rises with size (payload streaming term)."""
    card_node, slib, clib = connect_pair(machine)
    sizes = [1, 1024, 65536]

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        for size in sizes:
            yield from slib.recv(conn, size)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        lats = []
        for size in sizes:
            t0 = machine.sim.now
            yield from clib.send(ep, bytes(size))
            lats.append(machine.sim.now - t0)
        return lats

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    l1, l1k, l64k = c.value
    assert l1 < l1k < l64k
    assert l64k > us(25)  # 64KB at 2.5 GB/s is ~26 us of streaming
