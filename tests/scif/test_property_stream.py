"""Property: SCIF send/recv is a faithful byte stream under arbitrary
sender/receiver chunkings (the semantics everything above relies on)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine

PORT_BASE = 12000
_ports = iter(range(PORT_BASE, PORT_BASE + 10_000))


@pytest.fixture(scope="module")
def machine():
    return Machine(cards=1).boot()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    send_sizes=st.lists(st.integers(1, 5000), min_size=1, max_size=8),
    recv_cuts=st.lists(st.integers(1, 5000), min_size=1, max_size=8),
    seed=st.integers(0, 2**16),
)
def test_stream_reassembles_identically(machine, send_sizes, recv_cuts, seed):
    """The receiver's chunking is independent of the sender's: any split
    of the same total yields the same byte sequence."""
    port = next(_ports)
    total = sum(send_sizes)
    # build receiver cuts covering exactly `total`
    cuts, acc = [], 0
    for c in recv_cuts:
        take = min(c, total - acc)
        if take <= 0:
            break
        cuts.append(take)
        acc += take
    if acc < total:
        cuts.append(total - acc)

    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=total, dtype=np.uint8)
    slib = machine.scif(machine.card_process(f"s{port}"))
    clib = machine.scif(machine.host_process(f"c{port}"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        parts = []
        for cut in cuts:
            data = yield from slib.recv(conn, cut)
            parts.append(data)
        yield from slib.close(conn)
        yield from slib.close(ep)
        return np.concatenate(parts)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (machine.card_node_id(0), port))
        off = 0
        for size in send_sizes:
            yield from clib.send(ep, payload[off : off + size])
            off += size
        return True

    s = machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value is True
    assert np.array_equal(s.value, payload)
