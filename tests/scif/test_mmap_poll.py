"""scif_mmap (direct loads/stores to card memory) and scif_poll."""

import numpy as np
import pytest

from repro.mem import PAGE_SIZE, VMAFlag
from repro.scif import EINVAL, PollEvent
from repro.sim import ms

PORT = 2300
MB = 1 << 20


def serve_window(machine, size, fill=0xC3, port=PORT):
    """Card server registering a window; returns (card_node, clib, cproc, ready)."""
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    cproc = machine.host_process("client")
    clib = machine.scif(cproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True, name="window")
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed((roff, sproc, vma))
        # keep the connection alive
        yield from slib.recv(conn, 1)

    machine.sim.spawn(server())
    return card_node, clib, cproc, ready


class TestMmap:
    def test_mmap_reads_device_memory_without_syscalls(self, machine):
        card_node, clib, cproc, ready = serve_window(machine, 2 * PAGE_SIZE, fill=0xC3)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff, _, _ = yield ready
            vma = yield from clib.mmap(ep, roff, 2 * PAGE_SIZE)
            before = machine.tracer.counters["scif.send"]
            # plain dereference: no SCIF call involved
            data = cproc.address_space.read(vma.start + 100, 64)
            after = machine.tracer.counters["scif.send"]
            yield from clib.send(ep, b"x")
            return data, before == after, vma.flags

        c = machine.sim.spawn(client())
        machine.run()
        data, no_calls, flags = c.value
        assert (data == 0xC3).all()
        assert no_calls
        assert flags & VMAFlag.DEVICE

    def test_mmap_stores_reach_the_card(self, machine):
        card_node, clib, cproc, ready = serve_window(machine, PAGE_SIZE)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff, sproc, svma = yield ready
            vma = yield from clib.mmap(ep, roff, PAGE_SIZE)
            cproc.address_space.write(vma.start + 8, b"poked!")
            # the server's view of its own buffer sees the store
            got = sproc.address_space.read(svma.start + 8, 6)
            yield from clib.send(ep, b"x")
            return got

        c = machine.sim.spawn(client())
        machine.run()
        assert c.value.tobytes() == b"poked!"

    def test_mmap_alignment_enforced(self, machine):
        card_node, clib, cproc, ready = serve_window(machine, PAGE_SIZE)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff, _, _ = yield ready
            with pytest.raises(EINVAL):
                yield from clib.mmap(ep, roff + 1, PAGE_SIZE)
            with pytest.raises(EINVAL):
                yield from clib.mmap(ep, roff, 100)
            yield from clib.send(ep, b"x")
            return True

        c = machine.sim.spawn(client())
        machine.run()
        assert c.value is True

    def test_mmap_unregistered_offset_rejected(self, machine):
        card_node, clib, cproc, ready = serve_window(machine, PAGE_SIZE)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff, _, _ = yield ready
            with pytest.raises(EINVAL):
                yield from clib.mmap(ep, roff + 0x100000, PAGE_SIZE)
            yield from clib.send(ep, b"x")
            return True

        c = machine.sim.spawn(client())
        machine.run()
        assert c.value is True

    def test_munmap_invalidates(self, machine):
        card_node, clib, cproc, ready = serve_window(machine, PAGE_SIZE)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            roff, _, _ = yield ready
            vma = yield from clib.mmap(ep, roff, PAGE_SIZE)
            cproc.address_space.read(vma.start, 1)
            yield from clib.munmap(vma)
            failed = False
            try:
                cproc.address_space.read(vma.start, 1)
            except Exception:
                failed = True
            yield from clib.send(ep, b"x")
            return failed

        c = machine.sim.spawn(client())
        machine.run()
        assert c.value is True


class TestPoll:
    def test_pollin_on_data_arrival(self, machine):
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("server"))
        clib = machine.scif(machine.host_process("client"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            revents = yield from slib.poll([(conn, PollEvent.SCIF_POLLIN)])
            data = yield from slib.recv(conn, 5)
            return revents[0], data.tobytes()

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            yield machine.sim.timeout(ms(1))
            yield from clib.send(ep, b"hello")

        s = machine.sim.spawn(server())
        machine.sim.spawn(client())
        machine.run()
        revents, data = s.value
        assert revents & PollEvent.SCIF_POLLIN
        assert data == b"hello"

    def test_poll_timeout_returns_zero_events(self, machine):
        lib = machine.scif(machine.host_process("p"))
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("server"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield machine.sim.timeout(1.0)

        def client():
            ep = yield from lib.open()
            yield from lib.connect(ep, (card_node, PORT))
            t0 = machine.sim.now
            revents = yield from lib.poll([(ep, PollEvent.SCIF_POLLIN)], timeout=ms(5))
            return revents[0] & PollEvent.SCIF_POLLIN, machine.sim.now - t0

        machine.sim.spawn(server())
        c = machine.sim.spawn(client())
        machine.run()
        got_in, waited = c.value
        assert not got_in
        assert waited == pytest.approx(ms(5), rel=0.01)

    def test_poll_nonblocking_snapshot(self, machine):
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("server"))
        clib = machine.scif(machine.host_process("client"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield machine.sim.timeout(1.0)

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            revents = yield from clib.poll([(ep, PollEvent.SCIF_POLLIN)], timeout=0)
            # connected endpoint is writable
            rev_out = yield from clib.poll([(ep, PollEvent.SCIF_POLLOUT)], timeout=0)
            return revents[0], rev_out[0]

        machine.sim.spawn(server())
        c = machine.sim.spawn(client())
        machine.run()
        rin, rout = c.value
        assert not (rin & PollEvent.SCIF_POLLIN)
        assert rout & PollEvent.SCIF_POLLOUT

    def test_poll_listener_signals_pending_accept(self, machine):
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("server"))
        clib = machine.scif(machine.host_process("client"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            revents = yield from slib.poll([(ep, PollEvent.SCIF_POLLIN)])
            conn, _ = yield from slib.accept(ep, block=False)
            return bool(revents[0] & PollEvent.SCIF_POLLIN), conn is not None

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))

        s = machine.sim.spawn(server())
        machine.sim.spawn(client())
        machine.run()
        assert s.value == (True, True)

    def test_pollhup_on_peer_close(self, machine):
        card_node = machine.card_node_id(0)
        slib = machine.scif(machine.card_process("server"))
        clib = machine.scif(machine.host_process("client"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, PORT)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            revents = yield from slib.poll([(conn, PollEvent.SCIF_POLLIN)])
            return revents[0]

        def client():
            ep = yield from clib.open()
            yield from clib.connect(ep, (card_node, PORT))
            yield machine.sim.timeout(ms(1))
            yield from clib.close(ep)

        s = machine.sim.spawn(server())
        machine.sim.spawn(client())
        machine.run()
        assert s.value & PollEvent.SCIF_POLLHUP
