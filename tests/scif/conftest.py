"""Shared SCIF test fixtures: a booted one-card machine."""

import pytest

from repro import Machine


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


@pytest.fixture
def two_card_machine():
    return Machine(cards=2).boot()
