"""SCIF connection lifecycle: bind/listen/connect/accept/close."""

import pytest

from repro.scif import (
    EADDRINUSE,
    ECONNREFUSED,
    ECONNRESET,
    EINVAL,
    EISCONN,
    ENXIO,
    EAGAIN,
    EpState,
)

PORT = 2000


def test_bind_assigns_requested_port(machine):
    proc = machine.host_process("p")
    lib = machine.scif(proc)

    def body():
        ep = yield from lib.open()
        port = yield from lib.bind(ep, PORT)
        return port, ep.state

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value == (PORT, EpState.BOUND)


def test_bind_zero_picks_ephemeral(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        e1 = yield from lib.open()
        e2 = yield from lib.open()
        p1 = yield from lib.bind(e1, 0)
        p2 = yield from lib.bind(e2, 0)
        return p1, p2

    p = machine.sim.spawn(body())
    machine.run()
    p1, p2 = p.value
    assert p1 >= 1024 and p2 >= 1024 and p1 != p2


def test_bind_port_collision(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        e1 = yield from lib.open()
        e2 = yield from lib.open()
        yield from lib.bind(e1, PORT)
        with pytest.raises(EADDRINUSE):
            yield from lib.bind(e2, PORT)
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_connect_accept_host_to_card(machine):
    card_node = machine.card_node_id(0)
    server_lib = machine.scif(machine.card_process("server"))
    client_lib = machine.scif(machine.host_process("client"))

    def server():
        ep = yield from server_lib.open()
        yield from server_lib.bind(ep, PORT)
        yield from server_lib.listen(ep)
        conn, peer = yield from server_lib.accept(ep)
        return conn.state, peer

    def client():
        ep = yield from client_lib.open()
        yield from client_lib.connect(ep, (card_node, PORT))
        return ep.state, ep.peer_addr

    s = machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    sstate, peer = s.value
    cstate, caddr = c.value
    assert sstate is EpState.CONNECTED
    assert cstate is EpState.CONNECTED
    assert peer[0] == 0  # client is on the host node
    assert caddr == (card_node, PORT)


def test_connect_to_missing_node_raises_enxio(machine):
    lib = machine.scif(machine.host_process("client"))

    def body():
        ep = yield from lib.open()
        with pytest.raises(ENXIO):
            yield from lib.connect(ep, (99, PORT))
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_connect_no_listener_refused(machine):
    lib = machine.scif(machine.host_process("client"))
    card_node = machine.card_node_id(0)

    def body():
        ep = yield from lib.open()
        with pytest.raises(ECONNREFUSED):
            yield from lib.connect(ep, (card_node, 4444))
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_double_connect_is_eisconn(machine):
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    clib = machine.scif(machine.host_process("client"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        yield from slib.accept(ep)

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        with pytest.raises(EISCONN):
            yield from clib.connect(ep, (card_node, PORT))
        return True

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value is True


def test_listen_requires_bound(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        ep = yield from lib.open()
        with pytest.raises(EINVAL):
            yield from lib.listen(ep)
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_nonblocking_accept_eagain(machine):
    lib = machine.scif(machine.card_process("server"))

    def body():
        ep = yield from lib.open()
        yield from lib.bind(ep, PORT)
        yield from lib.listen(ep)
        with pytest.raises(EAGAIN):
            yield from lib.accept(ep, block=False)
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_backlog_overflow_refuses(machine):
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    clib = machine.scif(machine.host_process("clients"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep, backlog=1)
        # never accept

    refusals = []

    def client(i):
        ep = yield from clib.open()
        try:
            yield from clib.connect(ep, (card_node, PORT))
        except ECONNREFUSED:
            refusals.append(i)

    machine.sim.spawn(server())

    def driver():
        yield machine.sim.timeout(0.001)
        for i in range(3):
            machine.sim.spawn(client(i))

    machine.sim.spawn(driver())
    machine.run(until=1.0)
    # backlog of 1: two of the three are refused
    assert len(refusals) == 2


def test_close_listener_refuses_pending_connector(machine):
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    clib = machine.scif(machine.host_process("client"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        yield machine.sim.timeout(0.01)  # let the connect queue up
        yield from slib.close(ep)

    def client():
        yield machine.sim.timeout(0.001)
        ep = yield from clib.open()
        with pytest.raises(ECONNREFUSED):
            yield from clib.connect(ep, (card_node, PORT))
        return True

    machine.sim.spawn(server())
    c = machine.sim.spawn(client())
    machine.run()
    assert c.value is True


def test_close_connected_peer_sees_reset_on_recv(machine):
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    clib = machine.scif(machine.host_process("client"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        with pytest.raises(ECONNRESET):
            yield from slib.recv(conn, 10)
        return True

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (card_node, PORT))
        yield machine.sim.timeout(0.001)
        yield from clib.close(ep)

    s = machine.sim.spawn(server())
    machine.sim.spawn(client())
    machine.run()
    assert s.value is True


def test_port_released_after_close(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        e1 = yield from lib.open()
        yield from lib.bind(e1, PORT)
        yield from lib.close(e1)
        e2 = yield from lib.open()
        port = yield from lib.bind(e2, PORT)
        return port

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value == PORT


def test_get_node_ids(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        nodes, own = yield from lib.get_node_ids()
        return nodes, own

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value == ([0, 1], 0)


def test_card_to_card_connection(two_card_machine):
    m = two_card_machine
    n2 = m.card_node_id(1)
    slib = m.scif(m.card_process("server", card=1))
    clib = m.scif(m.card_process("client", card=0))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, peer = yield from slib.accept(ep)
        return peer[0]

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (n2, PORT))
        return ep.peer_addr[0]

    s = m.sim.spawn(server())
    c = m.sim.spawn(client())
    m.run()
    assert s.value == m.card_node_id(0)
    assert c.value == n2
