"""SCIF API edge cases and misuse the driver must reject cleanly."""

import numpy as np
import pytest

from repro.mem import PAGE_SIZE
from repro.scif import (
    EINVAL,
    ENOTCONN,
    EpState,
    RmaFlag,
)

PORT = 9800
MB = 1 << 20


def run(machine, gen):
    p = machine.sim.spawn(gen)
    machine.run()
    return p.value


def connected_pair(machine, port=PORT):
    """Returns (server_lib, client_lib, conn_event) with a live connection;
    the event fires with (server_conn, client_ep)."""
    slib = machine.scif(machine.card_process(f"s{port}"))
    clib = machine.scif(machine.host_process(f"c{port}"))
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        return conn

    sp = machine.sim.spawn(server())

    def client():
        ep = yield from clib.open()
        yield from clib.connect(ep, (machine.card_node_id(0), port))
        return ep

    cp = machine.sim.spawn(client())
    return slib, clib, sp, cp


def test_listen_twice_rejected(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        ep = yield from lib.open()
        yield from lib.bind(ep, PORT)
        yield from lib.listen(ep)
        with pytest.raises(EINVAL):
            yield from lib.listen(ep)
        return True

    assert run(machine, body()) is True


def test_bind_after_connect_rejected(machine):
    slib, clib, sp, cp = connected_pair(machine)
    machine.run()
    ep = cp.value

    def body():
        with pytest.raises(EINVAL):
            yield from clib.bind(ep, PORT + 1)
        return True

    assert run(machine, body()) is True


def test_listen_zero_backlog_rejected(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        ep = yield from lib.open()
        yield from lib.bind(ep, PORT + 2)
        with pytest.raises(EINVAL):
            yield from lib.listen(ep, backlog=0)
        return True

    assert run(machine, body()) is True


def test_accept_on_connected_endpoint_rejected(machine):
    slib, clib, sp, cp = connected_pair(machine, PORT + 3)
    machine.run()
    conn = sp.value

    def body():
        with pytest.raises(EINVAL):
            yield from slib.accept(conn)
        return True

    assert run(machine, body()) is True


def test_register_on_unconnected_endpoint_rejected(machine):
    proc = machine.host_process("p")
    lib = machine.scif(proc)

    def body():
        ep = yield from lib.open()
        vma = proc.address_space.mmap(PAGE_SIZE)
        with pytest.raises(ENOTCONN):
            yield from lib.register(ep, vma.start, PAGE_SIZE)
        return True

    assert run(machine, body()) is True


def test_rma_zero_length_rejected(machine):
    slib, clib, sp, cp = connected_pair(machine, PORT + 4)
    machine.run()
    ep = cp.value
    proc = clib.process

    def body():
        with pytest.raises(EINVAL):
            yield from clib.vreadfrom(ep, 0x1000, 0, 0)
        with pytest.raises(EINVAL):
            yield from clib.vwriteto(ep, 0x1000, -5, 0)
        return True

    assert run(machine, body()) is True


def test_double_close_is_idempotent(machine):
    lib = machine.scif(machine.host_process("p"))

    def body():
        ep = yield from lib.open()
        yield from lib.bind(ep, PORT + 5)
        yield from lib.close(ep)
        rc = yield from lib.close(ep)  # second close: harmless 0
        return rc, ep.state

    rc, state = run(machine, body())
    assert rc == 0
    assert state is EpState.CLOSED


def test_close_unregisters_windows_and_unpins(machine):
    slib, clib, sp, cp = connected_pair(machine, PORT + 6)
    machine.run()
    ep = cp.value
    proc = clib.process

    def body():
        vma = proc.address_space.mmap(4 * PAGE_SIZE)
        yield from clib.register(ep, vma.start, 4 * PAGE_SIZE)
        assert proc.address_space.pinned_pages() == 4
        yield from clib.close(ep)
        return proc.address_space.pinned_pages()

    assert run(machine, body()) == 0


def test_usecpu_rma_still_moves_correct_bytes(machine):
    """Flag combinations: forced-CPU writes land identically to DMA."""
    slib, clib, sp, cp = connected_pair(machine, PORT + 7)
    machine.run()
    conn, ep = sp.value, cp.value
    sproc, cproc = slib.process, clib.process

    def body():
        svma = sproc.address_space.mmap(MB, populate=True)
        roff = yield from slib.register(conn, svma.start, MB)
        payload = np.arange(MB, dtype=np.int64).astype(np.uint8)[:MB]
        cvma = cproc.address_space.mmap(MB, populate=True)
        cproc.address_space.write(cvma.start, payload)
        yield from clib.vwriteto(ep, cvma.start, MB, roff, RmaFlag.SCIF_RMA_USECPU)
        got = sproc.address_space.read(svma.start, MB)
        return np.array_equal(got, payload)

    assert run(machine, body()) is True


def test_window_spanning_resolve_across_adjacent_windows(machine):
    """An RMA may span two adjacent fixed windows with no gap."""
    slib, clib, sp, cp = connected_pair(machine, PORT + 8)
    machine.run()
    conn, ep = sp.value, cp.value
    sproc, cproc = slib.process, clib.process

    def body():
        v1 = sproc.address_space.mmap(PAGE_SIZE, populate=True)
        v2 = sproc.address_space.mmap(PAGE_SIZE, populate=True)
        sproc.address_space.write(v1.start, b"A" * PAGE_SIZE)
        sproc.address_space.write(v2.start, b"B" * PAGE_SIZE)
        from repro.scif import MapFlag

        base = 0x200000
        yield from slib.register(conn, v1.start, PAGE_SIZE, offset=base,
                                 flags=MapFlag.SCIF_MAP_FIXED)
        yield from slib.register(conn, v2.start, PAGE_SIZE, offset=base + PAGE_SIZE,
                                 flags=MapFlag.SCIF_MAP_FIXED)
        cvma = cproc.address_space.mmap(2 * PAGE_SIZE, populate=True)
        # read straddling the window boundary
        yield from clib.vreadfrom(ep, cvma.start, 2 * PAGE_SIZE, base)
        got = cproc.address_space.read(cvma.start, 2 * PAGE_SIZE)
        return got

    got = run(machine, body())
    assert (got[:PAGE_SIZE] == ord("A")).all()
    assert (got[PAGE_SIZE:] == ord("B")).all()
