"""Stateful property tests: the window registry's RAS invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.mem import PAGE_SIZE, PhysicalMemory, SGEntry
from repro.scif import EADDRINUSE, EINVAL, Prot
from repro.scif.registration import WindowRegistry

MB = 1 << 20


class WindowRegistryMachine(RuleBasedStateMachine):
    """Random add/remove/resolve against a shadow model."""

    def __init__(self):
        super().__init__()
        self.mem = PhysicalMemory(256 * MB)
        self.registry = WindowRegistry()
        #: shadow: offset -> (nbytes, prot)
        self.shadow: dict[int, tuple[int, int]] = {}

    def _sg_for(self, nbytes):
        ext = self.mem.alloc(nbytes)
        return [SGEntry(self.mem, ext.addr, nbytes)]

    @rule(pages=st.integers(1, 16))
    def add_dynamic(self, pages):
        nbytes = pages * PAGE_SIZE
        win = self.registry.add(nbytes, Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE,
                                self._sg_for(nbytes))
        assert win.offset not in self.shadow
        self.shadow[win.offset] = (nbytes, int(win.prot))

    @rule(slot=st.integers(0, 30), pages=st.integers(1, 8))
    def add_fixed(self, slot, pages):
        offset = 0x100000 + slot * 64 * PAGE_SIZE  # fixed offsets may collide
        nbytes = pages * PAGE_SIZE
        overlaps = any(
            o < offset + nbytes and offset < o + n
            for o, (n, _) in self.shadow.items()
        )
        try:
            self.registry.add(nbytes, Prot.SCIF_PROT_READ,
                              self._sg_for(nbytes), offset=offset)
        except EADDRINUSE:
            assert overlaps
        else:
            assert not overlaps
            self.shadow[offset] = (nbytes, int(Prot.SCIF_PROT_READ))

    @rule(data=st.data())
    def remove_existing(self, data):
        if not self.shadow:
            return
        offset = data.draw(st.sampled_from(sorted(self.shadow)))
        self.registry.remove(offset)
        del self.shadow[offset]

    @rule(offset=st.integers(0, 2**32))
    def remove_missing_rejected(self, offset):
        if offset in self.shadow:
            return
        try:
            self.registry.remove(offset)
        except EINVAL:
            pass
        else:
            raise AssertionError("removed a window that was never added")

    @rule(data=st.data())
    def resolve_inside_succeeds(self, data):
        if not self.shadow:
            return
        offset = data.draw(st.sampled_from(sorted(self.shadow)))
        nbytes, _ = self.shadow[offset]
        start = data.draw(st.integers(0, nbytes - 1))
        length = data.draw(st.integers(1, nbytes - start))
        sg = self.registry.resolve(offset + start, length, Prot.SCIF_PROT_READ)
        assert sum(e.nbytes for e in sg) == length

    @invariant()
    def registry_matches_shadow(self):
        assert len(self.registry) == len(self.shadow)
        for offset, (nbytes, _) in self.shadow.items():
            win = self.registry.find(offset)
            assert win is not None and win.offset == offset and win.nbytes == nbytes

    @invariant()
    def windows_never_overlap(self):
        wins = sorted(self.registry, key=lambda w: w.offset)
        for a, b in zip(wins, wins[1:]):
            assert a.end <= b.offset


TestWindowRegistryStateful = WindowRegistryMachine.TestCase
TestWindowRegistryStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
