"""COI pipelines: ordering, concurrency, buffer hazards."""

import numpy as np
import pytest

from repro import Machine
from repro.coi import COIConnection, COIError, start_coi_daemon
from repro.workloads import ClientContext
from repro.workloads.offload import register_offload_function


@pytest.fixture
def machine():
    m = Machine(cards=1).boot()
    start_coi_daemon(m, card=0)
    return m


# a slow instrumented kernel for ordering tests (args cross the wire
# pickled, so results — not shared lists — carry the timestamps back)
@register_offload_function("slow_mark")
def slow_mark(uos, buffers, args):
    """Busy the card for `seconds`; report start/end times."""
    t0 = uos.sim.now
    yield uos.sim.timeout(args["seconds"])
    return {"label": args["label"], "t_start": t0, "t_end": uos.sim.now}


def run(machine, gen):
    p = machine.sim.spawn(gen)
    machine.run()
    return p.value


def test_single_pipeline_executes_in_order(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        pipe = yield from conn.pipeline_create()
        runs = []
        # enqueue a slow kernel then fast ones: order must hold anyway
        for label, secs in (("a", 0.005), ("b", 0.001), ("c", 0.001)):
            r = yield from conn.pipeline_enqueue(
                pipe, "slow_mark", args={"label": label, "seconds": secs})
            runs.append(r)
        out = []
        for r in runs:
            out.append((yield from conn.run_wait(r)))
        yield from conn.close()
        return out

    out = run(machine, body())
    assert [o["label"] for o in out] == ["a", "b", "c"]
    # strict serialization within one pipeline: b starts after a ends
    assert out[1]["t_start"] >= out[0]["t_end"]
    assert out[2]["t_start"] >= out[1]["t_end"]


def test_independent_pipelines_run_concurrently(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        p1 = yield from conn.pipeline_create()
        p2 = yield from conn.pipeline_create()
        r1 = yield from conn.pipeline_enqueue(
            p1, "slow_mark", args={"label": "p1", "seconds": 0.01})
        r2 = yield from conn.pipeline_enqueue(
            p2, "slow_mark", args={"label": "p2", "seconds": 0.01})
        o1 = yield from conn.run_wait(r1)
        o2 = yield from conn.run_wait(r2)
        yield from conn.close()
        return o1, o2

    o1, o2 = run(machine, body())
    # the two kernels overlapped (no hazard between their buffer sets)
    assert o2["t_start"] < o1["t_end"]


def test_buffer_hazard_serializes_across_pipelines(machine):
    """Two pipelines writing the same COIBuffer must not overlap."""
    ctx = ClientContext.native(machine)
    n = 1024
    x = np.ones(n, dtype=np.float64)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        buf = yield from conn.buffer_create(n * 8)
        yield from buf.write(x.tobytes())
        p1 = yield from conn.pipeline_create()
        p2 = yield from conn.pipeline_create()
        # both scale the same buffer in place: result must be 2*3 = 6x
        r1 = yield from conn.pipeline_enqueue(
            p1, "vector_scale", buffers=[buf], writes=[buf],
            args={"n": n, "alpha": 2.0})
        r2 = yield from conn.pipeline_enqueue(
            p2, "vector_scale", buffers=[buf], writes=[buf],
            args={"n": n, "alpha": 3.0})
        yield from conn.run_wait(r1)
        yield from conn.run_wait(r2)
        data = yield from buf.read()
        yield from conn.close()
        return np.frombuffer(data.tobytes(), dtype=np.float64)

    got = run(machine, body())
    assert np.allclose(got, 6.0)  # both ran, serialized (not lost-update)


def test_pipeline_chain_dgemm_then_reduce(machine):
    """A realistic offload graph: dgemm writes C, reduce reads C — the
    read-after-write hazard orders them across pipelines."""
    ctx = ClientContext.native(machine)
    n = 32
    rng = np.random.default_rng(3)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        ab = yield from conn.buffer_create(n * n * 8)
        bb = yield from conn.buffer_create(n * n * 8)
        cb = yield from conn.buffer_create(n * n * 8)
        yield from ab.write(a.tobytes())
        yield from bb.write(b.tobytes())
        p1 = yield from conn.pipeline_create()
        p2 = yield from conn.pipeline_create()
        r1 = yield from conn.pipeline_enqueue(
            p1, "dgemm_offload", buffers=[ab, bb, cb], writes=[cb],
            args={"n": n, "threads": 56})
        r2 = yield from conn.pipeline_enqueue(
            p2, "reduce_sum", buffers=[cb], args={"n": n * n})
        out = yield from conn.run_wait(r2)
        yield from conn.run_wait(r1)
        yield from conn.close()
        return out

    out = run(machine, body())
    assert out["sum"] == pytest.approx(float((a @ b).sum()), rel=1e-9)


def test_enqueue_on_unknown_pipeline_fails(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        with pytest.raises(COIError):
            yield from conn.pipeline_enqueue(999, "reduce_sum")
        yield from conn.close()
        return True

    assert run(machine, body()) is True


def test_wait_on_unknown_run_fails(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        with pytest.raises(COIError):
            yield from conn.run_wait(12345)
        yield from conn.close()
        return True

    assert run(machine, body()) is True
