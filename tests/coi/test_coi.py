"""COI: daemon protocol, process launch, buffers, offload functions."""

import numpy as np
import pytest

from repro import Machine
from repro.coi import COIConnection, COIError, start_coi_daemon
from repro.mpss import MICBinary
from repro.workloads import DGEMM_BINARY  # registers the dgemm binary
from repro.workloads.microbench import ClientContext

MB = 1 << 20


@pytest.fixture
def machine():
    m = Machine(cards=1).boot()
    start_coi_daemon(m, card=0)
    return m


def run(machine, gen, spawn=None):
    p = (spawn or machine.sim.spawn)(gen)
    machine.run()
    return p.value


def test_process_create_and_wait_dgemm(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        handle = yield from conn.process_create(DGEMM_BINARY, argv=["128", "56"])
        record = yield from handle.wait()
        yield from conn.close()
        return record

    record = run(machine, body())
    assert record["status"] == 0
    assert record["n"] == 128
    # numerically verified on the card for small N
    assert record["c_checksum"] == pytest.approx(record["c_expected"])
    assert record["compute_time"] > 0


def test_unknown_binary_rejected(machine):
    bogus = MICBinary(name="not-registered", size=1024, entry=None)

    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        with pytest.raises(COIError, match="no such MIC binary"):
            yield from conn.process_create(bogus)
        yield from conn.close()
        return True

    assert run(machine, body()) is True


def test_buffer_roundtrip(machine):
    ctx = ClientContext.native(machine)
    payload = np.random.default_rng(3).integers(0, 256, 2 * MB, dtype=np.uint8)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        buf = yield from conn.buffer_create(2 * MB)
        yield from buf.write(payload)
        back = yield from buf.read()
        yield from buf.destroy()
        yield from conn.close()
        return back

    back = run(machine, body())
    assert np.array_equal(back, payload)


def test_offload_vector_scale(machine):
    ctx = ClientContext.native(machine)
    x = np.arange(1000, dtype=np.float64)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        buf = yield from conn.buffer_create(len(x) * 8)
        yield from buf.write(x.tobytes())
        result = yield from conn.run_function(
            "vector_scale", buffers=[buf], args={"n": len(x), "alpha": 3.0}
        )
        data = yield from buf.read()
        yield from conn.close()
        return result, data

    result, data = run(machine, body())
    got = np.frombuffer(data.tobytes(), dtype=np.float64)
    assert np.allclose(got, 3.0 * x)
    assert result["alpha"] == 3.0


def test_offload_dgemm_numerics(machine):
    ctx = ClientContext.native(machine)
    n = 64
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        ab = yield from conn.buffer_create(n * n * 8)
        bb = yield from conn.buffer_create(n * n * 8)
        cb = yield from conn.buffer_create(n * n * 8)
        yield from ab.write(a.tobytes())
        yield from bb.write(b.tobytes())
        result = yield from conn.run_function(
            "dgemm_offload", buffers=[ab, bb, cb], args={"n": n, "threads": 112}
        )
        c_bytes = yield from cb.read()
        yield from conn.close()
        return result, c_bytes

    result, c_bytes = run(machine, body())
    c = np.frombuffer(c_bytes.tobytes(), dtype=np.float64).reshape(n, n)
    assert np.allclose(c, a @ b)
    assert result["checksum"] == pytest.approx(float(np.abs(a @ b).sum()))


def test_unknown_offload_function(machine):
    ctx = ClientContext.native(machine)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        with pytest.raises(COIError, match="no offload function"):
            yield from conn.run_function("warp_drive")
        yield from conn.close()
        return True

    assert run(machine, body()) is True


def test_offload_mode_works_from_a_vm(machine):
    """§II-A: vPHI supports offload mode because COI sits on SCIF."""
    vm = machine.create_vm("vm0")
    ctx = ClientContext.guest(vm)
    x = np.ones(512, dtype=np.float64)

    def body():
        conn = COIConnection(ctx.lib, machine.card_node_id(0))
        yield from conn.connect()
        buf = yield from conn.buffer_create(len(x) * 8)
        yield from buf.write(x.tobytes())
        result = yield from conn.run_function(
            "reduce_sum", buffers=[buf], args={"n": len(x)}
        )
        yield from conn.close()
        return result

    result = run(machine, body(), spawn=ctx.spawn)
    assert result["sum"] == pytest.approx(512.0)


def test_two_concurrent_clients_one_daemon(machine):
    """The daemon serves connections concurrently (sharing at the
    process level inside one card)."""
    ctx1 = ClientContext.native(machine, "c1")
    ctx2 = ClientContext.native(machine, "c2")

    def body(ctx, n):
        def gen():
            conn = COIConnection(ctx.lib, machine.card_node_id(0))
            yield from conn.connect()
            handle = yield from conn.process_create(DGEMM_BINARY, argv=[str(n), "56"])
            record = yield from handle.wait()
            yield from conn.close()
            return record["n"]

        return gen()

    p1 = machine.sim.spawn(body(ctx1, 64))
    p2 = machine.sim.spawn(body(ctx2, 32))
    machine.run()
    assert (p1.value, p2.value) == (64, 32)
