"""OffloadRuntime: the pragma-offload-style API over COI pipelines."""

import numpy as np
import pytest

from repro import Machine
from repro.coi import COIError, In, InOut, OffloadRuntime, Out, start_coi_daemon
from repro.workloads import ClientContext


@pytest.fixture
def machine():
    m = Machine(cards=1).boot()
    start_coi_daemon(m, card=0)
    return m


def run(machine, gen, spawn=None):
    p = (spawn or machine.sim.spawn)(gen)
    machine.run()
    return p.value


def test_offload_dgemm_with_out_array(machine):
    ctx = ClientContext.native(machine)
    n = 48
    rng = np.random.default_rng(1)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    def body():
        rt = OffloadRuntime(ctx, machine)
        yield from rt.open()
        result, (c,) = yield from rt.run(
            "dgemm_offload",
            [In(a), In(b), Out((n, n))],
            args={"n": n, "threads": 56},
        )
        yield from rt.close()
        return result, c

    result, c = run(machine, body())
    assert np.allclose(c, a @ b)
    assert result["n"] == n


def test_offload_inout_array(machine):
    ctx = ClientContext.native(machine)
    x = np.arange(500, dtype=np.float64)

    def body():
        rt = OffloadRuntime(ctx, machine)
        yield from rt.open()
        _, (scaled,) = yield from rt.run(
            "vector_scale", [InOut(x)], args={"n": len(x), "alpha": 5.0}
        )
        yield from rt.close()
        return scaled

    scaled = run(machine, body())
    assert np.allclose(scaled, 5.0 * x)


def test_sequential_offloads_reuse_runtime(machine):
    ctx = ClientContext.native(machine)

    def body():
        rt = OffloadRuntime(ctx, machine)
        yield from rt.open()
        sums = []
        for k in range(3):
            x = np.full(100, float(k + 1))
            result, _ = yield from rt.run(
                "reduce_sum", [In(x)], args={"n": 100}
            )
            sums.append(result["sum"])
        yield from rt.close()
        return sums, rt.offloads

    sums, offloads = run(machine, body())
    assert sums == [100.0, 200.0, 300.0]
    assert offloads == 3


def test_offload_from_vm(machine):
    """The runtime is stack-agnostic: a guest offloads through vPHI."""
    vm = machine.create_vm("vm0")
    ctx = ClientContext.guest(vm)
    x = np.ones(256, dtype=np.float64)

    def body():
        rt = OffloadRuntime(ctx, machine)
        yield from rt.open()
        result, _ = yield from rt.run("reduce_sum", [In(x)], args={"n": 256})
        yield from rt.close()
        return result["sum"]

    total = run(machine, body(), spawn=ctx.spawn)
    assert total == 256.0
    assert vm.vphi.frontend.requests > 0


def test_unopened_runtime_rejected(machine):
    ctx = ClientContext.native(machine)

    def body():
        rt = OffloadRuntime(ctx, machine)
        with pytest.raises(COIError):
            yield from rt.run("reduce_sum", [In(np.ones(4))], args={"n": 4})
        return True

    assert run(machine, body()) is True


def test_bad_spec_rejected(machine):
    ctx = ClientContext.native(machine)

    def body():
        rt = OffloadRuntime(ctx, machine)
        yield from rt.open()
        with pytest.raises(COIError):
            yield from rt.run("reduce_sum", ["not-a-spec"], args={})
        yield from rt.close()
        return True

    assert run(machine, body()) is True
