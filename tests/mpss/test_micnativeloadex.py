"""micnativeloadex + micinfo: the native-mode launch path (§IV-C)."""

import pytest

from repro import Machine
from repro.coi import start_coi_daemon
from repro.mpss import MicToolError, micinfo, micnativeloadex
from repro.workloads import DGEMM_BINARY
from repro.workloads.microbench import ClientContext

MB = 1 << 20


@pytest.fixture
def machine():
    m = Machine(cards=1).boot()
    start_coi_daemon(m, card=0)
    return m


def launch(machine, ctx, argv, **kw):
    p = ctx.spawn(micnativeloadex(machine, ctx, DGEMM_BINARY, argv=argv, **kw))
    machine.run()
    return p.value


def test_native_launch_runs_dgemm_and_verifies(machine):
    ctx = ClientContext.native(machine)
    res = launch(machine, ctx, ["128", "112"])
    assert res.status == 0
    assert res.exit_record["c_checksum"] == pytest.approx(res.exit_record["c_expected"])
    assert res.transferred_bytes == DGEMM_BINARY.total_transfer_bytes
    assert res.total_time > res.compute_time > 0


def test_guest_launch_through_vphi(machine):
    """The §IV-C experiment: the identical tool code runs inside the VM,
    reading the vPHI-mirrored sysfs and talking SCIF through the ring."""
    vm = machine.create_vm("vm0")
    ctx = ClientContext.guest(vm)
    res = launch(machine, ctx, ["128", "112"])
    assert res.status == 0
    assert res.exit_record["c_checksum"] == pytest.approx(res.exit_record["c_expected"])
    assert vm.vphi.frontend.requests > 0  # it really went through the ring


def test_vphi_overhead_amortized_for_long_runs(machine):
    """§IV-C conclusion: launch+execute overhead is amortized when compute
    dominates; visible when it does not."""
    vm = machine.create_vm("vm0")
    # small problem: launch dominated by transfer + vPHI overhead
    small_native = launch(machine, ClientContext.native(machine, "n1"), ["512", "112"])
    small_guest = launch(machine, ClientContext.guest(vm, "g1"), ["512", "112"])
    # big problem: compute dominates
    big_native = launch(machine, ClientContext.native(machine, "n2"), ["8000", "112"])
    big_guest = launch(machine, ClientContext.guest(vm, "g2"), ["8000", "112"])
    small_ratio = small_guest.total_time / small_native.total_time
    big_ratio = big_guest.total_time / big_native.total_time
    assert small_ratio > big_ratio
    assert big_ratio < 1.05  # <5% overhead once compute dominates
    assert small_ratio > 1.05


def test_compute_time_identical_native_vs_vphi(machine):
    """§IV-C: "we observed no performance degradation for the vPHI
    compared to the host concerning actual execution time on the device"."""
    vm = machine.create_vm("vm0")
    rn = launch(machine, ClientContext.native(machine, "n"), ["4000", "224"])
    rg = launch(machine, ClientContext.guest(vm, "g"), ["4000", "224"])
    assert rg.compute_time == pytest.approx(rn.compute_time, rel=1e-6)


def test_more_threads_run_faster(machine):
    """The Figs 6-8 thread axis: 56 -> 112 -> 224 threads shrink compute."""
    ctx = ClientContext.native(machine)
    times = {}
    for threads in (56, 112, 224):
        res = launch(machine, ClientContext.native(machine, f"t{threads}"),
                     ["4000", str(threads)])
        times[threads] = res.compute_time
    assert times[56] > times[112] > times[224]


def test_tool_refuses_offline_card(machine):
    ctx = ClientContext.native(machine)
    machine.devices[0].state = type(machine.devices[0].state).SHUTDOWN

    def body():
        with pytest.raises(MicToolError, match="not online"):
            yield from micnativeloadex(machine, ctx, DGEMM_BINARY, argv=["64", "56"])
        return True

    p = machine.sim.spawn(body())
    machine.run()
    assert p.value is True


def test_micinfo_renders_card_report(machine):
    report = micinfo(machine.kernel.sysfs, cards=1)
    assert "mic0" in report
    assert "3120P" in report
    assert "x100" in report
    assert "57" in report


def test_micinfo_inside_guest_matches_host(machine):
    vm = machine.create_vm("vm0")
    host_report = micinfo(machine.kernel.sysfs, cards=1)
    guest_report = micinfo(vm.guest_kernel.sysfs, cards=1)
    assert guest_report == host_report
