"""Every example script must run clean — they are documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_and_reports_ok(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK" in proc.stdout
