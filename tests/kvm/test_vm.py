"""VM memory slots, guest kernel, QEMU event loop, KVM fault hook."""

import pytest

from repro import Machine
from repro.kvm import KvmMmu, PfnPhiInfo, VirtualMachine
from repro.mem import (
    PAGE_SIZE,
    PageFault,
    PhysicalMemory,
    SGEntry,
    VMAFlag,
)
from repro.sim import SimError, us

MB = 1 << 20
GB = 1 << 30


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


def make_vm(machine, **kw):
    return VirtualMachine(machine.sim, machine.kernel, **kw)


class TestMemorySlots:
    def test_guest_ram_is_carved_from_host(self, machine):
        free_before = machine.ram.bytes_free
        vm = make_vm(machine, ram_bytes=GB)
        assert machine.ram.bytes_free == free_before - GB
        assert vm.ram.size == GB

    def test_gpa_writes_visible_at_host_physical(self, machine):
        vm = make_vm(machine)
        vm.ram.write(0x5000, b"guest-data")
        assert machine.ram.read(vm.slot_base + 0x5000, 10).tobytes() == b"guest-data"

    def test_gpa_sg_resolves_zero_copy(self, machine):
        vm = make_vm(machine)
        vm.ram.write(0x2000, b"ring-buf")
        sg = vm.gpa_sg(0x2000, 8)
        assert len(sg) == 1
        assert sg[0].mem.read(sg[0].paddr, 8).tobytes() == b"ring-buf"

    def test_gpa_out_of_slot_rejected(self, machine):
        vm = make_vm(machine, ram_bytes=GB)
        with pytest.raises(SimError):
            vm.gpa_sg(GB - 4, 8)

    def test_two_vms_have_disjoint_ram(self, machine):
        vm1 = make_vm(machine, name="vm1")
        vm2 = make_vm(machine, name="vm2")
        vm1.ram.write(0, b"\xAA")
        vm2.ram.write(0, b"\xBB")
        assert vm1.ram.read(0, 1)[0] == 0xAA
        assert vm2.ram.read(0, 1)[0] == 0xBB
        assert vm1.slot_base != vm2.slot_base

    def test_guest_kmalloc_allocates_guest_physical(self, machine):
        vm = make_vm(machine)
        ext = vm.guest_kernel.kmalloc.kmalloc(64 * 1024)
        sg = vm.extent_sg(ext)
        assert sg[0].nbytes == 64 * 1024


class TestQemuEventLoop:
    def test_blocking_event_freezes_guest(self, machine):
        vm = make_vm(machine)
        t0 = machine.sim.now
        hits = []

        def guest_ticker():
            yield machine.sim.timeout(us(10))
            hits.append(("guest", machine.sim.now - t0))

        def handler():
            yield machine.sim.timeout(us(100))
            hits.append(("handler", machine.sim.now - t0))

        vm.spawn_guest(guest_ticker())
        vm.qemu.post_event(handler, blocking=True)
        machine.run()
        # handler ran first even though the guest timer was earlier
        assert hits[0][0] == "handler"
        assert hits[1] == ("guest", pytest.approx(us(100)))
        assert vm.domain.paused_time == pytest.approx(us(100))

    def test_nonblocking_event_lets_guest_run(self, machine):
        vm = make_vm(machine)
        t0 = machine.sim.now
        hits = []

        def guest_ticker():
            yield machine.sim.timeout(us(10))
            hits.append(("guest", machine.sim.now - t0))

        def handler():
            yield machine.sim.timeout(us(100))
            hits.append(("worker", machine.sim.now - t0))

        vm.spawn_guest(guest_ticker())
        vm.qemu.post_event(handler, blocking=False)
        machine.run()
        assert hits[0] == ("guest", pytest.approx(us(10)))
        assert vm.qemu.worker_events == 1
        assert vm.domain.paused_time == 0.0

    def test_worker_spawn_cost_charged(self, machine):
        vm = make_vm(machine)
        t0 = machine.sim.now
        done = []

        def handler():
            done.append(machine.sim.now - t0)
            yield machine.sim.timeout(0)

        vm.qemu.post_event(handler, blocking=False)
        machine.run()
        # handler starts only after the worker-spawn cost
        assert done[0] == pytest.approx(vm.costs.worker_spawn, rel=1e-6)

    def test_blocking_events_serialize(self, machine):
        vm = make_vm(machine)
        spans = []

        def handler(tag):
            def run():
                t0 = machine.sim.now
                yield machine.sim.timeout(us(50))
                spans.append((tag, t0, machine.sim.now))

            return run

        vm.qemu.post_event(handler("a"), blocking=True)
        vm.qemu.post_event(handler("b"), blocking=True)
        machine.run()
        (ta, a0, a1), (tb, b0, b1) = spans
        assert b0 >= a1  # no overlap

    def test_workers_run_concurrently(self, machine):
        vm = make_vm(machine)

        def handler():
            yield machine.sim.timeout(us(500))

        for _ in range(3):
            vm.qemu.post_event(handler, blocking=False)
        machine.run()
        assert vm.qemu.workers_peak >= 2


class TestKvmFault:
    def _phi_vma(self, vm, gddr):
        """Build a guest-process device VMA tagged PFNPHI, as the vPHI
        frontend would after a guest scif_mmap."""
        proc = vm.guest_process("app")
        space = proc.address_space
        info = PfnPhiInfo([SGEntry(gddr, 0x10000, 2 * PAGE_SIZE)])
        vma = space.mmap(
            2 * PAGE_SIZE,
            flags=VMAFlag.READ | VMAFlag.WRITE | VMAFlag.DEVICE | VMAFlag.PFNPHI,
            fault_handler=lambda v, a: vm.mmu.handle_fault(space, v, a),
            name="vphi-mmap",
        )
        vma.private = info
        return space, vma

    def test_modified_kvm_resolves_to_device_memory(self, machine):
        vm = make_vm(machine, kvm_modified=True)
        gddr = machine.devices[0].gddr
        gddr.write(0x10000, b"card-bytes")
        space, vma = self._phi_vma(vm, gddr)
        got = space.read(vma.start, 10)
        assert got.tobytes() == b"card-bytes"
        assert vm.mmu.pfnphi_faults == 1

    def test_unmodified_kvm_faults_as_paper_describes(self, machine):
        vm = make_vm(machine, kvm_modified=False)
        gddr = machine.devices[0].gddr
        space, vma = self._phi_vma(vm, gddr)
        with pytest.raises(PageFault, match="unmodified"):
            space.read(vma.start, 1)

    def test_store_through_pfnphi_mapping_reaches_card(self, machine):
        vm = make_vm(machine, kvm_modified=True)
        gddr = machine.devices[0].gddr
        space, vma = self._phi_vma(vm, gddr)
        space.write(vma.start + PAGE_SIZE + 4, b"stored")
        assert gddr.read(0x10000 + PAGE_SIZE + 4, 6).tobytes() == b"stored"

    def test_fault_beyond_window_rejected(self, machine):
        vm = make_vm(machine, kvm_modified=True)
        mmu = KvmMmu("x", modified=True)
        info = PfnPhiInfo([SGEntry(PhysicalMemory(MB), 0, PAGE_SIZE)])
        with pytest.raises(Exception):
            info.locate(PAGE_SIZE + 1)


def test_vm_requires_vcpu(machine):
    with pytest.raises(SimError):
        make_vm(machine, vcpus=0)
