"""Cross-validation: the closed-form predictors vs the full simulation.

The calibration module documents the timing model in closed form; the
simulator implements it mechanistically across a dozen components.  If
they drift apart, either the documentation lies or a code path charges
the wrong cost — both are bugs.  This suite pins them together across a
grid of sizes (beyond the calibration anchors).
"""

import pytest

from repro.analysis import (
    fig4_latency,
    fig5_throughput,
    predicted_native_latency,
    predicted_native_rma_time,
    predicted_vphi_latency,
    predicted_vphi_rma_time,
    to_csv,
)

MB = 1 << 20

LAT_SIZES = [1, 512, 8192, 65536]
RMA_SIZES = [256 * 1024, 4 * MB, 32 * MB, 128 * MB]


@pytest.fixture(scope="module")
def fig4():
    return fig4_latency(LAT_SIZES)


@pytest.fixture(scope="module")
def fig5():
    return fig5_throughput(RMA_SIZES)


def test_native_latency_model_matches_sim(fig4):
    for size, sim_lat in zip(fig4.column("size_bytes"), fig4.column("native_s")):
        assert sim_lat == pytest.approx(predicted_native_latency(size), rel=0.02), size


def test_vphi_latency_model_matches_sim(fig4):
    for size, sim_lat in zip(fig4.column("size_bytes"), fig4.column("vphi_s")):
        assert sim_lat == pytest.approx(predicted_vphi_latency(size), rel=0.02), size


def test_native_rma_model_matches_sim(fig5):
    for size, sim_bw in zip(fig5.column("size_bytes"), fig5.column("native_bps")):
        model_bw = size / predicted_native_rma_time(size)
        assert sim_bw == pytest.approx(model_bw, rel=0.03), size


def test_vphi_rma_model_matches_sim(fig5):
    for size, sim_bw in zip(fig5.column("size_bytes"), fig5.column("vphi_bps")):
        model_bw = size / predicted_vphi_rma_time(size)
        assert sim_bw == pytest.approx(model_bw, rel=0.05), size


def test_csv_export_roundtrip(fig4):
    csv = to_csv(fig4)
    lines = csv.strip().split("\n")
    assert lines[0] == "size_bytes,native_s,vphi_s"
    assert len(lines) == 1 + len(LAT_SIZES)
    # values parse back
    first = lines[1].split(",")
    assert int(first[0]) == LAT_SIZES[0]
    assert float(first[1]) > 0


def test_series_column_access(fig4):
    assert fig4.column("size_bytes") == LAT_SIZES
    with pytest.raises(ValueError):
        fig4.column("nope")
