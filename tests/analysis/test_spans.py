"""Unit coverage for the span analysis helpers (no machine required)."""

from repro.analysis import (
    check_span_invariants,
    render_span_breakdown,
    span_breakdown,
    validate_chrome_trace,
)
from repro.analysis.spans import OpSpanBreakdown
from repro.sim import Tracer


def make_span(t, op, start, marks, status="ok", tag=None):
    span = t.new_span(op, vm="vm0")
    span.start = start
    for phase, at in marks:
        span.mark(phase, at)
    if tag is not None:
        t.bind_span(tag, span)
    t.end_span(span, status)
    return span


def clocked():
    t = Tracer()
    t.bind_clock(lambda: 0.0)
    return t


def test_span_breakdown_aggregates_by_op_and_status():
    t = clocked()
    make_span(t, "send", 0.0, [("marshal", 1.0), ("ring", 3.0)])
    make_span(t, "send", 10.0, [("marshal", 12.0), ("ring", 13.0)])
    make_span(t, "recv", 0.0, [("marshal", 0.5)], status="error")

    bd = span_breakdown(t)
    assert set(bd) == {"send", "recv"}
    send = bd["send"]
    assert send.count == 2
    assert send.total == 6.0
    assert send.mean == 3.0
    assert send.phases == {"marshal": 3.0, "ring": 3.0}
    assert send.statuses == {"ok": 2}
    assert bd["recv"].statuses == {"error": 1}
    # filters
    assert set(span_breakdown(t, ops=["send"])) == {"send"}
    assert set(span_breakdown(t, statuses=["error"])) == {"recv"}


def test_breakdown_phase_helpers():
    bd = OpSpanBreakdown("send", count=2, total=4.0,
                         phases={"ring": 1.0, "marshal": 2.0, "weird": 1.0})
    assert bd.phase_share("ring") == 0.25
    assert bd.phase_share("missing") == 0.0
    ordered = [p for p, _ in bd.ordered_phases()]
    # canonical datapath order first, unknown extras last
    assert ordered == ["marshal", "ring", "weird"]


def test_render_span_breakdown_empty_and_populated():
    assert "(no spans recorded)" in render_span_breakdown({})
    t = clocked()
    make_span(t, "send", 0.0, [("marshal", 1.0)])
    text = render_span_breakdown(span_breakdown(t))
    assert "send" in text and "marshal" in text and "100.0%" in text


def test_invariants_pass_on_clean_spans():
    t = clocked()
    make_span(t, "send", 0.0, [("marshal", 1.0), ("ring", 2.0)], tag=1)
    assert check_span_invariants(t) == []


def test_invariants_catch_markless_and_statusless_spans():
    t = clocked()
    span = t.new_span("send")
    span.status = "ok"  # bypass end_span: a hand-rolled broken record
    t.spans.append(span)
    problems = check_span_invariants(t)
    assert any("no phase marks" in p for p in problems)

    t2 = clocked()
    s2 = t2.new_span("recv")
    s2.mark("marshal", 1.0)
    t2.spans.append(s2)  # stored but never ended
    assert any("no status" in p for p in check_span_invariants(t2))


def test_invariants_catch_leaked_open_spans():
    t = clocked()
    t.bind_span(7, t.new_span("send"))
    problems = check_span_invariants(t)
    assert any("still open" in p for p in problems)
    assert check_span_invariants(t, require_closed=False) == []


def test_invariants_catch_telescoping_gaps():
    t = clocked()
    span = make_span(t, "send", 0.0, [("marshal", 1.0)])
    # corrupt the record after the fact: elapsed no longer matches
    span.marks.append(("ring", 0.5))  # non-monotone AND breaks the sum
    problems = check_span_invariants(t)
    assert any("precedes" in p for p in problems)


def test_validate_chrome_trace_accepts_good_doc():
    doc = {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "vm0"}},
            {"name": "send", "ph": "X", "pid": 1, "tid": 3,
             "ts": 0.0, "dur": 5.0, "args": {"status": "ok"}},
        ],
        "displayTimeUnit": "ms",
    }
    assert validate_chrome_trace(doc) == []


def test_validate_chrome_trace_rejects_malformed_docs():
    assert validate_chrome_trace([]) == ["document is list, expected object"]
    assert validate_chrome_trace({}) == ["missing traceEvents array"]
    bad = {
        "traceEvents": [
            "nope",
            {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -1.0, "dur": 1.0},
            {"name": "x", "ph": "X", "pid": "one", "tid": 1, "ts": 0.0, "dur": 0.0},
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert any("not an object" in p for p in problems)
    assert any("unsupported phase" in p for p in problems)
    assert any("ts must be a non-negative number" in p for p in problems)
    assert any("pid must be an integer" in p for p in problems)
    assert any("missing 'dur'" in p for p in problems)
