"""Request timelines reconstruct the Fig 3 I/O path from live traces."""

import pytest

from repro import Machine
from repro.analysis.timeline import render_timeline, request_timeline, traced_tags
from repro.sim import us

PORT = 9950


@pytest.fixture
def traced_vm():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    vm.vphi.frontend.tracer.enable("vphi.timeline")
    machine.tracer.enable("vphi.timeline")
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), PORT))
        yield from glib.send(ep, b"\x01")

    machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    return machine, vm


def test_timeline_covers_the_fig3_path(traced_vm):
    machine, vm = traced_vm
    tags = traced_tags(vm)
    assert len(tags) == 3  # open, connect, send
    send_tag = tags[-1]
    steps = request_timeline(vm, machine, send_tag)
    messages = [s.message for s in steps]
    assert messages == [
        "request posted to ring",
        "backend kicked (vmexit)",
        "backend mapped buffers, dispatching",
        "host call returned, irq injected",
        "response reaped after wakeup",
    ]
    # elapsed times are monotone and end near the 382us total minus the
    # frontend marshalling/copies before the first record
    elapsed = [s.elapsed for s in steps]
    assert all(b >= a for a, b in zip(elapsed, elapsed[1:]))
    assert elapsed[-1] == pytest.approx(us(377), rel=0.02)


def test_render_is_readable(traced_vm):
    machine, vm = traced_vm
    tag = traced_tags(vm)[-1]
    text = render_timeline(request_timeline(vm, machine, tag))
    assert "request timeline (send)" in text
    assert "irq injected" in text
    assert "total ring round trip" in text


def test_untraced_tag_is_empty(traced_vm):
    machine, vm = traced_vm
    assert request_timeline(vm, machine, 10_000_000) == []
    assert "no timeline records" in render_timeline([])
