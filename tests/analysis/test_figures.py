"""Figure-data API: the dgemm series generator and CSV round trips."""

import pytest

from repro.analysis import fig678_dgemm, to_csv
from repro.workloads import input_bytes


@pytest.fixture(scope="module")
def series():
    return fig678_dgemm(threads=112, problem_sizes=[256, 512])


def test_dgemm_series_columns(series):
    assert series.columns == [
        "n", "input_bytes", "native_total_s", "vphi_total_s", "compute_s"
    ]
    assert series.column("n") == [256, 512]
    assert series.column("input_bytes") == [input_bytes(256), input_bytes(512)]


def test_dgemm_series_shape(series):
    natives = series.column("native_total_s")
    vphis = series.column("vphi_total_s")
    for nat, vp in zip(natives, vphis):
        assert vp > nat  # vPHI always costs something
    # bigger problems take longer
    assert natives[1] > natives[0]


def test_dgemm_series_csv(series):
    csv = to_csv(series)
    lines = csv.strip().split("\n")
    assert lines[0].startswith("n,input_bytes")
    assert len(lines) == 3
