"""The calibration anchors from §IV must hold in closed form."""

import pytest

from repro.analysis.calibration import (
    CARD_3120P,
    GBPS,
    HOST,
    SCIF_COSTS,
    VPHI_COSTS,
    predicted_native_latency,
    predicted_native_rma_time,
    predicted_vphi_latency,
    predicted_vphi_rma_time,
)
from repro.sim import US


def test_native_one_byte_latency_is_7us():
    assert SCIF_COSTS.one_byte_latency == pytest.approx(7 * US)
    assert predicted_native_latency(1) == pytest.approx(7 * US, rel=0.01)


def test_vphi_one_byte_latency_is_382us():
    assert predicted_vphi_latency(1) == pytest.approx(382 * US, rel=0.005)


def test_vphi_overhead_is_375us():
    overhead = predicted_vphi_latency(1) - predicted_native_latency(1)
    assert overhead == pytest.approx(375 * US, rel=0.005)


def test_wait_scheme_is_93_percent_of_overhead():
    assert VPHI_COSTS.wait_scheme_share == pytest.approx(0.93, abs=0.005)


def test_latency_offset_constant_across_sizes():
    """Fig 4: the native->vPHI gap stays (nearly) constant as size grows."""
    gaps = [
        predicted_vphi_latency(n) - predicted_native_latency(n)
        for n in (1, 64, 1024, 65536)
    ]
    assert max(gaps) - min(gaps) < 0.05 * gaps[0]  # <5% drift


def test_native_rma_peak_is_6_4_gbps():
    size = 256 << 20
    bw = size / predicted_native_rma_time(size)
    assert bw == pytest.approx(6.4 * GBPS, rel=0.01)


def test_vphi_rma_peak_is_72_percent():
    size = 256 << 20
    native = size / predicted_native_rma_time(size)
    vphi = size / predicted_vphi_rma_time(size)
    assert vphi / native == pytest.approx(0.72, abs=0.015)
    assert vphi == pytest.approx(4.6 * GBPS, rel=0.02)


def test_card_peak_dp_is_about_1_tflop():
    assert CARD_3120P.peak_dp_flops == pytest.approx(1.003e12, rel=0.01)
    assert CARD_3120P.usable_cores == 56


def test_host_memcpy_bandwidth_sane():
    # must exceed the PCIe link or the bounce copy would dominate transfers
    assert HOST.memcpy_bandwidth > SCIF_COSTS.rma_bandwidth
