"""SLO accounting: Jain's index, histogram merging, report rendering."""

import math

import pytest

from repro.analysis import jain_index, merged_latency_stat, qos_stats
from repro.analysis.qos import QosReport, TenantSLO, render_qos
from repro.sim.trace import LatencyStat


class TestJain:
    def test_perfectly_even(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_tenant_has_everything(self):
        assert jain_index([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_empty_and_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_known_value(self):
        # J([1,2,3]) = 36 / (3 * 14)
        assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)


class _FakeTracer:
    def __init__(self, stats):
        self.stats = stats


class _FakeVm:
    def __init__(self, stats):
        self.tracer = _FakeTracer(stats)


def _stat(name, samples):
    s = LatencyStat(name)
    for x in samples:
        s.add(x)
    return s


class TestMergedHistogram:
    def test_merges_only_op_latency_keys(self):
        vm = _FakeVm({
            "vphi.op.send.latency": _stat("a", [1e-5, 2e-5]),
            "vphi.op.vreadfrom.latency": _stat("b", [4e-4]),
            "vphi.ring.kicks": _stat("c", [99.0]),  # not an op latency
        })
        merged = merged_latency_stat(vm)
        assert merged.count == 3
        assert merged.max == pytest.approx(4e-4)
        assert merged.min == pytest.approx(1e-5)

    def test_percentiles_track_merged_population(self):
        fast = [1e-5] * 90
        slow = [1e-3] * 10
        vm = _FakeVm({
            "vphi.op.send.latency": _stat("a", fast),
            "vphi.op.writeto.latency": _stat("b", slow),
        })
        merged = merged_latency_stat(vm)
        assert merged.p50 < 1e-4
        assert merged.p99 > 5e-4

    def test_empty_vm_merges_empty(self):
        merged = merged_latency_stat(_FakeVm({}))
        assert merged.count == 0


def _slo(name, share, tput, **kw):
    defaults = dict(priority=0, offered=100, completed=80, shed=15,
                    errors=5, goodput=0.0, p50=1e-5, p95=2e-5, p99=3e-5,
                    mean=1.5e-5)
    defaults.update(kw)
    return TenantSLO(name=name, share=share, throughput=tput, **defaults)


class TestReport:
    def make_report(self):
        tenants = (
            _slo("gold-0", 4.0, 400.0),
            _slo("gold-1", 4.0, 400.0),
            _slo("bronze-0", 1.0, 100.0),
            _slo("effort-0", 0.0, 25.0),
        )
        weighted = [t.throughput / t.share for t in tenants if t.share > 0]
        return QosReport(
            policy="wfq", duration=0.01, tenants=tenants,
            jain=jain_index(t.throughput for t in tenants),
            weighted_jain=jain_index(weighted),
            total_offered=400, total_completed=320, total_shed=60,
            total_errors=20,
        )

    def test_weighted_jain_excludes_best_effort(self):
        report = self.make_report()
        # gold and bronze normalize to exactly 100 each -> perfect
        assert report.weighted_jain == pytest.approx(1.0)
        assert report.jain < 1.0

    def test_admit_ratio_and_worst_p99(self):
        report = self.make_report()
        assert report.tenants[0].admit_ratio == pytest.approx(0.8)
        assert report.worst_p99 == pytest.approx(3e-5)

    def test_render_contains_headlines_and_rows(self):
        out = render_qos(self.make_report())
        assert "policy=wfq" in out
        assert "Jain's index" in out
        assert "gold-0" in out and "effort-0" in out
        assert "shed" in out

    def test_render_truncates(self):
        out = render_qos(self.make_report(), limit=1)
        assert "... and 3 more tenants" in out
        assert "bronze-0" not in out


class TestQosStatsDuckTyping:
    def test_builds_from_harness_like_object(self):
        class Load:
            def __init__(self, name, share, completed):
                class Spec:
                    pass
                self.spec = Spec()
                self.spec.share = share
                self.spec.priority = 0
                self.name = name
                self.offered = completed + 2
                self.completed = completed
                self.shed = 2
                self.errors = 0
                self.bytes_done = completed * 1024
                self.vm = _FakeVm({
                    "vphi.op.send.latency": _stat("s", [1e-5] * completed),
                })

        class Result:
            class plan:
                duration = 0.01
                policy = "rr"

            loads = [Load("a", 1.0, 10), Load("b", 1.0, 10)]

        report = qos_stats(Result())
        assert report.policy == "rr"
        assert report.total_completed == 20
        assert report.weighted_jain == pytest.approx(1.0)
        assert not math.isnan(report.tenants[0].p99)
