"""Concurrency accounting: windowed occupancy via snapshots.

The historical bug: ``concurrency_stats(vm, elapsed=sub_window)`` divided
the *run-total* paused time by the caller's sub-window, inflating
event-loop occupancy (silently masked by the ``min(..., 1.0)`` clamp).
The snapshot API measures a window by differencing counters captured at
its boundaries instead.
"""

import pytest

from repro import Machine
from repro.analysis import concurrency_snapshot, concurrency_stats
from repro.workloads import ClientContext, sendrecv_latency


@pytest.fixture(scope="module")
def two_window_run():
    """One blocking-dispatch VM, two workload bursts with a snapshot
    taken at the boundary between them."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    sendrecv_latency(machine, ClientContext.guest(vm), [1, 1024])
    snap = concurrency_snapshot(vm)
    sendrecv_latency(machine, ClientContext.guest(vm), [1, 1024, 65536])
    return machine, vm, snap


def test_snapshot_window_counts_only_its_own_pauses(two_window_run):
    machine, vm, snap = two_window_run
    whole = concurrency_stats(vm)
    window = concurrency_stats(vm, since=snap)

    assert window.elapsed == pytest.approx(machine.sim.now - snap.time)
    # both windows saw blocking pauses...
    assert snap.paused_seconds > 0
    assert window.event_loop_occupancy > 0
    # ...and the decomposition is exact: first-window paused time plus
    # the second window's share reconstructs the whole-run total.
    paused_window = window.event_loop_occupancy * window.elapsed
    paused_whole = whole.event_loop_occupancy * whole.elapsed
    assert snap.paused_seconds + paused_window == pytest.approx(paused_whole)


def test_legacy_elapsed_rescaling_overstates_the_window(two_window_run):
    """The exact bug the snapshot API fixes, pinned: passing a bare
    sub-window ``elapsed`` divides run-total paused time by it."""
    machine, vm, snap = two_window_run
    window = concurrency_stats(vm, since=snap)
    legacy = concurrency_stats(vm, elapsed=window.elapsed)
    assert legacy.event_loop_occupancy > window.event_loop_occupancy


def test_snapshot_for_wrong_vm_rejected(two_window_run):
    machine, vm, snap = two_window_run
    other = machine.create_vm("vm-other")
    with pytest.raises(ValueError, match="vm0"):
        concurrency_stats(other, since=snap)


def test_whole_run_defaults_unchanged(two_window_run):
    """No-argument behaviour is the historical one: whole-run window."""
    machine, vm, snap = two_window_run
    whole = concurrency_stats(vm)
    assert whole.elapsed == pytest.approx(machine.sim.now)
    assert 0 < whole.event_loop_occupancy <= 1.0
    assert not whole.pooled
