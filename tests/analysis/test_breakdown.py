"""The breakdown analysis reproduces §IV-B's 93% attribution from traces."""

import pytest

from repro import Machine
from repro.analysis.breakdown import overhead_breakdown, render_breakdown
from repro.sim import us
from repro.workloads import ClientContext, sendrecv_latency


@pytest.fixture(scope="module")
def loaded_frontend():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    sendrecv_latency(machine, ClientContext.guest(vm), [1, 1, 1, 1])
    return vm.vphi.frontend


def test_wait_scheme_dominates_at_93_percent(loaded_frontend):
    shares = overhead_breakdown(loaded_frontend)
    top = shares[0]
    assert top.phase == "sleep/wake-up scheme"
    assert top.share_of_overhead == pytest.approx(0.93, abs=0.01)
    assert top.per_request == pytest.approx(us(348.75), rel=0.01)


def test_phases_sum_to_the_fig4_overhead(loaded_frontend):
    shares = overhead_breakdown(loaded_frontend)
    total = sum(p.per_request for p in shares)
    assert total == pytest.approx(us(375), rel=0.02)
    assert sum(p.share_of_overhead for p in shares) == pytest.approx(1.0)


def test_render_is_readable(loaded_frontend):
    text = render_breakdown(loaded_frontend)
    assert "sleep/wake-up scheme" in text
    assert "93" in text  # the paper's headline number appears
    assert "total overhead" in text


def test_empty_frontend_yields_nothing():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm-quiet")
    assert overhead_breakdown(vm.vphi.frontend) == []
