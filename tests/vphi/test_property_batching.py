"""Properties of segmented and batched submission.

Whatever the ring depth, bounce-chunk size and transfer size, a transfer
split across several ring submissions must reassemble byte-exactly and
its per-segment partial results must aggregate to the caller's total —
and a :meth:`submit_batch` of independent requests must return results
aligned with its calls, in order.
"""

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Machine
from repro.vphi import BatchCall, VPhiConfig, VPhiOp, spec_for

# the nightly chaos job raises this well past the CI default
N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "8"))

_port_counter = [12000]


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True)
@given(
    ring_size=st.sampled_from([8, 16, 32]),
    chunk_size=st.sampled_from([4096, 16384, 65536]),
    size=st.integers(1, 200_000),
    seed=st.integers(0, 2**32 - 1),
)
def test_segmented_rma_reassembles_byte_exact(ring_size, chunk_size, size, seed):
    """Property: for any (ring depth, chunk size, transfer size), a
    vreadfrom whose chunks exceed the ring is split into a batched
    segment sequence that pulls every byte exactly once, and the
    per-segment byte counts sum to the full transfer."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0", vphi_config=VPhiConfig(chunk_size=chunk_size))
    vm.vphi.virtio.ring.__init__(ring_size)
    _port_counter[0] += 1
    port = _port_counter[0]
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    rng = np.random.default_rng(seed)
    content = rng.integers(0, 256, size=size, dtype=np.uint8)
    window = -(-size // 4096) * 4096  # scif windows are page-granular
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(window, populate=True)
        sproc.address_space.write(vma.start, content)
        roff = yield from slib.register(conn, vma.start, window)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)
        return sproc.address_space.read(vma.start, size)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    writeback = rng.integers(0, 256, size=size, dtype=np.uint8)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        n_read = yield from glib.vreadfrom(ep, vma.start, size, roff)
        got = gproc.address_space.read(vma.start, size)
        # and back the other way: segmented writes land byte-exact too
        gproc.address_space.write(vma.start, writeback)
        n_written = yield from glib.vwriteto(ep, vma.start, size, roff)
        yield from glib.send(ep, b"x")
        return n_read, n_written, got

    s = machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    n_read, n_written, got = c.value
    # partial per-segment results aggregate to the caller's total
    assert n_read == size
    assert n_written == size
    assert np.array_equal(got, content)
    assert np.array_equal(s.value, writeback)
    # every segment's bounce chunks were freed
    assert vm.guest_kernel.kmalloc.live == 0


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True)
@given(
    ring_size=st.sampled_from([8, 16, 256]),
    sizes=st.lists(st.integers(1, 8192), min_size=1, max_size=6),
    seed=st.integers(0, 2**32 - 1),
)
def test_submit_batch_results_align_and_arrive_in_order(ring_size, sizes, seed):
    """Property: a batch of sends returns one (result, data) pair per
    call, aligned with the call list, and the receiver observes the
    payload bytes in submission order."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    vm.vphi.virtio.ring.__init__(ring_size)
    _port_counter[0] += 1
    port = _port_counter[0]
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]
    total = sum(sizes)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, total)
        return data

    glib = vm.vphi.libscif(vm.guest_process("app"))
    frontend = vm.vphi.frontend
    send_args = spec_for(VPhiOp.SEND).marshal({})

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        calls = [
            BatchCall(op=VPhiOp.SEND, handle=ep.handle,
                      args=send_args, out_data=p)
            for p in payloads
        ]
        pairs = yield from frontend.submit_batch(calls)
        return pairs

    s = machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    pairs = c.value
    assert len(pairs) == len(payloads)
    for (result, in_data), payload in zip(pairs, payloads):
        assert result == len(payload)  # per-call result, aligned
        assert in_data is None
    # stream order == submission order, byte-exact
    assert np.array_equal(s.value, np.concatenate(payloads))
    assert vm.guest_kernel.kmalloc.live == 0


def test_empty_batch_is_a_noop():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    frontend = vm.vphi.frontend

    def client():
        out = yield from frontend.submit_batch([])
        return out

    p = vm.spawn_guest(client())
    machine.run()
    assert p.value == []
    assert frontend.requests == 0


def test_batch_raises_first_error_after_reaping_all():
    """A failing request in the middle must not leak buffers nor hide
    the successes: the first host-side error surfaces only after every
    response is reaped."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    _port_counter[0] += 1
    port = _port_counter[0]
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 2)

    glib = vm.vphi.libscif(vm.guest_process("app"))
    frontend = vm.vphi.frontend

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        calls = [
            BatchCall(op=VPhiOp.SEND, handle=ep.handle, args={"flags": 1},
                      out_data=np.ones(1, dtype=np.uint8)),
            # bogus handle: the backend rejects it host-side
            BatchCall(op=VPhiOp.SEND, handle=999, args={"flags": 1},
                      out_data=np.ones(1, dtype=np.uint8)),
            BatchCall(op=VPhiOp.SEND, handle=ep.handle, args={"flags": 1},
                      out_data=np.ones(1, dtype=np.uint8)),
        ]
        try:
            yield from frontend.submit_batch(calls)
        except Exception as e:
            return type(e).__name__
        return None

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == "EBADF"
    # all three chains were reaped and released despite the failure
    assert vm.guest_kernel.kmalloc.live == 0
