"""vPHI end-to-end: guest SCIF traffic through the whole stack.

These tests drive the complete path of Fig 3: guest libscif -> frontend
driver (kmalloc bounce) -> virtio ring -> kick/vmexit -> QEMU backend ->
host SCIF driver -> PCIe -> card, and back.
"""

import numpy as np
import pytest

from repro.mem import Buffer
from repro.scif import ECONNREFUSED
from repro.sim import us

PORT = 3000
MB = 1 << 20


def card_echo_server(machine, port=PORT, nbytes=4):
    """Spawn a card server that accepts one connection, echoes nbytes."""
    slib = machine.scif(machine.card_process("server"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, peer = yield from slib.accept(ep)
        data = yield from slib.recv(conn, nbytes)
        yield from slib.send(conn, data.tobytes()[::-1])
        return peer

    return machine.sim.spawn(server())


def test_guest_connect_send_recv_roundtrip(machine, vm):
    card_node = machine.card_node_id(0)
    s = card_echo_server(machine, nbytes=4)
    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        yield from glib.send(ep, b"abcd")
        resp = yield from glib.recv(ep, 4)
        yield from glib.close(ep)
        return resp.tobytes()

    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == b"dcba"
    # the connection originated from the host node (QEMU is a host process)
    assert s.value[0] == 0


def test_one_byte_latency_anchor_382us(machine, vm):
    """Fig 4 anchor: vPHI 1-byte send completes in ~382 us (vs 7 native)."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    glib = vm.vphi.libscif(vm.guest_process("bench"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        yield from glib.send(ep, b"\x01")
        return machine.sim.now - t0

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == pytest.approx(us(382), rel=0.01)


def test_overhead_breakdown_93_percent_wait_scheme(machine, vm):
    """§IV-B: ~93% of the +375 us overhead is the frontend wait scheme."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    glib = vm.vphi.libscif(vm.guest_process("bench"))
    fe = vm.vphi.frontend

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        fe.tracer.accumulators.pop("vphi.wait_scheme_time", None)
        t0 = machine.sim.now
        yield from glib.send(ep, b"\x01")
        total = machine.sim.now - t0
        wait = fe.tracer.accumulators["vphi.wait_scheme_time"]
        return total, wait

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    total, wait = c.value
    overhead = total - us(7)
    assert overhead == pytest.approx(us(375), rel=0.01)
    assert wait / overhead == pytest.approx(0.93, abs=0.01)


def test_large_send_is_chunked_at_kmalloc_limit(machine, vm):
    """A 10 MB transfer crosses the ring as 3 bounce chunks (4+4+2 MB)."""
    card_node = machine.card_node_id(0)
    size = 10 * MB
    payload = Buffer.pattern(size, seed=5)
    slib = machine.scif(machine.card_process("server"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, size)
        return data

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        yield from glib.send(ep, payload)

    s = machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    assert np.array_equal(s.value, payload.data)
    # no bounce chunk exceeded KMALLOC_MAX_SIZE and none leaked
    assert vm.guest_kernel.kmalloc.live == 0
    assert vm.guest_kernel.kmalloc.total_allocs >= 3


def test_error_propagates_through_the_ring(machine, vm):
    card_node = machine.card_node_id(0)
    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        with pytest.raises(ECONNREFUSED):
            yield from glib.connect(ep, (card_node, 5999))  # nobody listens
        return True

    c = vm.spawn_guest(client())
    machine.run()
    assert c.value is True
    assert vm.vphi.backend.errors_returned == 1
    # bounce buffers were reclaimed despite the error
    assert vm.guest_kernel.kmalloc.live == 0


def test_backend_endpoint_is_host_process(machine, vm):
    """The accepted peer address proves the request came from QEMU (host
    node 0), not from some guest-visible node — §III's sharing argument."""
    card_node = machine.card_node_id(0)
    s = card_echo_server(machine, nbytes=1)
    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        yield from glib.send(ep, b"x")
        yield from glib.recv(ep, 1)

    vm.spawn_guest(client())
    machine.run()
    assert s.value[0] == 0
    backend_ep = list(vm.vphi.backend.endpoints.values())[0]
    assert backend_ep.owner == f"qemu-{vm.name}"


def test_guest_sysfs_mirrors_host_mic_tree(machine, vm):
    """§III: vPHI exposes the same card info inside the guest so
    micnativeloadex & friends work unmodified."""
    gs = vm.guest_kernel.sysfs
    assert gs.read("sys/class/mic/mic0/family") == "x100"
    assert gs.read("sys/class/mic/mic0/version") == "3120P"
    assert gs.read("sys/class/mic/mic0/state") == "online"


def test_same_client_code_runs_native_and_virtualized(machine, vm):
    """The binary-compatibility rendering: one client body, two stacks."""
    card_node = machine.card_node_id(0)

    def make_server(port):
        slib = machine.scif(machine.card_process(f"srv{port}"))

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, port)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            data = yield from slib.recv(conn, 5)
            yield from slib.send(conn, data)

        machine.sim.spawn(server())

    def client_body(lib, port):
        """Written once against the SCIF API; lib may be native or guest."""
        ep = yield from lib.open()
        yield from lib.connect(ep, (card_node, port))
        yield from lib.send(ep, b"hello")
        echo = yield from lib.recv(ep, 5)
        yield from lib.close(ep)
        return echo.tobytes()

    make_server(PORT)
    make_server(PORT + 1)
    native_lib = machine.scif(machine.host_process("native-client"))
    guest_lib = vm.vphi.libscif(vm.guest_process("guest-client"))
    n = machine.sim.spawn(client_body(native_lib, PORT))
    g = vm.spawn_guest(client_body(guest_lib, PORT + 1))
    machine.run()
    assert n.value == b"hello"
    assert g.value == b"hello"


def test_vm_frozen_during_blocking_request(machine, vm):
    """§III blocking mode: while the backend services a (blocking) SEND,
    other guest threads make no progress."""
    card_node = machine.card_node_id(0)
    card_echo_server(machine, nbytes=1)
    glib = vm.vphi.libscif(vm.guest_process("app"))
    ticks = []

    def other_guest_thread():
        # one 20us sleep: its wakeup lands inside the backend's blocking
        # window (which opens ~10us after submit and lasts ~13us), so the
        # resumption is deferred until the VM unfreezes.
        t0 = machine.sim.now
        yield machine.sim.timeout(us(20))
        ticks.append(machine.sim.now - t0)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        vm.spawn_guest(other_guest_thread())
        yield from glib.send(ep, b"x")
        yield from glib.recv(ep, 1)

    vm.spawn_guest(client())
    machine.run()
    assert vm.domain.paused_time > 0
    # the 20us timer was stretched by the freeze
    assert ticks[0] > us(20.5)
