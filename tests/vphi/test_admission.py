"""Admission control: watermarks, hysteresis, and the no-strand property.

Unit half drives the AdmissionController against a stub frontend (the
gate is pure accounting); the e2e half arms real watermarks on a live
frontend and pins the three documented invariants: one admission per
guest-visible submit (segmentation never double-admits), replay bypasses
the gate, and no admission decision can strand a request — every arrival
gets a typed completion even under Hypothesis-generated load patterns.
"""

import os
from collections import Counter

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.scif import ScifError
from repro.scif.errors import EBUSY
from repro.vphi import VPhiConfig
from repro.vphi.ops import VPhiOp, spec_for
from repro.vphi.qos import AdmissionController

N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "10"))

KB = 1 << 10
PORT = 9800


# ----------------------------------------------------------------------
# unit: the gate is pure accounting
# ----------------------------------------------------------------------
class _StubTracer:
    def __init__(self):
        self.counters = Counter()

    def count(self, key, n=1):
        self.counters[key] += n


class _StubVm:
    name = "vm-stub"


class _StubFrontend:
    def __init__(self, **cfg):
        self.config = VPhiConfig(**cfg)
        self.tracer = _StubTracer()
        self.vm = _StubVm()


def make(**cfg) -> AdmissionController:
    return AdmissionController(_StubFrontend(**cfg))


SEND = spec_for(VPhiOp.SEND)


class TestDepthWatermark:
    def test_disabled_without_watermarks(self):
        adm = make()
        assert not adm.enabled

    def test_sheds_at_high_water_resumes_at_low(self):
        adm = make(admit_queue_depth=4, admit_hysteresis=0.5)
        for _ in range(4):
            adm.admit(SEND)
        assert adm.depth == 4
        with pytest.raises(EBUSY):
            adm.admit(SEND)
        assert adm.shed == 1
        # drain to 3: still above low water (2) -> still shedding
        adm.finish(1e-5)
        with pytest.raises(EBUSY):
            adm.admit(SEND)
        # drain to 2 == low water: gate re-opens
        adm.finish(1e-5)
        adm.admit(SEND)
        assert adm.admitted == 5
        assert adm.shed == 2
        assert adm.tracer.counters["vphi.qos.shed"] == 2
        assert adm.tracer.counters[SEND.shed_key] == 2
        assert adm.tracer.counters["vphi.qos.admitted"] == 5

    def test_batch_admits_or_sheds_atomically(self):
        adm = make(admit_queue_depth=8)
        adm.admit(SEND, n=5)
        assert adm.depth == 5
        adm.admit(SEND, n=3)   # reaches high water only after admitting
        with pytest.raises(EBUSY):
            adm.admit(SEND, n=4)
        assert adm.shed == 4, "the whole refused batch counts as shed"
        assert adm.depth == 8, "a refused batch admits nothing"


class TestLatencyWatermark:
    def test_ewma_crossing_sheds_and_decays_open(self):
        adm = make(admit_latency=1e-3, admit_hysteresis=0.5,
                   admit_ewma_alpha=1.0)  # alpha 1: ewma = last sample
        adm.admit(SEND)
        adm.admit(SEND)
        adm.finish(5e-3)  # one slow completion trips the watermark
        with pytest.raises(EBUSY):
            adm.admit(SEND)
        adm.finish(1e-4)  # fast completion decays below low water…
        # …but the frontend drained, which re-opens regardless
        assert adm.depth == 0
        adm.admit(SEND)
        adm.finish(2e-4)

    def test_empty_frontend_always_reopens_despite_stale_ewma(self):
        """The no-deadlock guarantee: depth 0 overrides any EWMA."""
        adm = make(admit_latency=1e-3, admit_ewma_alpha=1.0)
        adm.admit(SEND)
        adm.finish(1.0)  # catastrophic latency, ewma far above the mark
        assert adm.ewma == 1.0
        adm.admit(SEND)  # yet an idle frontend must admit
        assert adm.shed == 0


# ----------------------------------------------------------------------
# e2e: live frontend with armed watermarks
# ----------------------------------------------------------------------
def window_server(machine, port, size=256 * KB, fill=0x5A):
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        while True:
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(size, populate=True)
            sproc.address_space.write(
                vma.start, np.full(size, fill, dtype=np.uint8))
            roff = yield from slib.register(conn, vma.start, size)
            if not ready.triggered:
                ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


def test_segmented_transfer_admits_once():
    """A read bigger than one segment re-enters the batch path
    internally; the gate must see ONE guest-visible request."""
    m = Machine(cards=1).boot()
    vm = m.create_vm("vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig(
        chunk_size=4 * KB, max_inflight=4, admit_queue_depth=100))
    ready = window_server(m, PORT)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    size = 200 * KB  # far beyond one segment at 4 KB chunks

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        yield from glib.vreadfrom(ep, vma.start, size, roff)
        return gproc.address_space.read(vma.start, size).sum()

    c = vm.spawn_guest(client())
    m.run()
    assert c.triggered and c.value == size * 0x5A
    adm = vm.vphi.frontend.admission
    # open + connect + vreadfrom = 3 guest-visible submits, regardless
    # of how many segments the read fanned into
    assert adm.admitted == 3
    assert adm.depth == 0


def test_replay_bypasses_admission():
    """Session-recovery replay re-issues journaled ops through the
    frontend; those must not be re-admitted (or re-shed)."""
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.CARD_RESET, op="vreadfrom", vm="vm0", at=(1,),
    ))
    m = Machine(cards=1, fault_plan=plan).boot()
    vm = m.create_vm("vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig(
        recovery_policy="queue", admit_queue_depth=100))
    ready = window_server(m, PORT + 1)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    size = 16 * KB

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT + 1))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        done = 0
        for _ in range(3):
            try:
                yield from glib.vreadfrom(ep, vma.start, size, roff)
                done += 1
            except ScifError:
                pass
        return done

    c = vm.spawn_guest(client())
    m.run()
    assert c.triggered and c.value >= 1
    adm = vm.vphi.frontend.admission
    # the reset triggers a journal replay of open+connect (+ registers);
    # admitted must still equal the guest-visible submits only
    assert adm.admitted == 5  # open, connect, 3x vreadfrom
    assert adm.shed == 0
    assert adm.depth == 0


# ----------------------------------------------------------------------
# the no-strand property
# ----------------------------------------------------------------------
@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    depth=st.integers(1, 6),
    hysteresis=st.floats(0.0, 1.0),
    burst=st.lists(st.integers(1, 16 * KB), min_size=1, max_size=24),
)
def test_no_admission_decision_strands_a_request(depth, hysteresis, burst):
    """Whatever the watermark config and open-loop burst shape, every
    submitted request resolves with a typed completion — admitted work
    finishes, shed work raises EBUSY, nothing waits forever — and the
    admission ledger balances."""
    m = Machine(cards=1).boot()
    vm = m.create_vm("vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig(
        backend_workers=2, max_inflight=4,
        admit_queue_depth=depth, admit_hysteresis=hysteresis))
    ready = window_server(m, PORT + 2)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    outcomes = {"ok": 0, "shed": 0}
    setup_done = m.sim.event()

    def opener():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT + 2))
        roff = yield ready
        vma = gproc.address_space.mmap(64 * KB, populate=True)
        setup_done.succeed((ep, vma, roff))

    def one(nbytes):
        ep, vma, roff = yield setup_done
        try:
            yield from glib.vreadfrom(ep, vma.start, min(nbytes, 64 * KB),
                                      roff)
        except EBUSY:
            outcomes["shed"] += 1
        else:
            outcomes["ok"] += 1

    vm.spawn_guest(opener())
    for nbytes in burst:
        vm.spawn_guest(one(nbytes))
    m.run()  # termination at all = nothing stranded
    assert outcomes["ok"] + outcomes["shed"] == len(burst)
    adm = vm.vphi.frontend.admission
    assert adm.depth == 0, "admitted work not retired"
    assert adm.shed == outcomes["shed"]
    # ledger: every admission was retired through finish()
    assert adm.admitted >= outcomes["ok"]
