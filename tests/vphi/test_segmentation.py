"""Multi-segment requests: transfers larger than the ring's capacity are
split into sequential submissions with correctly advancing RMA offsets."""

import numpy as np
import pytest

from repro import Machine
from repro.vphi.frontend import _SegmentSinkChain

MB = 1 << 20
PORT = 9990


@pytest.fixture
def small_ring_vm():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    # ring of 8 -> max 4 data descriptors -> 16MB max per submission
    vm.vphi.virtio.ring.__init__(8)
    return machine, vm


def test_vreadfrom_spanning_multiple_segments(small_ring_vm):
    machine, vm = small_ring_vm
    size = 40 * MB  # 3 segments: 16 + 16 + 8
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        # position-dependent content so any offset slip is detectable
        content = (np.arange(size, dtype=np.int64) % 251).astype(np.uint8)
        sproc.address_space.write(vma.start, content)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed((roff, content))
        yield from slib.recv(conn, 1)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff, content = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        reqs_before = vm.vphi.frontend.requests
        n = yield from glib.vreadfrom(ep, vma.start, size, roff)
        segments = vm.vphi.frontend.requests - reqs_before
        got = gproc.address_space.read(vma.start, size)
        yield from glib.send(ep, b"x")
        return n, segments, got, content

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    n, segments, got, content = c.value
    assert n == size
    assert segments == 3  # 16 + 16 + 8 MB
    assert np.array_equal(got, content)
    assert vm.guest_kernel.kmalloc.live == 0


def test_vwriteto_spanning_multiple_segments(small_ring_vm):
    machine, vm = small_ring_vm
    size = 24 * MB  # 2 segments
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)
        return sproc.address_space.read(vma.start, size)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    payload = (np.arange(size, dtype=np.int64) % 241).astype(np.uint8)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        gproc.address_space.write(vma.start, payload)
        yield from glib.vwriteto(ep, vma.start, size, roff)
        yield from glib.send(ep, b"x")

    s = machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    assert np.array_equal(s.value, payload)


# ----------------------------------------------------------------------
# short-read compaction across segments (_SegmentSinkChain)
#
# The pre-streaming datapath concatenated per-segment payloads and wrote
# one contiguous prefix into the guest buffer, so a short middle segment
# (partial completion on a fault/retry path) compacted later segments
# down.  The streaming sink chain must keep those guest-visible bytes.
# ----------------------------------------------------------------------
def _collect_chain(segment_payloads):
    """Stream ``segment_payloads`` (bytes per segment, possibly short)
    through a chain; returns the (offset -> bytes) writes in order."""
    writes = []
    chain = _SegmentSinkChain(lambda off, view: writes.append((off, bytes(view))))
    for payload in segment_payloads:
        consume = chain.segment()
        # mimic scatter_to: contiguous views in offset order, possibly
        # split across several chunk views
        off = 0
        for piece in payload:
            consume(off, piece)
            off += len(piece)
    return writes


def test_sink_chain_full_segments_use_nominal_offsets():
    writes = _collect_chain([[b"aaaa"], [b"bb", b"bb"], [b"cc"]])
    assert writes == [(0, b"aaaa"), (4, b"bb"), (6, b"bb"), (8, b"cc")]


def test_sink_chain_short_middle_segment_compacts_followers():
    # segment sizes 4 / 4 / 4, but the middle one only produced 1 byte:
    # the old flat gather wrote a 9-byte contiguous prefix — so must we
    writes = _collect_chain([[b"aaaa"], [b"B"], [b"cccc"]])
    assert writes == [(0, b"aaaa"), (4, b"B"), (5, b"cccc")]
    flat = bytearray(12)
    n = 0
    for off, data in writes:
        flat[off : off + len(data)] = data
        n = max(n, off + len(data))
    assert bytes(flat[:n]) == b"aaaaBcccc"  # contiguous, no hole


def test_sink_chain_zero_byte_segment_contributes_nothing():
    # a fully-short segment never streams a view (resp.written == 0
    # skips the scatter entirely) and must not advance the base
    writes = _collect_chain([[b"aa"], [], [b"zz"]])
    assert writes == [(0, b"aa"), (2, b"zz")]
