"""Multi-segment requests: transfers larger than the ring's capacity are
split into sequential submissions with correctly advancing RMA offsets."""

import numpy as np
import pytest

from repro import Machine

MB = 1 << 20
PORT = 9990


@pytest.fixture
def small_ring_vm():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    # ring of 8 -> max 4 data descriptors -> 16MB max per submission
    vm.vphi.virtio.ring.__init__(8)
    return machine, vm


def test_vreadfrom_spanning_multiple_segments(small_ring_vm):
    machine, vm = small_ring_vm
    size = 40 * MB  # 3 segments: 16 + 16 + 8
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        # position-dependent content so any offset slip is detectable
        content = (np.arange(size, dtype=np.int64) % 251).astype(np.uint8)
        sproc.address_space.write(vma.start, content)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed((roff, content))
        yield from slib.recv(conn, 1)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff, content = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        reqs_before = vm.vphi.frontend.requests
        n = yield from glib.vreadfrom(ep, vma.start, size, roff)
        segments = vm.vphi.frontend.requests - reqs_before
        got = gproc.address_space.read(vma.start, size)
        yield from glib.send(ep, b"x")
        return n, segments, got, content

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    n, segments, got, content = c.value
    assert n == size
    assert segments == 3  # 16 + 16 + 8 MB
    assert np.array_equal(got, content)
    assert vm.guest_kernel.kmalloc.live == 0


def test_vwriteto_spanning_multiple_segments(small_ring_vm):
    machine, vm = small_ring_vm
    size = 24 * MB  # 2 segments
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("srv")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)
        return sproc.address_space.read(vma.start, size)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)
    payload = (np.arange(size, dtype=np.int64) % 241).astype(np.uint8)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        gproc.address_space.write(vma.start, payload)
        yield from glib.vwriteto(ep, vma.start, size, roff)
        yield from glib.send(ep, b"x")

    s = machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    assert np.array_equal(s.value, payload)
