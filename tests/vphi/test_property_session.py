"""Chaos property: random reset timing never corrupts a session.

Whatever instant Hypothesis picks for a CARD_RESET or BACKEND_RESTART —
first op, mid-storm, twice in a row — and whichever degraded-mode policy
is armed, the frontend must never deadlock, never leak a ring descriptor
or bounce buffer, and never let a stale-epoch completion mutate rebuilt
session state: after quiescence the journal, the handle translation and
the backend's endpoint table must agree exactly, and a final fault-free
read must return uncorrupted data.
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.mem import PAGE_SIZE
from repro.scif import MapFlag, ScifError
from repro.vphi import VPhiConfig

# the nightly chaos job raises this well past the CI default
N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "10"))

PORT = 9300
KB = 1 << 10
WIN = 128 * KB
FIXED_ROFF = 0x80000


def chaos_server(machine, port):
    """Accept-forever card peer re-registering one window at a fixed
    offset, so replayed sessions always find the same remote state."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(WIN, populate=True)
        sproc.address_space.write(vma.start, np.full(WIN, 0x5A, dtype=np.uint8))
        while True:
            conn, _ = yield from slib.accept(ep)
            roff = yield from slib.register(
                conn, vma.start, WIN,
                offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
            )
            if not ready.triggered:
                ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    policy=st.sampled_from(["queue", "fail_fast", "circuit_break"]),
    kind=st.sampled_from([FaultKind.CARD_RESET, FaultKind.BACKEND_RESTART]),
    workers=st.sampled_from([0, 2]),
    fire_at=st.lists(st.integers(0, 8), min_size=1, max_size=3, unique=True),
    ops=st.lists(st.sampled_from(["read", "write", "mmap_read"]),
                 min_size=2, max_size=6),
)
def test_random_reset_timing_never_deadlocks_leaks_or_corrupts(
        policy, kind, workers, fire_at, ops):
    plan = FaultPlan.of(FaultSpec(kind=kind, vm="vm0", at=tuple(sorted(fire_at))))
    m = Machine(cards=1, fault_plan=plan).boot()
    vm = m.create_vm(
        "vm0", ram_bytes=2 << 30,
        vphi_config=VPhiConfig(
            recovery_policy=policy, backend_workers=workers,
            recovery_max_resets=2, recovery_window=10.0,
        ),
    )
    card = m.card_node_id(0)
    ready = chaos_server(m, PORT)
    gproc = vm.guest_process("chaos-app")
    glib = vm.vphi.libscif(gproc)
    ses = vm.vphi.frontend.session

    def client():
        outcomes = []
        try:
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            gproc.address_space.write(
                lvma.start, np.full(WIN, 0x11, dtype=np.uint8)
            )
            loff = yield from glib.register(ep, lvma.start, WIN)
            mvma = yield from glib.mmap(ep, roff, 2 * PAGE_SIZE)
        except ScifError as err:
            # the reset landed inside session establishment itself
            return [("setup", type(err).__name__)], None
        for verb in ops:
            try:
                if verb == "read":
                    yield from glib.readfrom(ep, loff, WIN, roff)
                elif verb == "write":
                    yield from glib.writeto(ep, loff, WIN, roff)
                else:
                    gproc.address_space.read(mvma.start, 64)
                outcomes.append((verb, "ok"))
            except ScifError as err:
                # typed errors only — anything else crashes the process
                outcomes.append((verb, type(err).__name__))
        # final fault-free verification read, once the dust settles: on a
        # live session it must return uncorrupted remote data.
        final = None
        for _ in range(20):
            if ses.state == "broken":
                break
            if ses.state == "active":
                try:
                    gproc.address_space.write(
                        lvma.start, np.zeros(WIN, dtype=np.uint8)
                    )
                    yield from glib.readfrom(ep, loff, WIN, roff)
                    final = int(gproc.address_space.read(lvma.start, WIN).sum())
                    break
                except ScifError:
                    pass
            yield m.sim.timeout(2e-3)
        return outcomes, final

    c = vm.spawn_guest(client())
    m.run()

    # 1) no deadlock: the client ran to completion
    assert c.triggered, "client deadlocked"
    outcomes, final = c.value

    # 2) no descriptor or bounce-buffer leaks, whatever happened
    ring = vm.vphi.virtio.ring
    assert ring.num_free == ring.size, "leaked ring descriptors"
    assert vm.guest_kernel.kmalloc.live == 0, "leaked bounce buffers"

    # 3) stale completions never mutated rebuilt state: when the session
    # settled ACTIVE, the journal, the translation and the backend's
    # endpoint table agree exactly — no resurrected endpoints, no
    # windows smuggled in by pre-reset completions.
    if ses.state == "active" and ses.resets_seen:
        live = {r.handle for r in ses.journal.endpoints.values() if not r.dead}
        backend_handles = set(vm.vphi.backend.endpoints)
        translated = {ses.translate(h) for h in live}
        assert translated == backend_handles
        for rec in ses.journal.endpoints.values():
            if rec.dead:
                continue
            bep = vm.vphi.backend.endpoints[ses.translate(rec.handle)]
            for off in rec.windows:
                # every journaled window exists card-side post-rebuild
                bep.windows.resolve(off, 1, None)

    # 4) the final verification read (when the session was live) pulled
    # uncorrupted data.  Replay the op log symbolically: reads copy the
    # remote fill into the local window, writes copy local back out; a
    # *failed* RMA may legitimately have torn (SCIF RMA is not atomic),
    # after which the affected buffer's contents are unconstrained.
    if final is not None:
        local, remote = 0x11, 0x5A
        for verb, outcome in outcomes:
            if verb == "mmap_read":
                continue
            if outcome == "ok":
                if verb == "read":
                    local = remote
                else:
                    remote = local
            else:
                if verb == "read":
                    local = None  # torn pull: local contents unknown
                else:
                    remote = None  # torn push: remote contents unknown
        if remote is not None:
            assert final == remote * WIN, "rebuilt window returned corrupt data"
