"""Differential conformance: native SCIF vs the full vPHI path.

The paper's binary-compatibility claim (§I) means a guest caller must be
unable to distinguish vPHI from native libscif by anything except time.
This suite renders that claim testable: every operation in the
:mod:`repro.vphi.ops` registry is exercised by at least one *scenario* —
a client body written once against the shared SCIF call surface — run
three ways on identical fresh machines:

* **native** — a host process calling :class:`~repro.scif.NativeScif`;
* **blocking** — a guest process through frontend -> ring -> backend with
  the paper's whole-VM-pause dispatch;
* **pooled** — the same guest path with ``VPhiConfig(backend_workers=4)``.

Each scenario returns a tuple of plain observables (results, payload
bytes, errno class names, endpoint states); the virtualized runs must
reproduce the native tuple exactly.  Coverage is enforced structurally:
a parametrized test walks ``registered_ops()`` and fails for any op no
scenario claims, so adding an op without conformance coverage breaks CI.
"""

import numpy as np
import pytest

from repro import Machine
from repro.mem import PAGE_SIZE
from repro.scif import PollEvent, ScifError
from repro.vphi import VPhiConfig, VPhiOp, registered_ops

PORT = 4200
KB = 1 << 10

# ----------------------------------------------------------------------
# the two stacks under one interface
# ----------------------------------------------------------------------


class Side:
    """One stack under test: the lib plus the process driving it."""

    def __init__(self, machine, vm=None):
        self.machine = machine
        self.vm = vm
        if vm is None:
            self.proc = machine.host_process("diff-client")
            self.lib = machine.scif(self.proc)
        else:
            self.proc = vm.guest_process("diff-client")
            self.lib = vm.vphi.libscif(self.proc)

    def spawn(self, gen):
        if self.vm is None:
            return self.machine.sim.spawn(gen)
        return self.vm.spawn_guest(gen)

    def ep_state(self, ep) -> str:
        """The backing endpoint's state, looked up per stack: the native
        descriptor directly, the guest handle through the backend table
        (a dropped handle is a closed descriptor)."""
        if self.vm is None:
            return ep.state.value
        bep = self.vm.vphi.backend.endpoints.get(ep.handle)
        return "closed" if bep is None else bep.state.value

    def sysfs_read(self, path: str):
        """scif-adjacent mic sysfs: native reads the host tree, the guest
        forwards SYSFS_READ over the ring."""
        if self.vm is None:
            yield self.machine.sim.timeout(0)
            return self.machine.kernel.sysfs.read(path)
        result, _ = yield from self.vm.vphi.frontend.submit(
            VPhiOp.SYSFS_READ, args={"path": path}
        )
        return result


def err_name(exc: BaseException) -> str:
    return type(exc).__name__


# ----------------------------------------------------------------------
# scenario registry: name -> (ops covered, client body)
# ----------------------------------------------------------------------

SCENARIOS: dict = {}


def scenario(*ops):
    """Declare which registry ops a scenario's observables conform."""

    def wrap(fn):
        SCENARIOS[fn.__name__] = (frozenset(ops), fn)
        return fn

    return wrap


def card_echo_server(machine, port, nbytes):
    """Card-side peer: accept one connection, echo nbytes reversed."""
    slib = machine.scif(machine.card_process(f"srv{port}"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, nbytes)
        yield from slib.send(conn, data.tobytes()[::-1])

    machine.sim.spawn(server())


def card_window_server(machine, port, size, fill):
    """Card-side peer with a registered window; replies with the window
    checksum on request and parks until the client's final byte."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True, name="card-win")
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        while True:
            cmd = yield from slib.recv(conn, 1)
            if cmd.tobytes() == b"s":
                csum = int(sproc.address_space.read(vma.start, size).sum())
                yield from slib.send(conn, np.int64(csum).tobytes())
            else:
                return

    machine.sim.spawn(server())
    return ready


def server_checksum(side, ep):
    """Ask the window server for its current window checksum."""
    yield from side.lib.send(ep, b"s")
    raw = yield from side.lib.recv(ep, 8)
    return int(np.frombuffer(raw.tobytes(), dtype=np.int64)[0])


@scenario(VPhiOp.OPEN, VPhiOp.BIND, VPhiOp.LISTEN, VPhiOp.ACCEPT, VPhiOp.CLOSE)
def conn_lifecycle(side, machine):
    """Server-side lifecycle: open/bind/listen/accept/close state walk."""
    card_node = machine.card_node_id(0)
    clib = machine.scif(machine.card_process("dialer"))

    def dialer():
        ep = yield from clib.open()
        yield from clib.connect(ep, (0, PORT))  # the side listens on host node 0
        yield from clib.recv(ep, 2)

    obs = []
    ep = yield from side.lib.open()
    obs.append(side.ep_state(ep))
    port = yield from side.lib.bind(ep, PORT)
    obs.append((port, side.ep_state(ep)))
    yield from side.lib.listen(ep)
    obs.append(side.ep_state(ep))
    machine.sim.spawn(dialer())
    conn, peer = yield from side.lib.accept(ep)
    obs.append((peer[0], side.ep_state(conn)))
    yield from side.lib.send(conn, b"ok")
    yield from side.lib.close(conn)
    yield from side.lib.close(ep)
    obs.append((side.ep_state(conn), side.ep_state(ep)))
    return (card_node, tuple(obs))


@scenario(VPhiOp.OPEN, VPhiOp.CONNECT, VPhiOp.SEND, VPhiOp.RECV, VPhiOp.CLOSE)
def connect_echo(side, machine):
    """Active open + messaging, plus the refused-connect errno."""
    card_node = machine.card_node_id(0)
    card_echo_server(machine, PORT, nbytes=8)
    obs = []
    dead = yield from side.lib.open()
    try:
        yield from side.lib.connect(dead, (card_node, PORT + 7))  # no listener
    except ScifError as e:
        obs.append(err_name(e))
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    obs.append(side.ep_state(ep))
    n = yield from side.lib.send(ep, b"abcdefgh")
    echo = yield from side.lib.recv(ep, 8)
    obs.append((n, echo.tobytes()))
    yield from side.lib.close(ep)
    obs.append(side.ep_state(ep))
    return tuple(obs)


@scenario(VPhiOp.SEND, VPhiOp.RECV)
def zero_length_messaging(side, machine):
    """Zero-byte send/recv: 0 returned, nothing crosses beyond the header.

    Native scif_send/recv with len 0 complete immediately with 0 bytes
    and leave the peer's receive queue untouched; the forwarded path
    must match (the regression was one side rejecting with EINVAL while
    the other silently succeeded)."""
    card_node = machine.card_node_id(0)
    card_echo_server(machine, PORT, nbytes=4)
    obs = []
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    n0 = yield from side.lib.send(ep, b"")
    empty = yield from side.lib.recv(ep, 0)
    obs.append((n0, len(empty)))
    # the server is still waiting on its 4 real bytes: the zero-length
    # send fed it nothing.  Only this payload reaches it.
    n = yield from side.lib.send(ep, b"wxyz")
    echo = yield from side.lib.recv(ep, 4)
    obs.append((n, echo.tobytes()))
    yield from side.lib.close(ep)
    return tuple(obs)


@scenario(VPhiOp.REGISTER, VPhiOp.UNREGISTER, VPhiOp.READFROM, VPhiOp.WRITETO,
          VPhiOp.FENCE_MARK, VPhiOp.FENCE_WAIT)
def rma_window(side, machine):
    """Window-to-window RMA both directions, fenced, then unregistered."""
    size = 256 * KB
    card_node = machine.card_node_id(0)
    ready = card_window_server(machine, PORT, size, fill=0x5A)
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    roff = yield ready
    vma = side.proc.address_space.mmap(size, populate=True)
    loff = yield from side.lib.register(ep, vma.start, size)
    n_read = yield from side.lib.readfrom(ep, loff, size, roff)
    pulled = int(side.proc.address_space.read(vma.start, size).sum())
    side.proc.address_space.write(
        vma.start, np.full(size, 0xA5, dtype=np.uint8)
    )
    n_write = yield from side.lib.writeto(ep, loff, size, roff)
    mark = yield from side.lib.fence_mark(ep)
    yield from side.lib.fence_wait(ep, mark)
    remote = yield from server_checksum(side, ep)
    yield from side.lib.unregister(ep, loff)
    yield from side.lib.send(ep, b"q")
    return (n_read, pulled, n_write, mark, remote,
            side.proc.address_space.pinned_pages())


@scenario(VPhiOp.VREADFROM, VPhiOp.VWRITETO)
def vrma_roundtrip(side, machine):
    """Virtual-address RMA: the driver-pinned (vPHI: bounced) path."""
    size = 512 * KB
    card_node = machine.card_node_id(0)
    ready = card_window_server(machine, PORT, size, fill=0x3C)
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    roff = yield ready
    vma = side.proc.address_space.mmap(size, populate=True)
    n_read = yield from side.lib.vreadfrom(ep, vma.start, size, roff)
    pulled = int(side.proc.address_space.read(vma.start, size).sum())
    side.proc.address_space.write(
        vma.start, np.full(size, 0xC3, dtype=np.uint8)
    )
    n_write = yield from side.lib.vwriteto(ep, vma.start, size, roff)
    remote = yield from server_checksum(side, ep)
    yield from side.lib.send(ep, b"q")
    return (n_read, pulled, n_write, remote)


@scenario(VPhiOp.MMAP)
def mmap_window(side, machine):
    """scif_mmap: plain loads/stores reach the card window."""
    size = 2 * PAGE_SIZE
    card_node = machine.card_node_id(0)
    ready = card_window_server(machine, PORT, size, fill=0xAB)
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    roff = yield ready
    vma = yield from side.lib.mmap(ep, roff, size)
    loaded = side.proc.address_space.read(vma.start + 17, 16).tobytes()
    side.proc.address_space.write(vma.start + 64, b"differential")
    remote = yield from server_checksum(side, ep)
    yield from side.lib.send(ep, b"q")
    return (loaded, remote)


@scenario(VPhiOp.FENCE_SIGNAL)
def fence_signal_flag(side, machine):
    """The RDMA-completion-flag idiom: fence_signal stamps the remote
    window once every issued RMA lands."""
    size = 64 * KB
    card_node = machine.card_node_id(0)
    ready = card_window_server(machine, PORT, size, fill=0x00)
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    roff = yield ready
    vma = side.proc.address_space.mmap(size, populate=True)
    side.proc.address_space.write(
        vma.start, np.full(size, 0x11, dtype=np.uint8)
    )
    loff = yield from side.lib.register(ep, vma.start, size)
    yield from side.lib.writeto(ep, loff, size - PAGE_SIZE, roff)
    yield from side.lib.fence_signal(ep, loff, 0x1234, roff + size - 8, 0x5678)
    local_flag = int(np.frombuffer(
        side.proc.address_space.read(vma.start, 8).tobytes(), dtype=np.int64
    )[0])
    remote = yield from server_checksum(side, ep)
    yield from side.lib.send(ep, b"q")
    return (local_flag, remote)


@scenario(VPhiOp.POLL)
def poll_readiness(side, machine):
    """poll readiness transitions: writable, then readable on arrival."""
    card_node = machine.card_node_id(0)
    card_echo_server(machine, PORT, nbytes=4)
    ep = yield from side.lib.open()
    yield from side.lib.connect(ep, (card_node, PORT))
    before = yield from side.lib.poll(
        [(ep, PollEvent.SCIF_POLLIN | PollEvent.SCIF_POLLOUT)], timeout=0
    )
    yield from side.lib.send(ep, b"ping")
    after = yield from side.lib.poll([(ep, PollEvent.SCIF_POLLIN)], timeout=None)
    data = yield from side.lib.recv(ep, 4)
    return (int(before[0]), int(after[0]), data.tobytes())


@scenario(VPhiOp.GET_NODE_IDS)
def node_enumeration(side, machine):
    """Both stacks present the same fabric from the same vantage point
    (the backend's libscif is a host process too)."""
    ids, own = yield from side.lib.get_node_ids()
    return (tuple(ids), own)


@scenario(VPhiOp.SYSFS_READ)
def sysfs_attributes(side, machine):
    """The mirrored mic sysfs tree answers identically."""
    out = []
    for attr in ("family", "version", "state"):
        val = yield from side.sysfs_read(f"sys/class/mic/mic0/{attr}")
        out.append(val)
    return tuple(out)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

MODES = {
    "native": None,
    "blocking": VPhiConfig(),
    "pooled": VPhiConfig(backend_workers=4),
}

_memo: dict = {}


def run_scenario(name: str, mode: str):
    """One scenario on one fresh machine; results memoized per (name,
    mode) so the native baseline is computed once per scenario."""
    key = (name, mode)
    if key in _memo:
        return _memo[key]
    _, fn = SCENARIOS[name]
    machine = Machine(cards=1).boot()
    config = MODES[mode]
    if config is None:
        side = Side(machine)
    else:
        vm = machine.create_vm("vm0", ram_bytes=2 << 30, vphi_config=config)
        side = Side(machine, vm)
    driver = side.spawn(fn(side, machine))
    machine.run()
    _memo[key] = driver.value
    return driver.value


@pytest.mark.parametrize("mode", ["blocking", "pooled"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_native(name, mode):
    """The virtualized observables equal the native ones exactly."""
    assert run_scenario(name, mode) == run_scenario(name, "native")


@pytest.mark.parametrize(
    "op", [s.op for s in registered_ops()], ids=lambda op: op.value
)
def test_every_registry_op_has_a_scenario(op):
    """Structural coverage: an op nobody's scenario claims fails here —
    conformance coverage cannot silently rot as ops are added."""
    covered = frozenset().union(*(ops for ops, _ in SCENARIOS.values()))
    assert op in covered, (
        f"registry op {op.value!r} has no differential scenario; add one "
        f"(or extend an existing scenario's @scenario(...) claim)"
    )


def test_pooled_run_actually_pooled():
    """Guard the harness itself: the pooled mode routes traffic through
    the worker pool (otherwise the differential proves nothing)."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm(
        "vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig(backend_workers=4)
    )
    side = Side(machine, vm)
    driver = side.spawn(connect_echo(side, machine))
    machine.run()
    assert driver.value is not None
    assert vm.vphi.backend.pool is not None
    assert vm.vphi.backend.pool.completed > 0
    assert vm.domain.paused_time == 0.0
