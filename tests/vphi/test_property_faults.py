"""Chaos property: random fault plans never break the invariants.

Whatever deterministic fault plan Hypothesis dreams up — any mix of link
flaps, syscall errors, ring corruption, worker deaths and card resets,
on any cadence — over a random op sequence, the frontend must never
deadlock, never leak a ring descriptor or bounce buffer, and never
corrupt the results of a second, fault-free VM sharing the card.
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.scif import ScifError
from repro.vphi import VPhiConfig

# the nightly chaos job raises this well past the CI default
N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "10"))

PORT = 8600
KB = 1 << 10
CHAOS_VM = "vm-chaos"

# CARD_RESET and BACKEND_RESTART are *machine-wide* invalidations (every
# VM sharing the card loses its endpoints), so they cannot satisfy this
# test's clean-VM-isolation invariant by design; their blast radius is
# covered by tests/vphi/test_session_recovery.py and
# test_property_session.py instead.
PER_VM_KINDS = tuple(
    k for k in FaultKind.ALL
    if k not in (FaultKind.CARD_RESET, FaultKind.BACKEND_RESTART)
)

fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(PER_VM_KINDS),
    op=st.sampled_from([None, "vreadfrom", "vwriteto", "fence_mark"]),
    vm=st.just(CHAOS_VM),  # faults pinned to the chaos VM
    every=st.integers(1, 4),
    max_fires=st.one_of(st.none(), st.integers(1, 3)),
    duration=st.floats(50e-6, 500e-6),
)

chaos_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(1, 64 * KB)),
        st.tuples(st.just("write"), st.integers(1, 64 * KB)),
        st.tuples(st.just("fence"), st.just(0)),
        st.tuples(st.just("nodes"), st.just(0)),
    ),
    min_size=2, max_size=6,
)


def window_pair(machine, port, size=256 * KB, fill=0x5A):
    """Card server exposing one registered read/write window."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=st.lists(fault_specs, min_size=1, max_size=3), ops=chaos_ops)
def test_chaos_plan_never_deadlocks_leaks_or_cross_corrupts(specs, ops):
    m = Machine(cards=1, fault_plan=FaultPlan.of(*specs)).boot()
    # the chaos VM gets the watchdog + retry machinery armed
    chaos = m.create_vm(
        CHAOS_VM, vphi_config=VPhiConfig(op_timeout=2e-3, max_retries=2)
    )
    clean = m.create_vm("vm-clean")
    card = m.card_node_id(0)
    r_chaos = window_pair(m, PORT)
    r_clean = window_pair(m, PORT + 1, fill=0x33)

    def chaos_client():
        gproc = chaos.guest_process("chaos-app")
        glib = chaos.vphi.libscif(gproc)
        outcomes = []
        try:
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
        except ScifError as err:
            return [("aborted", type(err).__name__)]
        roff = yield r_chaos
        vma = gproc.address_space.mmap(64 * KB, populate=True)
        for verb, nbytes in ops:
            try:
                if verb == "read":
                    yield from glib.vreadfrom(ep, vma.start, nbytes, roff)
                elif verb == "write":
                    yield from glib.vwriteto(ep, vma.start, nbytes, roff)
                elif verb == "fence":
                    yield from glib.fence_mark(ep)
                else:
                    yield from glib.get_node_ids()
                outcomes.append((verb, "ok"))
            except ScifError as err:
                # faults may surface as typed errors — never anything else
                outcomes.append((verb, type(err).__name__))
        return outcomes

    def clean_client():
        gproc = clean.guest_process("clean-app")
        glib = clean.vphi.libscif(gproc)
        ep = yield from glib.open()
        yield from glib.connect(ep, (card, PORT + 1))
        roff = yield r_clean
        vma = gproc.address_space.mmap(4 * KB, populate=True)
        sums = []
        for _ in range(3):
            yield from glib.vreadfrom(ep, vma.start, 4 * KB, roff)
            sums.append(int(gproc.address_space.read(vma.start, 4 * KB).sum()))
        return sums

    c_chaos = chaos.spawn_guest(chaos_client())
    c_clean = clean.spawn_guest(clean_client())
    m.run()

    # 1) no deadlock: both clients ran to completion
    assert c_chaos.triggered, "chaos client deadlocked"
    assert c_clean.triggered, "clean client deadlocked"
    assert c_chaos.value  # every op produced an outcome or typed error

    # 2) no descriptor or bounce-buffer leaks on either VM
    for vm in (chaos, clean):
        ring = vm.vphi.virtio.ring
        assert ring.num_free == ring.size, f"{vm.name} leaked descriptors"
        assert vm.guest_kernel.kmalloc.live == 0, f"{vm.name} leaked kmalloc"

    # 3) the fault-free VM's data is untouched by the chaos next door
    assert c_clean.value == [0x33 * 4 * KB] * 3
    assert clean.tracer.counters["vphi.fault.injected"] == 0
    assert clean.vphi.frontend.retries == 0
