"""The op registry: each SCIF operation is declared exactly once.

The proof of "one registration site": a fake op registered through the
public seam rides the full VM path (guest submit -> ring -> kick ->
backend dispatch -> host -> irq -> reap) and shows up in the per-op
analysis tables with zero wiring anywhere else.
"""

import enum

import pytest

from repro import Machine
from repro.analysis import per_op_stats
from repro.scif import ScifError
from repro.vphi import (
    ArgSpec,
    VPhiConfig,
    VPhiOp,
    default_nonblocking_ops,
    register,
    registered_ops,
    spec_for,
    temporary_op,
)


class _TestOp(enum.Enum):
    """A test-only wire op, deliberately not a VPhiOp member."""

    WHOAMI = "whoami"


def test_every_builtin_op_is_registered():
    for op in VPhiOp:
        spec = spec_for(op)
        assert spec.op is op
        assert spec.op_name == op.value
    assert len(registered_ops()) >= len(list(VPhiOp))


def test_double_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        register(VPhiOp.OPEN)(lambda backend, req, elem, a: None)


def test_unknown_op_rejected():
    with pytest.raises(ScifError, match="unknown op"):
        spec_for(_TestOp.WHOAMI)


def test_marshal_applies_defaults_and_conversions():
    bind = spec_for(VPhiOp.BIND)
    assert bind.marshal({}) == {"port": 0}
    assert bind.marshal({"port": "7"}) == {"port": 7}  # wire conversion


def test_marshal_rejects_unknown_and_missing_arguments():
    with pytest.raises(ScifError, match="unexpected argument"):
        spec_for(VPhiOp.BIND).marshal({"prot": 3})
    with pytest.raises(ScifError, match="missing argument"):
        spec_for(VPhiOp.RECV).marshal({})  # nbytes has no default


def test_nonblocking_set_derived_from_registry():
    derived = default_nonblocking_ops()
    # §III: ops whose completion time is unbounded must not freeze QEMU
    assert derived == frozenset(
        {VPhiOp.ACCEPT, VPhiOp.POLL, VPhiOp.FENCE_WAIT, VPhiOp.FENCE_SIGNAL}
    )
    config = VPhiConfig()
    assert config.nonblocking_ops == derived
    assert config.is_blocking(VPhiOp.SEND)
    assert not config.is_blocking(VPhiOp.ACCEPT)


def test_trace_keys_derive_from_wire_name():
    send = spec_for(VPhiOp.SEND)
    assert send.counter_key == "vphi.op.send"
    assert send.served_key == "vphi.op.send.served"
    assert send.error_key == "vphi.op.send.errors"
    assert send.latency_key == "vphi.op.send.latency"


def test_fake_op_round_trips_through_full_vm_path():
    """Register a brand-new op once; every layer picks it up untouched."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")

    def whoami(backend, req, elem, a):
        yield backend.sim.timeout(0)
        return (backend.vm.name, a["shout"]), 0

    with temporary_op(
        _TestOp.WHOAMI,
        whoami,
        args=(ArgSpec("shout", default=False, convert=bool),),
        wants_endpoint=False,
    ) as spec:
        frontend = vm.vphi.frontend

        def client():
            result, data = yield from frontend.submit(
                _TestOp.WHOAMI, args=spec.marshal({"shout": 1})
            )
            return result, data

        p = vm.spawn_guest(client())
        machine.run()
        result, data = p.value
        # the handler really ran host-side, against this VM's backend
        assert result == ("vm0", True)
        assert data is None
        # the analysis layer enumerates it from the registry alone
        stats = {s.op: s for s in per_op_stats(frontend)}
        assert stats["whoami"].submitted == 1
        assert stats["whoami"].served == 1
        assert stats["whoami"].errors == 0
        assert stats["whoami"].mean_latency > 0

    # the with-block removed it again: no registry pollution
    with pytest.raises(ScifError, match="unknown op"):
        spec_for(_TestOp.WHOAMI)


def test_fake_op_errors_are_counted_and_raised():
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")

    def broken(backend, req, elem, a):
        yield backend.sim.timeout(0)
        raise ScifError("deliberate")

    with temporary_op(_TestOp.WHOAMI, broken, wants_endpoint=False) as spec:
        frontend = vm.vphi.frontend

        def client():
            try:
                yield from frontend.submit(_TestOp.WHOAMI, args={})
            except ScifError as e:
                return str(e)
            return None

        p = vm.spawn_guest(client())
        machine.run()
        assert p.value == "deliberate"
        assert frontend.tracer.counters[spec.error_key] == 1
        assert frontend.tracer.counters[spec.served_key] == 1
    # error path freed the bounce header too
    assert vm.guest_kernel.kmalloc.live == 0
