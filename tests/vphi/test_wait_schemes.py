"""Wait schemes: interrupt vs polling vs hybrid (paper §III + future work)."""

import pytest

from repro.vphi import VPhiConfig, WaitMode, chunk_plan
from repro.sim import us

PORT = 3200
MB = 1 << 20


def measure_send_latency(machine, vm, nbytes=1, port=PORT):
    """1-shot guest send latency against a card sink server."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process(f"server{port}"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, nbytes)

    glib = vm.vphi.libscif(vm.guest_process("bench"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        t0 = machine.sim.now
        yield from glib.send(ep, bytes(nbytes))
        return machine.sim.now - t0

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    return c.value


def test_polling_mode_near_native_latency(machine):
    """Ablation A1: polling strips the 349us wait-scheme cost; latency
    falls to the ~33us of the remaining virtualization plumbing."""
    vm = machine.create_vm("vm-poll", vphi_config=VPhiConfig(wait_mode=WaitMode.POLLING))
    lat = measure_send_latency(machine, vm)
    assert lat < us(40)
    assert vm.vphi.frontend.tracer.accumulators["vphi.poll_cpu_time"] > 0


def test_interrupt_mode_pays_wait_scheme(machine):
    vm = machine.create_vm("vm-intr", vphi_config=VPhiConfig(wait_mode=WaitMode.INTERRUPT))
    lat = measure_send_latency(machine, vm)
    assert lat == pytest.approx(us(382), rel=0.01)


def test_hybrid_polls_small_sleeps_large(machine):
    """The paper's future-work hybrid: small transfers get polling's
    latency, large ones keep the interrupt scheme."""
    cfg = VPhiConfig(wait_mode=WaitMode.HYBRID, hybrid_threshold=32 * 1024)
    vm = machine.create_vm("vm-hyb", vphi_config=cfg)
    small = measure_send_latency(machine, vm, nbytes=1, port=PORT)
    large = measure_send_latency(machine, vm, nbytes=64 * 1024, port=PORT + 1)
    assert small < us(40)  # polled
    # large: interrupt scheme (>= the 349us wakeup) + streaming time
    assert large > us(370)


def test_polling_burns_cpu_interrupt_does_not(machine):
    vm_p = machine.create_vm("vm-p", vphi_config=VPhiConfig(wait_mode=WaitMode.POLLING))
    vm_i = machine.create_vm("vm-i", vphi_config=VPhiConfig(wait_mode=WaitMode.INTERRUPT))
    measure_send_latency(machine, vm_p, port=PORT)
    measure_send_latency(machine, vm_i, port=PORT + 1)
    poll_cpu_p = vm_p.vphi.frontend.tracer.accumulators.get("vphi.poll_cpu_time", 0)
    poll_cpu_i = vm_i.vphi.frontend.tracer.accumulators.get("vphi.poll_cpu_time", 0)
    assert poll_cpu_p > 0
    assert poll_cpu_i == 0


def test_unknown_wait_mode_rejected():
    with pytest.raises(ValueError):
        VPhiConfig(wait_mode="psychic")


def test_chunk_plan_properties():
    assert chunk_plan(0) == []
    assert chunk_plan(1) == [1]
    assert chunk_plan(10 * MB) == [4 * MB, 4 * MB, 2 * MB]
    assert sum(chunk_plan(12345678)) == 12345678
    with pytest.raises(ValueError):
        chunk_plan(-1)
    with pytest.raises(ValueError):
        chunk_plan(10, chunk_size=0)


def test_config_validation():
    with pytest.raises(ValueError):
        VPhiConfig(chunk_size=0)
    with pytest.raises(ValueError):
        VPhiConfig(chunk_size=8 * MB)  # above KMALLOC_MAX_SIZE
    with pytest.raises(ValueError):
        VPhiConfig(hybrid_threshold=-1)
