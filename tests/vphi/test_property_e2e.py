"""Property tests on the full vPHI data path: arbitrary payloads survive.

Each example drives real bytes through every layer (guest copy -> ring ->
backend -> host SCIF -> PCIe -> card) and back; any corruption anywhere
in the 12-component chain fails here.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine
from repro.mem import KMALLOC_MAX_SIZE

PORT = 8000


@pytest.fixture(scope="module")
def machine():
    m = Machine(cards=1).boot()
    m._vm = m.create_vm("vm0")
    return m


_port_counter = [PORT]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    sizes=st.lists(st.integers(1, 3 * KMALLOC_MAX_SIZE // 2), min_size=1, max_size=3),
    seed=st.integers(0, 2**16),
)
def test_guest_send_arbitrary_payloads_intact(machine, sizes, seed):
    """Property: any sequence of message sizes (spanning the chunking
    boundary) arrives byte-exact, in order."""
    vm = machine._vm
    _port_counter[0] += 1
    port = _port_counter[0]
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process(f"srv{port}"))
    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, size=s, dtype=np.uint8) for s in sizes]

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        got = []
        for p in payloads:
            data = yield from slib.recv(conn, len(p))
            got.append(data)
        return got

    glib = vm.vphi.libscif(vm.guest_process(f"app{port}"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        for p in payloads:
            yield from glib.send(ep, p)
        yield from glib.close(ep)

    s = machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    for sent, got in zip(payloads, s.value):
        assert np.array_equal(sent, got)
    # no leaked bounce buffers regardless of sizes
    assert vm.guest_kernel.kmalloc.live == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    offset_pages=st.integers(0, 8),
    nbytes=st.integers(1, 2 * KMALLOC_MAX_SIZE),
    fill=st.integers(1, 255),
)
def test_guest_vreadfrom_arbitrary_ranges_intact(machine, offset_pages, nbytes, fill):
    """Property: remote reads of any size/offset inside the window pull
    exactly the right bytes."""
    vm = machine._vm
    _port_counter[0] += 1
    port = _port_counter[0]
    card_node = machine.card_node_id(0)
    window = 12 * (1 << 20)
    offset = offset_pages * 4096
    nbytes = min(nbytes, window - offset)
    sproc = machine.card_process(f"rsrv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(window, populate=True)
        # distinguishable content: fill + position marker at the start of
        # the requested range
        sproc.address_space.write(vma.start, np.full(window, fill, dtype=np.uint8))
        sproc.address_space.write(vma.start + offset, bytes([fill ^ 0xFF]))
        roff = yield from slib.register(conn, vma.start, window)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    gproc = vm.guest_process(f"rapp{port}")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        roff = yield ready
        vma = gproc.address_space.mmap(nbytes, populate=True)
        n = yield from glib.vreadfrom(ep, vma.start, nbytes, roff + offset)
        data = gproc.address_space.read(vma.start, nbytes)
        yield from glib.send(ep, b"x")
        yield from glib.close(ep)
        return n, data

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    n, data = c.value
    assert n == nbytes
    assert data[0] == fill ^ 0xFF
    if nbytes > 1:
        assert (data[1:] == fill).all()
