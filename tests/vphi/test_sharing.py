"""Xeon Phi sharing between VMs — the paper's headline capability.

"To our knowledge, vPHI is the first approach that enables Xeon Phi
sharing between multiple VMs running on the same physical node" (§I).
"""

import numpy as np

from repro.sim import us

PORT = 3300
MB = 1 << 20


def test_two_vms_talk_to_the_same_card(machine):
    """Two VMs connect to one card server concurrently; both payloads
    arrive intact and are served over the same physical device."""
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("server"))
    received = {}

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        for _ in range(2):
            conn, peer = yield from slib.accept(ep)
            machine.sim.spawn(serve_conn(conn))

    def serve_conn(conn):
        data = yield from slib.recv(conn, 16)
        received[data.tobytes()[:4].decode()] = data.tobytes()

    def guest_client(vm, tag):
        glib = vm.vphi.libscif(vm.guest_process("app"))

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            yield from glib.send(ep, tag.encode() + b"-" * (16 - len(tag)))

        vm.spawn_guest(client())

    machine.sim.spawn(server())
    guest_client(vm1, "vm1x")
    guest_client(vm2, "vm2x")
    machine.run()
    assert set(received) == {"vm1x", "vm2x"}


def test_vms_are_isolated_processes_on_the_host(machine):
    """Each VM's backend holds its own SCIF context (its own QEMU host
    process) — one VM's endpoints are invisible to the other."""
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    assert vm1.qemu_process.pid != vm2.qemu_process.pid

    glib1 = vm1.vphi.libscif(vm1.guest_process("a"))
    glib2 = vm2.vphi.libscif(vm2.guest_process("b"))

    def open_ep(glib):
        ep = yield from glib.open()
        return ep

    c1 = vm1.spawn_guest(open_ep(glib1))
    c2 = vm2.spawn_guest(open_ep(glib2))
    machine.run()
    # handles are per-backend namespaces: both may be handle #1, yet they
    # map to different host endpoints owned by different processes
    ep1 = vm1.vphi.backend.endpoints[c1.value.handle]
    ep2 = vm2.vphi.backend.endpoints[c2.value.handle]
    assert ep1 is not ep2
    assert ep1.owner == "qemu-vm1"
    assert ep2.owner == "qemu-vm2"


def test_concurrent_vm_rma_shares_the_link(machine):
    """Two VMs pulling 64MB each: the PCIe link serializes bursts, so each
    sees less than full native bandwidth but both complete correctly."""
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    card_node = machine.card_node_id(0)
    size = 64 * MB

    def window_server(port, fill):
        sproc = machine.card_process(f"srv{port}")
        slib = machine.scif(sproc)
        ready = machine.sim.event()

        def server():
            ep = yield from slib.open()
            yield from slib.bind(ep, port)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(size, populate=True)
            sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
            roff = yield from slib.register(conn, vma.start, size)
            ready.succeed(roff)
            yield from slib.recv(conn, 1)

        machine.sim.spawn(server())
        return ready

    r1 = window_server(PORT, 0x11)
    r2 = window_server(PORT + 1, 0x22)

    def guest_reader(vm, port, ready, fill):
        gproc = vm.guest_process("rd")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, port))
            roff = yield ready
            vma = gproc.address_space.mmap(size, populate=True)
            t0 = machine.sim.now
            yield from glib.vreadfrom(ep, vma.start, size, roff)
            dt = machine.sim.now - t0
            ok = bool((gproc.address_space.read(vma.start, 4096) == fill).all())
            yield from glib.send(ep, b"x")
            return size / dt, ok

        return vm.spawn_guest(client())

    c1 = guest_reader(vm1, PORT, r1, 0x11)
    c2 = guest_reader(vm2, PORT + 1, r2, 0x22)
    machine.run()
    bw1, ok1 = c1.value
    bw2, ok2 = c2.value
    assert ok1 and ok2
    # both below the solo vPHI peak (4.6 GB/s) because they contended
    assert bw1 < 4.6e9 and bw2 < 4.6e9
    # but the link stayed busy: combined throughput near the native peak
    assert bw1 + bw2 > 5.0e9


def test_oversubscribed_card_compute_multiplexed_by_uos(machine):
    """Two VMs each launch a full-card kernel (224 threads): the uOS
    scheduler timeshares them (§III)."""
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    uos = machine.uos(0)
    d1 = uos.spawn_kernel(1e11, threads=224, name="vm1-kernel")
    d2 = uos.spawn_kernel(1e11, threads=224, name="vm2-kernel")
    machine.run()
    assert uos.scheduler.peak_demand == 448
    # both completed, multiplexed
    assert d1.value.finished_at is not None
    assert d2.value.finished_at is not None


def test_nonblocking_accept_keeps_guest_alive(machine):
    """§III: scif_accept is handled on a worker thread, because "we do not
    know beforehand when a corresponding scif_connect will arrive".  The
    guest keeps executing while its accept is parked."""
    vm = machine.create_vm("vm-srv")
    card_node = machine.card_node_id(0)
    glib = vm.vphi.libscif(vm.guest_process("guest-server"))
    ticks = []

    def guest_ticker():
        for _ in range(10):
            yield machine.sim.timeout(us(100))
            ticks.append(machine.sim.now)

    def guest_server():
        ep = yield from glib.open()
        yield from glib.bind(ep, PORT)
        yield from glib.listen(ep)
        vm.spawn_guest(guest_ticker())
        conn, peer = yield from glib.accept(ep)  # parks ~1ms on a worker
        data = yield from glib.recv(conn, 5)
        return data.tobytes(), peer

    # a card client connects *into* the VM after 1ms
    clib = machine.scif(machine.card_process("card-client"))

    def card_client():
        yield machine.sim.timeout(1e-3)
        ep = yield from clib.open()
        yield from clib.connect(ep, (0, PORT))  # guest services live on node 0
        yield from clib.send(ep, b"knock")

    s = vm.spawn_guest(guest_server())
    machine.sim.spawn(card_client())
    machine.run()
    data, peer = s.value
    assert data == b"knock"
    assert peer[0] == card_node
    # the ticker ran at full rate during the ~1ms accept wait
    assert len(ticks) == 10
    assert vm.qemu.worker_events >= 1
    # and the VM was never frozen by the accept itself
    assert vm.domain.paused_time < us(50)
