"""vPHI RMA (bounced + window-direct), scif_mmap via VM_PFNPHI, Fig 5 anchor."""

import numpy as np
import pytest

from repro.mem import Buffer, PAGE_SIZE, PageFault

PORT = 3100
MB = 1 << 20


def card_window_server(machine, size, fill=0x66, port=PORT):
    """Card server that registers a `size` window filled with `fill`."""
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True, name="card-buf")
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)  # park until the client is done
        return sproc, vma

    proc = machine.sim.spawn(server())
    return ready, proc


def test_guest_vreadfrom_pulls_card_bytes(machine, vm):
    size = 8 * MB
    ready, _ = card_window_server(machine, size, fill=0x3C)
    card_node = machine.card_node_id(0)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        n = yield from glib.vreadfrom(ep, vma.start, size, roff)
        got = gproc.address_space.read(vma.start, size)
        yield from glib.send(ep, b"x")
        return n, got

    c = vm.spawn_guest(client())
    machine.run()
    n, got = c.value
    assert n == size
    assert (got == 0x3C).all()
    assert vm.guest_kernel.kmalloc.live == 0  # bounces reclaimed


def test_guest_vwriteto_pushes_to_card(machine, vm):
    size = 2 * MB
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    ready = machine.sim.event()
    payload = Buffer.pattern(size, seed=9)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)
        return sproc.address_space.read(vma.start, size)

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        gproc.address_space.write(vma.start, payload.data)
        yield from glib.vwriteto(ep, vma.start, size, roff)
        yield from glib.send(ep, b"x")

    s = machine.sim.spawn(server())
    vm.spawn_guest(client())
    machine.run()
    assert np.array_equal(s.value, payload.data)


def test_vphi_rma_throughput_anchor_72_percent(machine, vm):
    """Fig 5 anchor: the same 256MB remote read native vs through vPHI —
    4.6 GB/s = 72% of the 6.4 GB/s native peak."""
    size = 256 * MB
    ready, _ = card_window_server(machine, size, fill=0x77)
    ready2, _ = card_window_server(machine, size, fill=0x77, port=PORT + 1)
    card_node = machine.card_node_id(0)

    # native client
    hproc = machine.host_process("native")
    hlib = machine.scif(hproc)

    def native_client():
        ep = yield from hlib.open()
        yield from hlib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = hproc.address_space.mmap(size, populate=True)
        t0 = machine.sim.now
        yield from hlib.vreadfrom(ep, vma.start, size, roff)
        dt = machine.sim.now - t0
        yield from hlib.send(ep, b"x")
        return size / dt

    n = machine.sim.spawn(native_client())
    machine.run()
    native_bw = n.value

    gproc = vm.guest_process("bench")
    glib = vm.vphi.libscif(gproc)

    def guest_client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT + 1))
        roff = yield ready2
        vma = gproc.address_space.mmap(size, populate=True)
        t0 = machine.sim.now
        yield from glib.vreadfrom(ep, vma.start, size, roff)
        dt = machine.sim.now - t0
        sample = gproc.address_space.read(vma.start + size - 4096, 4096)
        yield from glib.send(ep, b"x")
        return size / dt, sample

    g = vm.spawn_guest(guest_client())
    machine.run()
    vphi_bw, sample = g.value
    assert (sample == 0x77).all()  # the last page really arrived
    assert native_bw == pytest.approx(6.4e9, rel=0.01)
    assert vphi_bw == pytest.approx(4.6e9, rel=0.02)
    assert vphi_bw / native_bw == pytest.approx(0.72, abs=0.015)


def test_guest_register_enables_direct_window_rma(machine, vm):
    """A registered guest window is pinned guest RAM: window-to-window
    readfrom DMAs straight into it, no kmalloc bounce."""
    size = 4 * MB
    ready, _ = card_window_server(machine, size, fill=0x88)
    card_node = machine.card_node_id(0)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        loff = yield from glib.register(ep, vma.start, size)
        allocs_before = vm.guest_kernel.kmalloc.total_allocs
        yield from glib.readfrom(ep, loff, size, roff)
        allocs_after = vm.guest_kernel.kmalloc.total_allocs
        got = gproc.address_space.read(vma.start, size)
        yield from glib.unregister(ep, loff)
        yield from glib.send(ep, b"x")
        # only the request header was kmalloc'ed — no data bounce chunks
        return got, allocs_after - allocs_before

    c = vm.spawn_guest(client())
    machine.run()
    got, allocs = c.value
    assert (got == 0x88).all()
    assert allocs <= 2  # header allocations only (readfrom + maybe retry)
    assert gproc.address_space.pinned_pages() == 0  # unregister unpinned


def test_card_can_write_into_guest_window(machine, vm):
    """Sharing works both ways: the card-side server writes into the
    guest's registered window, landing directly in guest user memory."""
    size = MB
    card_node = machine.card_node_id(0)
    sproc = machine.card_process("server")
    slib = machine.scif(sproc)
    payload = Buffer.pattern(size, seed=21)

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        # wait for the guest to tell us its window offset
        msg = yield from slib.recv(conn, 8)
        goff = int(np.frombuffer(msg.tobytes(), dtype=np.int64)[0])
        svma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(svma.start, payload.data)
        loff = yield from slib.register(conn, svma.start, size)
        yield from slib.writeto(conn, loff, size, goff)
        yield from slib.send(conn, b"done")

    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        vma = gproc.address_space.mmap(size, populate=True)
        goff = yield from glib.register(ep, vma.start, size)
        yield from glib.send(ep, np.int64(goff).tobytes())
        yield from glib.recv(ep, 4)
        return gproc.address_space.read(vma.start, size)

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert np.array_equal(c.value, payload.data)


class TestGuestMmap:
    def test_mmap_dereference_reaches_card_memory(self, machine, vm):
        """The §III two-level mapping: guest VA -> (PFNPHI fault) -> GDDR."""
        size = 2 * PAGE_SIZE
        ready, sp = card_window_server(machine, size, fill=0xAB)
        card_node = machine.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            roff = yield ready
            vma = yield from glib.mmap(ep, roff, size)
            # plain loads: no SCIF call, no ring traffic
            reqs_before = vm.vphi.frontend.requests
            data = gproc.address_space.read(vma.start + 5, 16)
            reqs_after = vm.vphi.frontend.requests
            yield from glib.send(ep, b"x")
            return data, reqs_before == reqs_after

        c = vm.spawn_guest(client())
        machine.run()
        data, no_ring_traffic = c.value
        assert (data == 0xAB).all()
        assert no_ring_traffic
        assert vm.mmu.pfnphi_faults >= 1

    def test_mmap_stores_hit_card_and_server_sees_them(self, machine, vm):
        size = PAGE_SIZE
        ready, sproc_p = card_window_server(machine, size, fill=0x00)
        card_node = machine.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            roff = yield ready
            vma = yield from glib.mmap(ep, roff, size)
            gproc.address_space.write(vma.start + 64, b"from-the-guest")
            yield from glib.send(ep, b"x")

        vm.spawn_guest(client())
        machine.run()
        sproc, svma = sproc_p.value
        assert sproc.address_space.read(svma.start + 64, 14).tobytes() == b"from-the-guest"

    def test_mmap_without_kvm_patch_faults(self, machine):
        """Without the paper's <10-LOC KVM change the dereference dies —
        the reason the modification exists."""
        vm = machine.create_vm("vm-nopatch", kvm_modified=False)
        size = PAGE_SIZE
        ready, _ = card_window_server(machine, size)
        card_node = machine.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card_node, PORT))
            roff = yield ready
            vma = yield from glib.mmap(ep, roff, size)
            failed = False
            try:
                gproc.address_space.read(vma.start, 1)
            except PageFault:
                failed = True
            yield from glib.send(ep, b"x")
            return failed

        c = vm.spawn_guest(client())
        machine.run()
        assert c.value is True
