"""Guest-side scif_poll through vPHI (single and multi endpoint)."""

import pytest

from repro.scif import PollEvent
from repro.sim import ms

PORT = 9900


def test_guest_poll_blocks_until_data_without_freezing_vm(machine, vm):
    """POLL is a non-blocking backend op (worker thread): the guest keeps
    running while its poll is parked host-side."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield machine.sim.timeout(ms(2))
        yield from slib.send(conn, b"late-data")

    glib = vm.vphi.libscif(vm.guest_process("app"))
    ticks = []

    def ticker():
        for _ in range(10):
            yield machine.sim.timeout(ms(0.1))
            ticks.append(machine.sim.now)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        vm.spawn_guest(ticker())
        t0 = machine.sim.now
        revents = yield from glib.poll([(ep, PollEvent.SCIF_POLLIN)])
        waited = machine.sim.now - t0
        data = yield from glib.recv(ep, 9)
        return revents[0], waited, data.tobytes()

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    revents, waited, data = c.value
    assert revents & PollEvent.SCIF_POLLIN
    assert waited >= ms(1.9)
    assert data == b"late-data"
    assert len(ticks) == 10  # the guest was never frozen by the poll
    assert vm.qemu.worker_events >= 1


def test_guest_poll_timeout(machine, vm):
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield machine.sim.timeout(1.0)

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        revents = yield from glib.poll([(ep, PollEvent.SCIF_POLLIN)], timeout=ms(3))
        return revents[0] & PollEvent.SCIF_POLLIN, machine.sim.now - t0

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    got_in, waited = c.value
    assert not got_in
    assert waited == pytest.approx(ms(3), rel=0.2)


def test_guest_multi_endpoint_poll(machine, vm):
    """The multi-fd fallback: two guest endpoints, data arrives on the
    second; poll reports exactly that one."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server(port, delay, payload):
        def body():
            ep = yield from slib.open()
            yield from slib.bind(ep, port)
            yield from slib.listen(ep)
            conn, _ = yield from slib.accept(ep)
            yield machine.sim.timeout(delay)
            yield from slib.send(conn, payload)

        machine.sim.spawn(body())

    server(PORT, 1.0, b"slow")      # effectively never within the test
    server(PORT + 1, ms(1), b"fast")

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        e1 = yield from glib.open()
        yield from glib.connect(e1, (card_node, PORT))
        e2 = yield from glib.open()
        yield from glib.connect(e2, (card_node, PORT + 1))
        revents = yield from glib.poll(
            [(e1, PollEvent.SCIF_POLLIN), (e2, PollEvent.SCIF_POLLIN)],
            timeout=ms(50),
        )
        return [bool(r & PollEvent.SCIF_POLLIN) for r in revents]

    c = vm.spawn_guest(client())
    machine.run(until=machine.sim.now + 2.0)
    assert c.value == [False, True]
