"""Pool properties: random mixes never violate the dispatch invariants.

Whatever Hypothesis draws — pool sizes, in-flight windows, per-VM op
mixes across three VMs sharing the card, with a random fault plan layered
on top — pooled dispatch must:

* never reorder two ops bound for the same endpoint (the shard-by-handle
  ordering promise, audited via the pool's completion log);
* never let popped-but-incomplete requests exceed ``max_inflight``;
* always drain to zero: no outstanding tags, no in-flight requests, no
  leaked ring descriptors or bounce buffers, idle pool;
* keep a fault-free VM's data byte-exact while a chaos VM retries.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.scif import ScifError
from repro.vphi import VPhiConfig

PORT = 8700
KB = 1 << 10
CHAOS_VM = "vm-p0"

fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(FaultKind.ALL),
    op=st.sampled_from([None, "vreadfrom", "vwriteto", "fence_mark"]),
    vm=st.just(CHAOS_VM),  # faults pinned to one VM; the others stay clean
    every=st.integers(1, 4),
    max_fires=st.one_of(st.none(), st.integers(1, 3)),
    duration=st.floats(50e-6, 500e-6),
)

vm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(1, 32 * KB)),
        st.tuples(st.just("write"), st.integers(1, 32 * KB)),
        st.tuples(st.just("fence"), st.just(0)),
        st.tuples(st.just("nodes"), st.just(0)),
    ),
    min_size=2, max_size=5,
)


def window_pair(machine, port, size=128 * KB, fill=0x5A):
    """Card server exposing one registered read/write window."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


def pooled_client(vm, card, port, ready, ops):
    """One VM's guest workload: its op mix against its own card window."""
    gproc = vm.guest_process(f"{vm.name}-app")
    glib = vm.vphi.libscif(gproc)

    def client():
        outcomes = []
        try:
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, port))
        except ScifError as err:
            return [("aborted", type(err).__name__)]
        roff = yield ready
        vma = gproc.address_space.mmap(32 * KB, populate=True)
        for verb, nbytes in ops:
            try:
                if verb == "read":
                    yield from glib.vreadfrom(ep, vma.start, nbytes, roff)
                elif verb == "write":
                    yield from glib.vwriteto(ep, vma.start, nbytes, roff)
                elif verb == "fence":
                    yield from glib.fence_mark(ep)
                else:
                    yield from glib.get_node_ids()
                outcomes.append((verb, "ok"))
            except ScifError as err:
                outcomes.append((verb, type(err).__name__))
        return outcomes

    return vm.spawn_guest(client())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    workers=st.lists(st.integers(1, 6), min_size=3, max_size=3),
    windows=st.lists(st.integers(1, 8), min_size=3, max_size=3),
    op_mixes=st.lists(vm_ops, min_size=3, max_size=3),
    specs=st.lists(fault_specs, min_size=0, max_size=2),
)
def test_pool_invariants_hold_under_random_mixes(workers, windows,
                                                 op_mixes, specs):
    m = Machine(cards=1, fault_plan=FaultPlan.of(*specs)).boot()
    vms = [
        m.create_vm(
            f"vm-p{i}",
            vphi_config=VPhiConfig(
                backend_workers=workers[i], max_inflight=windows[i],
                op_timeout=2e-3, max_retries=2,
            ),
        )
        for i in range(3)
    ]
    card = m.card_node_id(0)
    clients = []
    for i, vm in enumerate(vms):
        ready = window_pair(m, PORT + i)
        clients.append(pooled_client(vm, card, PORT + i, ready, op_mixes[i]))
    m.run()

    for vm, client in zip(vms, clients):
        # 1) no deadlock, every op accounted for (result or typed error)
        assert client.triggered, f"{vm.name} deadlocked"
        assert client.value

        # 2) the in-flight window was honoured and everything drained
        pool = vm.vphi.backend.pool
        assert pool is not None
        assert pool.peak_inflight <= vm.vphi.config.max_inflight
        assert pool.inflight == 0
        assert vm.vphi.backend.in_flight == 0
        assert not vm.vphi.frontend.responses, f"{vm.name} parked tags"
        ring = vm.vphi.virtio.ring
        assert ring.num_free == ring.size, f"{vm.name} leaked descriptors"
        assert vm.guest_kernel.kmalloc.live == 0, f"{vm.name} leaked kmalloc"

        # 3) per-endpoint FIFO: completion order preserves submission
        #    order for every handle (the shard-by-handle promise)
        last: dict[int, int] = {}
        for handle, seq in pool.completion_log:
            assert last.get(handle, 0) < seq, (
                f"{vm.name}: endpoint {handle} completions reordered"
            )
            last[handle] = seq

    # 4) the shared arbiter granted every VM that submitted work
    arb = m.vphi_arbiter
    assert arb.free == arb.slots  # every credit returned
    for vm in vms:
        if vm.vphi.backend.pool.submitted:
            assert arb.grants_by_vm.get(vm.name, 0) > 0

    # 5) chaos stayed contained: the fault-free VMs saw no injections
    for vm in vms[1:]:
        assert vm.tracer.counters["vphi.fault.injected"] == 0
