"""vPHI test fixtures: booted machine + one VM with vPHI installed."""

import pytest

from repro import Machine


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


@pytest.fixture
def vm(machine):
    return machine.create_vm("vm0", ram_bytes=2 << 30)
