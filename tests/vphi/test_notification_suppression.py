"""Notification suppression (EVENT_IDX-style): fewer vmexits, same bytes."""

import pytest

from repro import Machine
from repro.sim import us
from repro.vphi import VPhiConfig

PORT = 13000


def burst_of_sends(machine, vm, count=40, port=PORT):
    """A burst of concurrent small guest sends; returns (#done, elapsed)."""
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process(f"sink{port}"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, count)

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def opener():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, port))
        return ep

    machine.sim.spawn(server())
    p = vm.spawn_guest(opener())
    machine.run()
    ep = p.value
    t0 = machine.sim.now
    done = []

    def sender():
        yield from glib.send(ep, b"\x01")
        done.append(machine.sim.now)

    for _ in range(count):
        vm.spawn_guest(sender())
    machine.run()
    return len(done), max(done) - t0


def test_suppression_cuts_kicks_and_irqs_on_bursts():
    machine = Machine(cards=1).boot()
    vm_plain = machine.create_vm("vm-plain")
    vm_supp = machine.create_vm(
        "vm-supp", vphi_config=VPhiConfig(suppress_notifications=True)
    )
    n1, t1 = burst_of_sends(machine, vm_plain, port=PORT)
    n2, t2 = burst_of_sends(machine, vm_supp, port=PORT + 1)
    assert n1 == n2 == 40
    # the plain VM trapped out once per request
    assert vm_plain.vphi.virtio.kicks >= 40
    assert vm_plain.vphi.virtio.suppressed_kicks == 0
    # the suppressing VM folded most kicks into the busy window
    assert vm_supp.vphi.virtio.suppressed_kicks > 20
    assert vm_supp.vphi.virtio.kicks < 20
    # and coalesced at least some interrupts
    total_irqs = vm_supp.vphi.virtio.interrupts
    assert total_irqs + vm_supp.vphi.virtio.suppressed_irqs >= 40
    # correctness: the burst is not slower with suppression
    assert t2 <= t1 + us(1)


def test_single_request_path_identical_with_suppression():
    """The Fig 4 anchor is untouched: a lone request still pays exactly
    one kick and one interrupt, 382us total."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0", vphi_config=VPhiConfig(suppress_notifications=True))
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 1)

    glib = vm.vphi.libscif(vm.guest_process("bench"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        t0 = machine.sim.now
        yield from glib.send(ep, b"\x01")
        return machine.sim.now - t0

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == pytest.approx(us(382), rel=0.01)


def test_no_lost_wakeups_under_suppression():
    """Stress the busy-flag race window: sequential request chains where
    each new request lands exactly as the previous one retires."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0", vphi_config=VPhiConfig(suppress_notifications=True))
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("srv"))
    rounds = 30

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        for _ in range(rounds):
            data = yield from slib.recv(conn, 4)
            yield from slib.send(conn, data)

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        for i in range(rounds):
            yield from glib.send(ep, i.to_bytes(4, "big"))
            echo = yield from glib.recv(ep, 4)
            assert int.from_bytes(echo.tobytes(), "big") == i
        return True

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value is True
