"""CardArbiter policy layer: rr/wfq/priority selection + credit accounting.

The unit half drives a bare arbiter on a fresh simulator — acquire() is
synchronous when slots are free and release() pumps the next grant, so
policy behaviour is fully observable without a machine.  The e2e half
pins the nastiest credit-accounting corners: abort_inflight restitution
and a fenced epoch (session recovery) while holding a credit must never
shrink the slot pool or invert priorities permanently.
"""

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.sim import SimError, Simulator
from repro.vphi import VPhiConfig
from repro.vphi.pool import CardArbiter

KB = 1 << 10
PORT = 9700


def make(slots=1, policy="rr"):
    return CardArbiter(Simulator(), slots=slots, policy=policy)


def drain(arb, vm, ev):
    """Consume a granted credit immediately (grant -> release)."""
    assert ev.triggered, f"{vm} expected a grant"
    arb.release(vm)


class TestRoundRobin:
    def test_contention_onset_does_not_double_grant(self):
        """Regression: the uncontended grant must advance the rotor, so
        the VM running when contention begins holds no hidden head
        start — the first freed slot goes to the *other* tenant."""
        arb = make(slots=1)
        first = arb.acquire("a")        # uncontended: granted immediately
        assert first.triggered
        again = arb.acquire("a")        # a queues more work
        other = arb.acquire("b")        # b arrives: contention begins
        arb.release("a")
        assert other.triggered, "b must win the first contended slot"
        assert not again.triggered
        arb.release("b")
        assert again.triggered
        arb.release("a")
        assert arb.free == arb.slots

    def test_rotation_is_fair_over_many_grants(self):
        arb = make(slots=1)
        vms = ["a", "b", "c"]
        pending = {v: [arb.acquire(v) for _ in range(10)] for v in vms}
        order = []
        for _ in range(30):
            granted = [(v, e) for v in vms for e in pending[v] if e.triggered]
            assert len(granted) == 1
            v, ev = granted[0]
            pending[v].remove(ev)
            order.append(v)
            arb.release(v)
        assert order[:6] == ["a", "b", "c", "a", "b", "c"]
        assert arb.grants_by_vm == {"a": 10, "b": 10, "c": 10}

    def test_idle_vm_keeps_its_rotation_slot_on_resume(self):
        """A tenant that goes idle is never dropped from the order; when
        it resumes it is served at its old position, not re-queued last."""
        arb = make(slots=1)
        drain(arb, "a", arb.acquire("a"))
        drain(arb, "b", arb.acquire("b"))
        drain(arb, "c", arb.acquire("c"))
        # a idles; b and c contend
        hold = arb.acquire("b")          # granted, rotor now past b
        assert hold.triggered
        q_c = arb.acquire("c")
        q_b2 = arb.acquire("b")
        arb.release("b")
        assert q_c.triggered, "c is next after b in the rotation"
        # a resumes mid-contention: its slot between c and b is intact,
        # so it is served before b comes around again
        q_a = arb.acquire("a")
        arb.release("c")
        assert q_a.triggered and not q_b2.triggered
        arb.release("a")
        assert q_b2.triggered
        arb.release("b")
        assert arb.free == arb.slots


class TestCreditAccounting:
    def test_double_release_raises(self):
        arb = make(slots=2)
        drain(arb, "a", arb.acquire("a"))
        with pytest.raises(SimError, match="double release"):
            arb.release("a")

    def test_cancel_ungranted_dequeues(self):
        arb = make(slots=1)
        drain_me = arb.acquire("a")
        queued = arb.acquire("b")
        arb.cancel("b", queued)
        assert arb.waiting == 0
        arb.release("a")
        assert not queued.triggered
        assert arb.free == arb.slots
        assert drain_me.triggered

    def test_cancel_granted_returns_the_credit(self):
        arb = make(slots=1)
        ev = arb.acquire("a")
        arb.cancel("a", ev)  # granted but the waiter was interrupted
        assert arb.free == arb.slots


class TestWfq:
    def test_grants_converge_to_weight_ratio(self):
        arb = make(slots=1, policy="wfq")
        arb.configure("heavy", weight=3.0)
        arb.configure("light", weight=1.0)
        pending = {v: [arb.acquire(v) for _ in range(40)]
                   for v in ("heavy", "light")}
        order = []
        for _ in range(40):
            granted = [(v, e) for v in pending for e in pending[v]
                       if e.triggered]
            assert len(granted) == 1
            v, ev = granted[0]
            pending[v].remove(ev)
            order.append(v)
            arb.release(v)
        # 3:1 over the contended window, up to tag-tie rounding at the
        # 1.0-multiple boundaries
        assert abs(order.count("heavy") - 30) <= 1
        assert abs(order.count("light") - 10) <= 1

    def test_zero_weight_served_only_when_no_weighted_waiter(self):
        arb = make(slots=1, policy="wfq")
        arb.configure("paying", weight=1.0)
        arb.configure("effort", weight=0.0)
        hold = arb.acquire("paying")
        q_effort = arb.acquire("effort")
        q_paying = arb.acquire("paying")
        arb.release("paying")
        assert q_paying.triggered, "weighted waiter outranks best-effort"
        assert not q_effort.triggered
        arb.release("paying")
        assert q_effort.triggered, "best-effort served once queue is clear"
        arb.release("effort")
        assert hold.triggered
        assert arb.free == arb.slots

    def test_weight_change_mid_flight_applies_to_next_grant(self):
        """configure() while waiters are queued re-ranks them from the
        next selection on — no grant is recalled, nothing is stranded."""
        arb = make(slots=1, policy="wfq")
        arb.configure("a", weight=1.0)
        arb.configure("b", weight=1.0)
        drain_me = arb.acquire("a")
        pending = {v: [arb.acquire(v) for _ in range(10)] for v in ("a", "b")}
        arb.configure("b", weight=4.0)   # promotion lands mid-flight
        arb.release("a")
        order = []
        while any(pending.values()):
            granted = [(v, e) for v in pending for e in pending[v]
                       if e.triggered]
            assert len(granted) == 1, "exactly one grant per free slot"
            v, ev = granted[0]
            pending[v].remove(ev)
            order.append(v)
            arb.release(v)
        # the promotion applies from the very next selection: while both
        # stay backlogged b takes ~4 of every 5 contended grants
        assert order[:5].count("b") >= 4
        assert order[:10].count("b") >= 8
        # and nothing is stranded: every queued acquire was granted
        assert sorted(arb.grants_by_vm.values()) == [10, 11]
        assert drain_me.triggered
        assert arb.free == arb.slots

    def test_invalid_weight_rejected(self):
        arb = make(policy="wfq")
        with pytest.raises(ValueError, match=">= 0"):
            arb.configure("a", weight=-1.0)


class TestPriority:
    def test_lower_class_always_wins(self):
        arb = make(slots=1, policy="priority")
        arb.configure("bg", priority=5)
        arb.configure("fg", priority=0)
        hold = arb.acquire("bg")
        q_bg = arb.acquire("bg")
        q_fg = arb.acquire("fg")
        arb.release("bg")
        assert q_fg.triggered and not q_bg.triggered
        arb.release("fg")
        assert q_bg.triggered
        arb.release("bg")
        assert hold.triggered
        assert arb.free == arb.slots

    def test_round_robin_within_a_class(self):
        arb = make(slots=1, policy="priority")
        for v in ("x", "y"):
            arb.configure(v, priority=1)
        pending = {v: [arb.acquire(v) for _ in range(6)] for v in ("x", "y")}
        order = []
        for _ in range(12):
            granted = [(v, e) for v in pending for e in pending[v]
                       if e.triggered]
            assert len(granted) == 1
            v, ev = granted[0]
            pending[v].remove(ev)
            order.append(v)
            arb.release(v)
        assert order == ["x", "y"] * 6

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown arbiter policy"):
            make(policy="edf")
        arb = make()
        with pytest.raises(ValueError, match="unknown arbiter policy"):
            arb.set_policy("fifo")


# ----------------------------------------------------------------------
# e2e: credit restitution across aborts and session recovery
# ----------------------------------------------------------------------
def window_server(machine, port, size=64 * KB, fill=0x5A):
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        while True:
            conn, _ = yield from slib.accept(ep)
            vma = sproc.address_space.mmap(size, populate=True)
            sproc.address_space.write(
                vma.start, np.full(size, fill, dtype=np.uint8))
            roff = yield from slib.register(conn, vma.start, size)
            if not ready.triggered:
                ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


def reader(machine, vm, port, ready, rounds, size=64 * KB, swallow=()):
    gproc = vm.guest_process(f"reader-{port}")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), port))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        done = 0
        for _ in range(rounds):
            try:
                yield from glib.vreadfrom(ep, vma.start, size, roff)
            except swallow:
                continue
            done += 1
        return done

    return vm.spawn_guest(client())


class TestCreditRestitutionE2E:
    def test_abort_inflight_restores_credits(self):
        """A CARD_RESET aborts every in-flight pooled request; once the
        dust settles the arbiter must hold its full slot complement and
        both tenants' workers must be parked idle."""
        from repro.scif import ScifError

        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="vreadfrom", vm="vm0", at=(2,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        cfg = VPhiConfig(backend_workers=2, recovery_policy="queue")
        vm0 = m.create_vm("vm0", ram_bytes=2 << 30, vphi_config=cfg)
        vm1 = m.create_vm("vm1", ram_bytes=2 << 30, vphi_config=cfg)
        r0 = window_server(m, PORT)
        r1 = window_server(m, PORT + 1)
        c0 = reader(m, vm0, PORT, r0, rounds=6, swallow=(ScifError,))
        c1 = reader(m, vm1, PORT + 1, r1, rounds=6, swallow=(ScifError,))
        m.run()
        assert c0.triggered and c1.triggered
        arb = m.vphi_arbiter
        assert arb.free == arb.slots, "abort path leaked dispatch credits"
        assert c1.value >= 1, "the clean VM must make progress post-reset"

    def test_fenced_epoch_while_holding_credit_no_priority_inversion(self):
        """Priority policy + a reset fencing the high-class VM mid-op
        (it holds a credit at the moment its epoch is invalidated): the
        credit must come back, and the low-class VM must still drain —
        a stranded high-class credit would be a permanent inversion."""
        from repro.scif import ScifError

        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="vreadfrom", vm="fg", at=(1,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        fg = m.create_vm("fg", ram_bytes=2 << 30, vphi_config=VPhiConfig(
            backend_workers=2, recovery_policy="queue", qos_priority=0))
        bg = m.create_vm("bg", ram_bytes=2 << 30, vphi_config=VPhiConfig(
            backend_workers=2, recovery_policy="queue", qos_priority=3))
        m.vphi_arbiter.set_policy("priority")
        assert m.vphi_arbiter.priority_of("fg") == 0
        assert m.vphi_arbiter.priority_of("bg") == 3
        r0 = window_server(m, PORT + 10)
        r1 = window_server(m, PORT + 11)
        c_fg = reader(m, fg, PORT + 10, r0, rounds=4, swallow=(ScifError,))
        c_bg = reader(m, bg, PORT + 11, r1, rounds=8, swallow=(ScifError,))
        m.run()
        assert c_fg.triggered and c_bg.triggered
        arb = m.vphi_arbiter
        assert arb.free == arb.slots, "fenced epoch stranded a credit"
        assert c_bg.value >= 1, "background class starved permanently"
