"""Ring back-pressure: descriptor exhaustion parks submitters, no crash."""


from repro import Machine

PORT = 9700


def test_many_concurrent_guest_requests_survive_small_ring():
    """200 concurrent guest sends through a 32-entry ring: every request
    eventually completes; descriptors are conserved."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    # shrink the ring to force exhaustion
    vm.vphi.virtio.ring.__init__(32)
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("sink"))
    total = 200

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 8 * total)

    glib = vm.vphi.libscif(vm.guest_process("app"))
    done = []

    def opener():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        return ep

    machine.sim.spawn(server())
    p = vm.spawn_guest(opener())
    machine.run()
    ep = p.value

    def sender(i):
        yield from glib.send(ep, f"m{i:06d}!".encode()[:8])
        done.append(i)

    for i in range(total):
        vm.spawn_guest(sender(i))
    machine.run()
    assert len(done) == total
    assert vm.vphi.virtio.ring.num_free == vm.vphi.virtio.ring.size
    assert vm.guest_kernel.kmalloc.live == 0


def test_parked_submitters_preserve_fifo_progress():
    """Submissions parked on ring space make progress (no livelock)."""
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    vm.vphi.virtio.ring.__init__(8)  # tiny: 4 requests in flight max
    card_node = machine.card_node_id(0)
    slib = machine.scif(machine.card_process("sink"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        yield from slib.recv(conn, 50)

    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (card_node, PORT))
        for _ in range(50):
            yield from glib.send(ep, b"\x01")
        return True

    machine.sim.spawn(server())
    c = vm.spawn_guest(client())
    machine.run()
    assert c.value is True
