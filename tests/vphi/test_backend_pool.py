"""Worker-pool dispatch: unit and integration behaviour.

Covers the pool's dispatch invariants (classification, the in-flight
window, no whole-VM pauses, out-of-order completion by tag), the
machine-wide card arbiter's round-robin credits, pool-member death and
respawn, and the regression fixed alongside the pool: an ENODEV re-open
must produce a *fresh* backend endpoint instead of aliasing the dead
descriptor (with concurrent re-opens collapsed through the per-handle
gate).
"""

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.faults import ENODEV
from repro.scif.endpoint import EpState
from repro.scif.errors import EBADF
from repro.sim import SimError, Simulator
from repro.vphi import CardArbiter, VPhiConfig, registered_ops, temporary_op
from repro.vphi.ops import NONBLOCKING

PORT = 8800
KB = 1 << 10
MB = 1 << 20


def pooled_vm(machine, name="vm0", workers=4, **kw):
    return machine.create_vm(
        name, ram_bytes=2 << 30,
        vphi_config=VPhiConfig(backend_workers=workers, **kw),
    )


def window_server(machine, port, size, fill=0x5A):
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)

    machine.sim.spawn(server())
    return ready


# ----------------------------------------------------------------------
# registry: pool eligibility
# ----------------------------------------------------------------------
class TestPoolEligibility:
    def test_rides_pool_derives_from_blocking_class(self):
        for spec in registered_ops():
            assert spec.rides_pool == spec.blocking

    def test_unbounded_ops_never_ride_by_default(self):
        parked = {s.op_name for s in registered_ops() if not s.rides_pool}
        assert parked == {"accept", "poll", "fence_wait", "fence_signal"}

    def test_explicit_flag_overrides_derivation(self):
        class _Op:
            value = "fake_parked"

        def handler(backend, req, elem, a):
            yield backend.sim.timeout(0)
            return 0, 0

        with temporary_op(_Op(), handler, blocking_class=NONBLOCKING,
                          pool_eligible=True) as spec:
            assert not spec.blocking
            assert spec.rides_pool
            assert spec.pooled_key == "vphi.op.fake_parked.pooled"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VPhiConfig(backend_workers=-1)
        with pytest.raises(ValueError):
            VPhiConfig(max_inflight=0)
        assert not VPhiConfig().pooled
        assert VPhiConfig(backend_workers=2).pooled


# ----------------------------------------------------------------------
# the card arbiter
# ----------------------------------------------------------------------
class TestCardArbiter:
    def test_fast_path_grants_immediately(self):
        sim = Simulator()
        arb = CardArbiter(sim, slots=2)
        ev = arb.acquire("vm0")
        assert ev.triggered and arb.free == 1
        arb.release("vm0")
        assert arb.free == 2

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            CardArbiter(Simulator(), slots=0)

    def test_round_robin_over_waiting_vms(self):
        """With one slot and a deep vm0 queue, vm1's single waiter gets
        the next credit — the deep queue cannot starve its neighbour."""
        sim = Simulator()
        arb = CardArbiter(sim, slots=1)
        held = arb.acquire("vm0")
        assert held.triggered
        w0a = arb.acquire("vm0")
        w0b = arb.acquire("vm0")
        w1 = arb.acquire("vm1")
        assert not (w0a.triggered or w0b.triggered or w1.triggered)
        arb.release("vm0")       # vm0 just held the slot: vm1's turn
        assert w1.triggered and not w0a.triggered
        arb.release("vm1")       # rotation comes back to vm0
        assert w0a.triggered and not w0b.triggered
        arb.release("vm0")
        assert w0b.triggered
        arb.release("vm0")
        assert arb.free == arb.slots
        assert arb.grants_by_vm == {"vm0": 3, "vm1": 1}


# ----------------------------------------------------------------------
# pooled dispatch end-to-end
# ----------------------------------------------------------------------
class TestPooledDispatch:
    def test_vm_never_pauses_under_pooled_dispatch(self):
        """The tentpole's headline: the whole-VM pause is gone, so a
        concurrent guest timer is not stretched by a blocking SEND."""
        m = Machine(cards=1).boot()
        vm = pooled_vm(m)
        card = m.card_node_id(0)
        ready = window_server(m, PORT, 4 * KB)
        glib = vm.vphi.libscif(vm.guest_process("app"))
        ticks = []

        def timer():
            t0 = m.sim.now
            yield m.sim.timeout(20e-6)
            ticks.append(m.sim.now - t0)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            yield ready
            vm.spawn_guest(timer())
            yield from glib.send(ep, b"x" * 64)

        vm.spawn_guest(client())
        m.run()
        assert vm.domain.paused_time == 0.0
        assert ticks == [pytest.approx(20e-6)]
        assert vm.vphi.backend.pool.completed >= 3
        assert vm.tracer.counters["vphi.op.send.pooled"] == 1

    def test_max_inflight_window_is_honoured(self):
        """A burst far wider than the window never exceeds it, and the
        parked chains all drain once completions retire."""
        m = Machine(cards=1).boot()
        vm = pooled_vm(m, workers=2, max_inflight=2)
        glib = vm.vphi.libscif(vm.guest_process("app"))

        def burst():
            for _ in range(3):
                yield from glib.get_node_ids()

        clients = [vm.spawn_guest(burst()) for _ in range(6)]
        m.run()
        assert all(c.triggered for c in clients)
        pool = vm.vphi.backend.pool
        assert pool.completed == 18
        assert 1 <= pool.peak_inflight <= 2
        assert pool.inflight == 0
        assert vm.vphi.backend.in_flight == 0
        ring = vm.vphi.virtio.ring
        assert ring.num_free == ring.size

    def test_parked_accept_does_not_stall_the_pool(self):
        """Unbounded ops keep their ad-hoc worker: a forever-parked guest
        accept must not occupy a pool shard and starve pooled traffic."""
        m = Machine(cards=1).boot()
        vm = pooled_vm(m, workers=2)
        glib = vm.vphi.libscif(vm.guest_process("app"))

        def listener():
            ep = yield from glib.open()
            yield from glib.bind(ep, PORT + 1)
            yield from glib.listen(ep)
            # nobody ever connects: this accept never completes
            yield from glib.accept(ep)

        def worker():
            out = []
            for _ in range(4):
                ids = yield from glib.get_node_ids()
                out.append(ids)
            return out

        vm.spawn_guest(listener())
        w = vm.spawn_guest(worker())
        m.run(until=m.sim.now + 0.01)
        assert w.triggered, "pooled traffic starved behind a parked accept"
        assert vm.qemu.worker_events >= 1   # the accept's ad-hoc worker
        assert vm.vphi.backend.pool.inflight == 0

    def test_out_of_order_completion_by_tag(self):
        """A fast op submitted after a slow one completes first; the
        frontend counts the reorder and still matches strictly by tag."""
        m = Machine(cards=1).boot()
        vm = pooled_vm(m)
        card = m.card_node_id(0)
        size = 16 * MB   # ~2.6ms of DMA: dwarfs the fast op's overhead
        ready = window_server(m, PORT, size, fill=0x77)
        gproc = vm.guest_process("slow")
        glib = vm.vphi.libscif(gproc)
        glib2 = vm.vphi.libscif(vm.guest_process("fast"))

        rma_started = m.sim.event()

        def slow():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            vma = gproc.address_space.mmap(size, populate=True)
            rma_started.succeed()
            n = yield from glib.vreadfrom(ep, vma.start, size, roff)
            return n, int(gproc.address_space.read(vma.start, size).sum()), m.sim.now

        def fast():
            # warm-up call advances the endpoint-less round-robin so the
            # measured op lands on a member not sharded to the RMA handle
            yield from glib2.get_node_ids()
            # start once the slow RMA's tag is already on the wire
            yield rma_started
            yield m.sim.timeout(50e-6)
            yield from glib2.get_node_ids()
            return m.sim.now

        s = vm.spawn_guest(slow())
        f = vm.spawn_guest(fast())
        m.run()
        n, csum, slow_done = s.value
        assert n == size and csum == 0x77 * size
        # the later-submitted fast op completed while the RMA was in
        # flight — its newer tag retired first, and the frontend noticed
        assert f.value < slow_done
        assert vm.tracer.counters["vphi.completions.out_of_order"] >= 1

    def test_claiming_an_unparked_tag_is_a_driver_bug(self):
        m = Machine(cards=1).boot()
        vm = pooled_vm(m)
        with pytest.raises(SimError):
            vm.vphi.frontend.claim_response(9999)

    def test_pool_member_death_respawns_in_place(self):
        """WORKER_DEATH under pooled dispatch kills the servicing member;
        it respawns on the same shard and the idempotent op recovers."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.WORKER_DEATH, op="vreadfrom", max_fires=1,
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm = pooled_vm(m)
        card = m.card_node_id(0)
        size = 64 * KB
        ready = window_server(m, PORT, size, fill=0x42)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            vma = gproc.address_space.mmap(size, populate=True)
            yield from glib.vreadfrom(ep, vma.start, size, roff)
            return int(gproc.address_space.read(vma.start, size).sum())

        c = vm.spawn_guest(client())
        m.run()
        assert c.value == 0x42 * size
        pool = vm.vphi.backend.pool
        assert pool.deaths == 1 and pool.respawns == 1
        assert vm.tracer.counters["vphi.fault.recovered"] == 1
        assert pool.inflight == 0


# ----------------------------------------------------------------------
# the re-open regression: fresh endpoint, no aliasing, one gate
# ----------------------------------------------------------------------
class TestEndpointReopen:
    def test_reopen_swaps_in_a_fresh_endpoint(self):
        """An injected ENODEV re-opens the backend descriptor as a *new*
        Endpoint: the dead object is detached (no peer alias), the peer
        is re-wired to the survivor, and the retried RMA still lands."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.SCIF_ERROR, errno=ENODEV, op="vreadfrom",
            max_fires=1,
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm = pooled_vm(m)
        card = m.card_node_id(0)
        size = 64 * KB
        ready = window_server(m, PORT, size, fill=0x66)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            vma = gproc.address_space.mmap(size, populate=True)
            yield from glib.vreadfrom(ep, vma.start, size, roff)
            return ep.handle, int(gproc.address_space.read(vma.start, size).sum())

        c = vm.spawn_guest(client())
        m.run()
        handle, csum = c.value
        assert csum == 0x66 * size  # the retry succeeded post-re-open
        backend = vm.vphi.backend
        assert backend.endpoint_reopens == 1
        live = backend.endpoints[handle]
        # the survivor is connected and mutually linked with its peer —
        # no third object aliases the pair
        assert live.state is EpState.CONNECTED
        assert live.peer is not None and live.peer.peer is live
        # the dead descriptor was detached, not left aliasing the peer
        dead = [e for e in m.kernel.scif_node.endpoints
                if e.owner == f"qemu-{vm.name}" and e is not live
                and e.peer_addr == live.peer_addr]
        assert dead, "the revoked descriptor object should still exist"
        for e in dead:
            assert e.peer is None
            assert e.state is EpState.CLOSED

    def test_concurrent_reopens_collapse_through_the_gate(self):
        """Two workers hitting ENODEV from one outage trigger exactly one
        re-open; the second caller waits for the first's descriptor."""
        m = Machine(cards=1).boot()
        vm = pooled_vm(m)
        card = m.card_node_id(0)
        ready = window_server(m, PORT, 4 * KB)
        glib = vm.vphi.libscif(vm.guest_process("app"))
        backend = vm.vphi.backend

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            yield ready
            before = backend.endpoints[ep.handle]
            a = m.sim.spawn(backend.reopen_endpoint(ep.handle))
            b = m.sim.spawn(backend.reopen_endpoint(ep.handle))
            while not (a.triggered and b.triggered):
                yield m.sim.timeout(10e-6)
            return before, ep.handle

        c = vm.spawn_guest(client())
        m.run()
        before, handle = c.value
        assert backend.endpoint_reopens == 1
        assert backend.endpoints[handle] is not before
        assert not backend._reopening  # the gate was torn down

    def test_reopen_of_unknown_handle_raises_typed_error(self):
        # a silent no-op here let a corrupted handle table go unnoticed;
        # the backend now rejects the re-open loudly with a typed error.
        m = Machine(cards=1).boot()
        vm = pooled_vm(m)

        def driver():
            with pytest.raises(EBADF):
                yield from vm.vphi.backend.reopen_endpoint(12345)

        m.sim.spawn(driver())
        m.run()
        assert vm.vphi.backend.endpoint_reopens == 0
        assert vm.tracer.counters["vphi.backend.bogus_reopens"] == 1
