"""Fault injection + recovery through the full vPHI datapath.

Idempotent ops (the registry declares which) must ride out transient
faults — injected ECONNRESET/ENODEV, worker death, ring corruption, link
flaps — via the frontend's bounded-backoff retry; non-idempotent ops must
fail fast with the typed ScifError; and one VM's faults must not corrupt
another VM's results.
"""

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.analysis import per_op_stats
from repro.faults import ENODEV
from repro.scif.errors import ECONNRESET, ETIMEDOUT
from repro.vphi import VPhiConfig

PORT = 4400
MB = 1 << 20
SIZE = 1 * MB


def faulty_machine(*specs, **machine_kw):
    return Machine(
        cards=1, fault_plan=FaultPlan.of(*specs), **machine_kw
    ).boot()


def window_server(machine, port=PORT, size=SIZE, fill=0x5A):
    """Card-side server exposing a registered window; returns the
    ready-event that fires with the window's registered offset."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    machine.sim.spawn(server())
    return ready


def guest_rma_read(machine, vm, ready, port=PORT, size=SIZE, reads=1):
    """Guest client: connect, vreadfrom `reads` times, return checksums."""
    gproc = vm.guest_process("reader")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), port))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        sums = []
        for _ in range(reads):
            yield from glib.vreadfrom(ep, vma.start, size, roff)
            sums.append(int(gproc.address_space.read(vma.start, 4096).sum()))
        yield from glib.send(ep, b"x")
        return sums

    return vm.spawn_guest(client())


def op_stats(vm, name):
    return next(s for s in per_op_stats(vm.vphi.frontend) if s.op == name)


def test_idempotent_op_retries_injected_econnreset():
    """An injected host ECONNRESET on an RMA read is retried and the
    payload still arrives intact — the caller never sees the fault."""
    m = faulty_machine(
        FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ECONNRESET,
                  op="vreadfrom", at=(0,)),
    )
    vm = m.create_vm("vm0")
    ready = window_server(m)
    client = guest_rma_read(m, vm, ready)
    m.run()
    assert client.value == [0x5A * 4096]
    fe = vm.vphi.frontend
    assert fe.retries == 1
    s = op_stats(vm, "vreadfrom")
    assert (s.injected, s.retried, s.recovered, s.failed) == (1, 1, 1, 0)
    assert vm.tracer.counters["vphi.fault.recovered"] == 1


def test_non_idempotent_op_fails_fast_with_typed_error():
    """send mutates peer state, so an injected fault must surface as the
    typed ScifError immediately — no retry."""
    m = faulty_machine(
        FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ECONNRESET,
                  op="send", at=(0,)),
    )
    vm = m.create_vm("vm0")
    ready = window_server(m)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        yield ready
        try:
            yield from glib.send(ep, b"boom")
        except ECONNRESET as err:
            return err
        return None

    c = vm.spawn_guest(client())
    m.run()
    assert isinstance(c.value, ECONNRESET)
    assert vm.vphi.frontend.retries == 0
    s = op_stats(vm, "send")
    assert (s.injected, s.retried, s.failed) == (1, 0, 1)


def test_worker_death_recovers_and_frees_descriptors():
    """A worker dying mid-request completes the orphan with ECONNRESET
    after the respawn delay; the retry succeeds and no ring descriptor
    leaks."""
    m = faulty_machine(
        FaultSpec(kind=FaultKind.WORKER_DEATH, op="vreadfrom", at=(0,)),
    )
    vm = m.create_vm("vm0")
    ready = window_server(m)
    client = guest_rma_read(m, vm, ready)
    m.run()
    assert client.value == [0x5A * 4096]
    assert vm.vphi.frontend.retries == 1
    ring = vm.vphi.virtio.ring
    assert ring.num_free == ring.size
    assert m.faults.fires_of(FaultKind.WORKER_DEATH) == 1


def test_enodev_reopens_backend_endpoint():
    """Driver death (ENODEV) makes the backend re-open its host endpoint;
    the retried idempotent op then succeeds on the same guest handle."""
    m = faulty_machine(
        FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ENODEV,
                  op="vreadfrom", at=(0,)),
    )
    vm = m.create_vm("vm0")
    ready = window_server(m)
    client = guest_rma_read(m, vm, ready)
    m.run()
    assert client.value == [0x5A * 4096]
    be = vm.vphi.backend
    assert be.endpoint_reopens == 1
    assert vm.tracer.counters["vphi.backend.endpoint_reopens"] == 1


def test_ring_corruption_detected_and_retried():
    """A corrupted descriptor chain is detected at pop time, completed
    with ECONNRESET, and the idempotent request retried."""
    m = faulty_machine(
        FaultSpec(kind=FaultKind.RING_CORRUPT, op="vreadfrom", at=(0,)),
    )
    vm = m.create_vm("vm0")
    ready = window_server(m)
    client = guest_rma_read(m, vm, ready)
    m.run()
    assert client.value == [0x5A * 4096]
    assert vm.vphi.frontend.retries == 1
    ring = vm.vphi.virtio.ring
    assert ring.num_free == ring.size


def test_link_flap_stalls_but_never_fails():
    """A flap takes the PCIe link down mid-workload: the RMA rides out
    the retraining as pure added latency (PCIe replays, nothing is
    lost) and the payload arrives intact."""
    flap = 10e-3

    def run_once(plan_specs):
        m = (Machine(cards=1, fault_plan=FaultPlan.of(*plan_specs)).boot()
             if plan_specs else Machine(cards=1).boot())
        vm = m.create_vm("vm0")
        ready = window_server(m)
        client = guest_rma_read(m, vm, ready)
        t0 = m.sim.now
        m.run()
        return m, client.value, m.sim.now - t0

    _, clean_sums, clean_t = run_once([])
    m, flap_sums, flap_t = run_once([
        FaultSpec(kind=FaultKind.LINK_FLAP, op="vreadfrom", at=(0,),
                  duration=flap),
    ])
    assert flap_sums == clean_sums == [0x5A * 4096]
    assert m.devices[0].link.flaps == 1
    assert m.devices[0].link.stall_time > 0
    # the whole outage shows up as latency, never as a failure
    assert flap_t >= clean_t + flap * 0.5
    assert m.faults.fires_of(FaultKind.LINK_FLAP) == 1


def test_watchdog_times_out_hung_backend():
    """When the backend truly hangs, the per-op watchdog bounds the wait:
    idempotent ops retry then surface ETIMEDOUT; the abandoned tags are
    recorded."""
    cfg = VPhiConfig(op_timeout=1e-3, max_retries=2)
    m = Machine(cards=1).boot()
    vm = m.create_vm("vm0", vphi_config=cfg)

    # hang the device: kicks are swallowed, nothing ever completes
    def swallow():
        yield m.sim.timeout(0)

    vm.vphi.virtio.bind_backend(swallow)
    glib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        try:
            yield from glib.open()  # idempotent: retried, then times out
        except ETIMEDOUT as err:
            return err
        return None

    c = vm.spawn_guest(client())
    m.run()
    assert isinstance(c.value, ETIMEDOUT)
    fe = vm.vphi.frontend
    assert fe.timeouts == 3  # initial attempt + 2 retries
    assert fe.retries == 2
    assert vm.tracer.counters["vphi.fault.timeouts"] == 3
    assert len(fe._abandoned) == 3


def test_one_vms_faults_do_not_corrupt_the_other_vm():
    """Faults pinned to vm1 leave vm2's results intact and its op
    latencies within 5% of a fault-free run (graceful degradation)."""

    def run(specs):
        m = (Machine(cards=1, fault_plan=FaultPlan.of(*specs)).boot()
             if specs else Machine(cards=1).boot())
        vm1 = m.create_vm("vm1")
        vm2 = m.create_vm("vm2")
        r1 = window_server(m, port=PORT)
        r2 = window_server(m, port=PORT + 1, fill=0x33)
        c1 = guest_rma_read(m, vm1, r1, port=PORT, reads=6)
        c2 = guest_rma_read(m, vm2, r2, port=PORT + 1, reads=6)
        m.run()
        lat2 = vm2.tracer.stats["vphi.op.vreadfrom.latency"].mean
        return m, vm1, vm2, c1.value, c2.value, lat2

    _, _, _, _, base_c2, base_lat2 = run([])
    m, vm1, vm2, got_c1, got_c2, lat2 = run([
        FaultSpec(kind=FaultKind.SCIF_ERROR, errno=ECONNRESET,
                  op="vreadfrom", vm="vm1", every=3),
    ])
    # vm1 recovered every injected fault; vm2 saw none
    assert got_c1 == [0x5A * 4096] * 6
    assert got_c2 == base_c2 == [0x33 * 4096] * 6
    assert vm1.vphi.frontend.retries == m.faults.injected > 0
    assert vm2.vphi.frontend.retries == 0
    assert vm2.tracer.counters["vphi.fault.injected"] == 0
    # vm2's mean latency stays within 5% of the fault-free run
    assert lat2 == pytest.approx(base_lat2, rel=0.05)
