"""Fairness across sharing VMs: neither tenant starves the other."""

import pytest

from repro import Machine

MB = 1 << 20
PORT = 8500


def window_server(machine, port, size):
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    machine.sim.spawn(server())
    return ready


def streaming_reader(machine, vm, port, ready, size, rounds):
    """A guest pulling `rounds` x `size` from the card; returns times."""
    gproc = vm.guest_process("reader")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), port))
        roff = yield ready
        vma = gproc.address_space.mmap(size, populate=True)
        per_round = []
        for _ in range(rounds):
            t0 = machine.sim.now
            yield from glib.vreadfrom(ep, vma.start, size, roff)
            per_round.append(machine.sim.now - t0)
        yield from glib.send(ep, b"x")
        return per_round

    return vm.spawn_guest(client())


def test_two_streaming_vms_share_bandwidth_fairly():
    """Two identical streaming tenants: FIFO link arbitration keeps their
    aggregate throughput split within ~15%."""
    machine = Machine(cards=1).boot()
    vm1 = machine.create_vm("vm1")
    vm2 = machine.create_vm("vm2")
    size, rounds = 16 * MB, 8
    r1 = window_server(machine, PORT, size)
    r2 = window_server(machine, PORT + 1, size)
    c1 = streaming_reader(machine, vm1, PORT, r1, size, rounds)
    c2 = streaming_reader(machine, vm2, PORT + 1, r2, size, rounds)
    machine.run()
    t1 = sum(c1.value)
    t2 = sum(c2.value)
    assert t1 == pytest.approx(t2, rel=0.15)
    # and both got meaningfully slowed by contention vs the ~30ms solo
    solo = rounds * (size / 4.6e9 + 400e-6)
    assert t1 > 1.2 * solo


def test_latency_tenant_not_starved_by_bulk_tenant():
    """A latency-sensitive VM keeps sub-ms operations while a bulk VM
    streams: control messages don't queue behind DMA bursts."""
    machine = Machine(cards=1).boot()
    vm_bulk = machine.create_vm("vm-bulk")
    vm_lat = machine.create_vm("vm-lat")
    size = 64 * MB
    rb = window_server(machine, PORT, size)
    streaming_reader(machine, vm_bulk, PORT, rb, size, 4)

    # latency tenant: repeated small sends to its own card server
    slib = machine.scif(machine.card_process("lat-srv"))

    def lat_server():
        ep = yield from slib.open()
        yield from slib.bind(ep, PORT + 1)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        for _ in range(10):
            yield from slib.recv(conn, 1)

    gproc = vm_lat.guest_process("pinger")
    glib = vm_lat.vphi.libscif(gproc)

    def pinger():
        ep = yield from glib.open()
        yield from glib.connect(ep, (machine.card_node_id(0), PORT + 1))
        lats = []
        for _ in range(10):
            t0 = machine.sim.now
            yield from glib.send(ep, b"\x01")
            lats.append(machine.sim.now - t0)
        return lats

    machine.sim.spawn(lat_server())
    p = vm_lat.spawn_guest(pinger())
    machine.run()
    lats = p.value
    # every ping stayed near the uncontended 382us (control path is not
    # arbitrated against bulk DMA)
    assert max(lats) < 450e-6
