"""Session recovery: journal + replay across card resets and restarts.

The tentpole invariant: a VM with open connections, registered windows
and a live scif_mmap mapping *survives* an injected CARD_RESET — the
session journal replays through the normal op path, and a post-reset
writeto/readfrom round-trip moves correct data.  Around it: the
machine-wide abort blast radius (every VM sharing the card), the per-VM
BACKEND_RESTART scope, the three degraded-mode policies, and the epoch
fence that keeps stale pre-reset completions out of rebuilt state.
"""

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.mem import PAGE_SIZE
from repro.scif import MapFlag, ScifError
from repro.scif.errors import ENXIO, EStaleEpoch
from repro.vphi import VPhiConfig

PORT = 9100
KB = 1 << 10
MB = 1 << 20
WIN = 256 * KB
#: the card server re-registers its window at this fixed RAS offset on
#: every accept, so journaled client roffsets stay valid across resets.
FIXED_ROFF = 0x40000


def resilient_window_server(machine, port, size=WIN, fill=0x5A):
    """Card-side peer that survives connection loss: accept, register the
    same backing memory at a FIXED offset, loop back to accept — so a
    replayed connect after a card reset finds the same remote window."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()
    stats = {"accepts": 0}

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(size, populate=True, name="card-win")
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        while True:
            conn, _ = yield from slib.accept(ep)
            stats["accepts"] += 1
            roff = yield from slib.register(
                conn, vma.start, size,
                offset=FIXED_ROFF, flags=MapFlag.SCIF_MAP_FIXED,
            )
            if not ready.triggered:
                ready.succeed(roff)

    machine.sim.spawn(server())
    return ready, stats


def recovering_vm(machine, name="vm0", policy="queue", **kw):
    return machine.create_vm(
        name, ram_bytes=2 << 30,
        vphi_config=VPhiConfig(recovery_policy=policy, **kw),
    )


# ----------------------------------------------------------------------
# the tentpole: end-to-end survival of a CARD_RESET
# ----------------------------------------------------------------------
class TestSessionSurvivesCardReset:
    @pytest.mark.parametrize("workers", [0, 4], ids=["blocking", "pooled"])
    def test_e2e_reset_replay_and_rma_roundtrip(self, workers):
        """Open + connect + register + mmap, reset mid-writeto, then the
        retried writeto and a readfrom round-trip correct data — and the
        mmap VMA resolves through the *rebuilt* window after the zap."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="writeto", vm="vm0", at=(0,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm = recovering_vm(m, backend_workers=workers)
        card = m.card_node_id(0)
        ready, srv = resilient_window_server(m, PORT)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            gproc.address_space.write(
                lvma.start, np.full(WIN, 0x11, dtype=np.uint8)
            )
            loff = yield from glib.register(ep, lvma.start, WIN)
            mvma = yield from glib.mmap(ep, roff, 2 * PAGE_SIZE)
            # populate the EPT through the PFNPHI fault path pre-reset
            pre = gproc.address_space.read(mvma.start, 16).tobytes()
            # this writeto triggers the card reset mid-dispatch; under the
            # queue policy it parks for the rebuild and retries invisibly
            n_write = yield from glib.writeto(ep, loff, WIN, roff)
            # wipe the local window, pull the remote one back
            gproc.address_space.write(lvma.start, np.zeros(WIN, dtype=np.uint8))
            n_read = yield from glib.readfrom(ep, loff, WIN, roff)
            pulled = int(gproc.address_space.read(lvma.start, WIN).sum())
            # the zapped VMA refaults into the rebuilt window
            post = gproc.address_space.read(mvma.start, 16).tobytes()
            return pre, n_write, n_read, pulled, post

        c = vm.spawn_guest(client())
        m.run()
        pre, n_write, n_read, pulled, post = c.value
        assert pre == bytes([0x5A]) * 16          # server fill, pre-reset
        assert n_write == WIN and n_read == WIN
        assert pulled == 0x11 * WIN               # the write really landed
        assert post == bytes([0x11]) * 16         # mmap sees rebuilt window

        ses = vm.vphi.frontend.session
        assert ses.state == "active"
        assert ses.resets_seen == 1
        assert ses.recoveries == 1
        assert ses.replayed_ops >= 4              # open+connect+register+mmap
        assert ses.replay_failures == 0
        assert srv["accepts"] == 2                # the replayed re-dial
        assert vm.tracer.counters["kvm.zap.vma"] == 1
        # the fenced writeto's real (pre-fence) completion was dropped
        assert ses.stale_drops >= 1
        # no leaks through the whole ordeal
        ring = vm.vphi.virtio.ring
        assert ring.num_free == ring.size
        assert vm.guest_kernel.kmalloc.live == 0

    def test_recovery_disabled_surfaces_typed_error(self):
        """policy='none' (the default): no journal, no replay — the
        fenced op surfaces its typed transient error to the caller."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="writeto", vm="vm0", at=(0,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm = m.create_vm(
            "vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig(max_retries=0),
        )
        card = m.card_node_id(0)
        ready, _ = resilient_window_server(m, PORT)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            loff = yield from glib.register(ep, lvma.start, WIN)
            try:
                yield from glib.writeto(ep, loff, WIN, roff)
            except ScifError as e:
                return type(e).__name__, e.errno_name
            return None

        c = vm.spawn_guest(client())
        m.run()
        assert c.value == ("ENXIO", "ENXIO")
        ses = vm.vphi.frontend.session
        assert ses.resets_seen == 1               # counted even when off
        assert ses.recoveries == 0
        assert ses.journal.size == 0              # nothing journaled
        assert vm.guest_kernel.kmalloc.live == 0


# ----------------------------------------------------------------------
# satellite 1: machine-wide abort of every VM's in-flight requests
# ----------------------------------------------------------------------
class TestMachineWideAbort:
    def test_card_reset_aborts_inflight_on_every_vm(self):
        """A reset triggered by vm0 aborts vm1's in-flight pooled request
        too: completed with ENXIO, descriptors freed, nothing leaked."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="writeto", vm="vm0", at=(0,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        cfg = dict(backend_workers=2, max_retries=0)
        vm0 = m.create_vm("vm0", ram_bytes=2 << 30,
                          vphi_config=VPhiConfig(**cfg))
        vm1 = m.create_vm("vm1", ram_bytes=2 << 30,
                          vphi_config=VPhiConfig(**cfg))
        card = m.card_node_id(0)
        r0, _ = resilient_window_server(m, PORT, size=4 * MB)
        r1, _ = resilient_window_server(m, PORT + 1, size=4 * MB)

        def client(vm, ready, port, delay):
            gproc = vm.guest_process("app")
            glib = vm.vphi.libscif(gproc)

            def body():
                ep = yield from glib.open()
                yield from glib.connect(ep, (card, port))
                roff = yield ready
                lvma = gproc.address_space.mmap(4 * MB, populate=True)
                loff = yield from glib.register(ep, lvma.start, 4 * MB)
                yield m.sim.timeout(delay)
                try:
                    yield from glib.writeto(ep, loff, 4 * MB, roff)
                except ScifError as e:
                    return type(e).__name__
                return "ok"

            return vm.spawn_guest(body())

        # vm1 launches its long RMA first; vm0's writeto fires the reset
        # while vm1's transfer is mid-flight on a pool member.
        c1 = client(vm1, r1, PORT + 1, 0.0)
        c0 = client(vm0, r0, PORT, 200e-6)
        m.run()
        assert c0.value == "ENXIO"                # the triggering request
        assert c1.value == "ENXIO"                # the innocent bystander
        assert vm1.vphi.backend.pool.aborted >= 1
        assert vm0.vphi.backend.card_resets == 1
        assert vm1.vphi.backend.card_resets == 1  # broadcast reached it
        for vm in (vm0, vm1):
            ring = vm.vphi.virtio.ring
            assert ring.num_free == ring.size, f"{vm.name} leaked descriptors"
            assert vm.guest_kernel.kmalloc.live == 0, f"{vm.name} leaked kmalloc"
            assert not vm.vphi.backend.endpoints  # table cleared

    def test_backend_restart_is_per_vm(self):
        """BACKEND_RESTART touches only the triggering VM: its session
        rebuilds while the neighbour never notices."""
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.BACKEND_RESTART, op="writeto", vm="vm0", at=(0,),
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm0 = recovering_vm(m, "vm0")
        vm1 = recovering_vm(m, "vm1")
        card = m.card_node_id(0)
        r0, _ = resilient_window_server(m, PORT)
        r1, _ = resilient_window_server(m, PORT + 1)

        def client(vm, ready, port):
            gproc = vm.guest_process("app")
            glib = vm.vphi.libscif(gproc)

            def body():
                ep = yield from glib.open()
                yield from glib.connect(ep, (card, port))
                roff = yield ready
                lvma = gproc.address_space.mmap(WIN, populate=True)
                loff = yield from glib.register(ep, lvma.start, WIN)
                n = yield from glib.writeto(ep, loff, WIN, roff)
                return n

            return vm.spawn_guest(body())

        c0 = client(vm0, r0, PORT)
        c1 = client(vm1, r1, PORT + 1)
        m.run()
        assert c0.value == WIN                    # recovered transparently
        assert c1.value == WIN
        assert vm0.vphi.backend.backend_restarts == 1
        assert vm0.vphi.frontend.session.recoveries == 1
        # the neighbour's session never heard about it
        assert vm1.vphi.backend.backend_restarts == 0
        assert vm1.vphi.backend.card_resets == 0
        assert vm1.vphi.frontend.session.resets_seen == 0
        assert vm1.vphi.frontend.session.epoch == 0


# ----------------------------------------------------------------------
# degraded-mode policies
# ----------------------------------------------------------------------
class TestRecoveryPolicies:
    def _reset_machine(self, policy, at=(0,), **cfg):
        plan = FaultPlan.of(FaultSpec(
            kind=FaultKind.CARD_RESET, op="writeto", vm="vm0", at=at,
        ))
        m = Machine(cards=1, fault_plan=plan).boot()
        vm = recovering_vm(m, policy=policy, **cfg)
        ready, _ = resilient_window_server(m, PORT)
        return m, vm, ready

    def test_fail_fast_rejects_submits_during_rebuild(self):
        m, vm, ready = self._reset_machine("fail_fast")
        card = m.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            loff = yield from glib.register(ep, lvma.start, WIN)
            outcomes = []
            try:
                yield from glib.writeto(ep, loff, WIN, roff)
            except EStaleEpoch as e:
                outcomes.append(("fenced", e.errno_name))
            # the session is still rebuilding: fail-fast rejects instantly
            try:
                yield from glib.writeto(ep, loff, WIN, roff)
            except EStaleEpoch:
                outcomes.append(("rejected", vm.vphi.frontend.session.state))
            # wait out the rebuild, then the op goes through again
            while vm.vphi.frontend.session.state != "active":
                yield m.sim.timeout(1e-3)
            n = yield from glib.writeto(ep, loff, WIN, roff)
            outcomes.append(("after", n))
            return outcomes

        c = vm.spawn_guest(client())
        m.run()
        assert c.value == [
            ("fenced", "ESTALE"),
            ("rejected", "recovering"),
            ("after", WIN),
        ]
        assert vm.vphi.frontend.session.rejected_submits == 1
        assert vm.vphi.frontend.session.recoveries == 1

    def test_queue_policy_parks_and_replays_transparently(self):
        m, vm, ready = self._reset_machine("queue")
        card = m.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            loff = yield from glib.register(ep, lvma.start, WIN)
            n = yield from glib.writeto(ep, loff, WIN, roff)
            return n

        c = vm.spawn_guest(client())
        m.run()
        assert c.value == WIN                     # no error ever surfaced
        ses = vm.vphi.frontend.session
        assert ses.recoveries == 1
        assert ses.aborted_inflight >= 1

    def test_circuit_break_gives_up_after_repeated_resets(self):
        # every writeto dispatch resets the card; with a 1-reset budget
        # the second fence opens the circuit and the session is BROKEN.
        m, vm, ready = self._reset_machine(
            "circuit_break", at=(0, 1, 2, 3),
            recovery_max_resets=1, recovery_window=10.0,
        )
        card = m.card_node_id(0)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            loff = yield from glib.register(ep, lvma.start, WIN)
            outcomes = []
            try:
                yield from glib.writeto(ep, loff, WIN, roff)
            except EStaleEpoch as e:
                outcomes.append(("broken", e.errno_name))
            # the circuit is open: every further submit fails instantly
            try:
                yield from glib.writeto(ep, loff, WIN, roff)
            except EStaleEpoch as e:
                outcomes.append(("still-broken", e.errno_name))
            return outcomes

        c = vm.spawn_guest(client())
        m.run()
        assert c.value == [
            ("broken", "ESTALE"), ("still-broken", "ESTALE"),
        ]
        ses = vm.vphi.frontend.session
        assert ses.state == "broken"
        assert vm.tracer.counters["vphi.session.circuit_open"] == 1
        assert vm.guest_kernel.kmalloc.live == 0


# ----------------------------------------------------------------------
# journal bookkeeping
# ----------------------------------------------------------------------
class TestJournal:
    def test_lifecycle_ops_build_and_prune_the_journal(self):
        m = Machine(cards=1).boot()
        vm = recovering_vm(m)
        card = m.card_node_id(0)
        ready, _ = resilient_window_server(m, PORT)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)
        ses = vm.vphi.frontend.session

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            roff = yield ready
            lvma = gproc.address_space.mmap(WIN, populate=True)
            loff = yield from glib.register(ep, lvma.start, WIN)
            mvma = yield from glib.mmap(ep, roff, 2 * PAGE_SIZE)
            rec = ses.journal.endpoints[ep.handle]
            full = (len(rec.windows), len(rec.mmaps), rec.addr,
                    ses.journal.size, ses.journal.replay_ops)
            yield from glib.munmap(mvma)
            yield from glib.unregister(ep, loff)
            pruned = (len(rec.windows), len(rec.mmaps))
            yield from glib.close(ep)
            return full, pruned, len(ses.journal.endpoints)

        c = vm.spawn_guest(client())
        m.run()
        full, pruned, left = c.value
        # open+connect+register+mmap: 4 facts, 4 replay round-trips
        assert full == (1, 1, (card, PORT), 4, 4)
        assert pruned == (0, 0)                   # munmap/unregister prune
        assert left == 0                          # close drops the record

    def test_journal_stays_empty_when_recovery_disabled(self):
        m = Machine(cards=1).boot()
        vm = m.create_vm("vm0", ram_bytes=2 << 30, vphi_config=VPhiConfig())
        card = m.card_node_id(0)
        ready, _ = resilient_window_server(m, PORT)
        glib = vm.vphi.libscif(vm.guest_process("app"))

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
            yield ready

        c = vm.spawn_guest(client())
        m.run()
        assert c.triggered
        assert vm.vphi.frontend.session.journal.size == 0


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestRecoveryConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(Exception):
            VPhiConfig(recovery_policy="hope")

    def test_default_is_disabled(self):
        cfg = VPhiConfig()
        assert cfg.recovery_policy == "none"
        assert not cfg.recovery_enabled
        assert VPhiConfig(recovery_policy="queue").recovery_enabled
