"""Request-lifecycle span invariants through the full vPHI datapath.

Every forwarded request carries one :class:`~repro.sim.Span` from guest
marshal to guest return.  Whatever the path did — blocking or pooled
dispatch, transient-fault retries, ESTALE session fencing, machine-wide
aborts — when the machine quiesces:

* every span is closed with a terminal status (no leaks);
* its phase marks are monotone and gap-free;
* its phase durations sum to the measured end-to-end latency within
  1e-9 simulated seconds (the acceptance bound);
* fault-free spans stamp exactly the phase subsequence their
  :class:`~repro.vphi.ops.OpSpec` declares.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.analysis import (
    check_span_invariants,
    render_span_breakdown,
    span_breakdown,
    validate_chrome_trace,
)
from repro.scif import MapFlag, ScifError
from repro.scif.errors import ECONNRESET
from repro.vphi import VPhiConfig, registered_ops
from repro.vphi.ops import SPAN_RETRY_BACKOFF, SPAN_SESSION_WAIT

N_EXAMPLES = int(os.environ.get("VPHI_CHAOS_EXAMPLES", "10"))

PORT = 8800
KB = 1 << 10
TOL = 1e-9  # acceptance: phases sum to e2e latency within 1e-9 sim-seconds

SPEC_BY_NAME = {spec.op_name: spec for spec in registered_ops()}


def assert_span_contract(tracer):
    """The full invariant battery for one VM's tracer after quiesce."""
    problems = check_span_invariants(tracer, tol=TOL)
    assert problems == [], "\n".join(problems)
    assert not tracer.active_spans, "open spans leaked past quiesce"
    for span in tracer.spans:
        assert span.status is not None
        assert abs(sum(span.phase_durations().values()) - span.elapsed) <= TOL


def assert_declared_subsequence(span):
    """A fault-free span stamps a subsequence of its op's declared order."""
    declared = SPEC_BY_NAME[span.op].span_phases
    stamped = [phase for phase, _ in span.marks]
    it = iter(declared)
    for phase in stamped:
        for cand in it:
            if cand == phase:
                break
        else:
            pytest.fail(
                f"{span.op}: stamped {stamped} is not a subsequence "
                f"of declared {declared}"
            )


def echo_server(machine, port, nbytes):
    slib = machine.scif(machine.card_process(f"srv{port}"))

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        data = yield from slib.recv(conn, nbytes)
        yield from slib.send(conn, data.tobytes()[::-1])

    machine.sim.spawn(server())


def window_server(machine, port, size, fill=0x5A):
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        conn, _ = yield from slib.accept(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        roff = yield from slib.register(conn, vma.start, size)
        ready.succeed(roff)
        yield from slib.recv(conn, 1)

    machine.sim.spawn(server())
    return ready


def resilient_window_server(machine, port, size, fill=0x5A, roff=0x10000):
    """Card-side peer surviving connection loss: accept in a loop and
    re-register the same backing memory at a fixed offset, so a replayed
    connect after a card reset finds the same remote window."""
    sproc = machine.card_process(f"srv{port}")
    slib = machine.scif(sproc)
    ready = machine.sim.event()

    def server():
        ep = yield from slib.open()
        yield from slib.bind(ep, port)
        yield from slib.listen(ep)
        vma = sproc.address_space.mmap(size, populate=True)
        sproc.address_space.write(vma.start, np.full(size, fill, dtype=np.uint8))
        while True:
            conn, _ = yield from slib.accept(ep)
            offset = yield from slib.register(
                conn, vma.start, size,
                offset=roff, flags=MapFlag.SCIF_MAP_FIXED,
            )
            if not ready.triggered:
                ready.succeed(offset)

    machine.sim.spawn(server())
    return ready


# ----------------------------------------------------------------------
# fault-free: both dispatch modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [0, 4], ids=["blocking", "pooled"])
def test_fault_free_spans_close_and_telescope(workers):
    m = Machine(cards=1).boot()
    cfg = VPhiConfig(backend_workers=workers) if workers else VPhiConfig()
    vm = m.create_vm("vm0", vphi_config=cfg)
    echo_server(m, PORT, 8)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        yield from glib.send(ep, b"abcdefgh")
        data = yield from glib.recv(ep, 8)
        yield from glib.close(ep)
        return data.tobytes()

    c = vm.spawn_guest(client())
    m.run()
    assert c.value == b"hgfedcba"

    assert_span_contract(vm.tracer)
    spans = list(vm.tracer.spans)
    assert [s.op for s in spans] == ["open", "connect", "send", "recv", "close"]
    for span in spans:
        assert span.status == "ok"
        assert span.tags, "span was never bound to a wire tag"
        assert_declared_subsequence(span)
    # the payload phases only appear on the ops that carry payload
    send = next(s for s in spans if s.op == "send")
    recv = next(s for s in spans if s.op == "recv")
    assert "copy_in" in dict(send.marks)
    assert "copy_out" in dict(recv.marks)
    assert "copy_in" not in dict(recv.marks)
    # pooled dispatch stamps the credit wait; blocking never does
    pooled_phases = dict(send.marks)
    assert ("credit_wait" in pooled_phases) == bool(workers)


def test_span_breakdown_and_export_agree_with_spans():
    m = Machine(cards=1).boot()
    vm = m.create_vm("vm0")
    echo_server(m, PORT, 8)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        yield from glib.send(ep, b"abcdefgh")
        yield from glib.recv(ep, 8)

    vm.spawn_guest(client())
    m.run()

    bd = span_breakdown(vm.tracer)
    for op, agg in bd.items():
        assert abs(sum(agg.phases.values()) - agg.total) <= TOL * agg.count
        assert agg.statuses == {"ok": agg.count}
    text = render_span_breakdown(bd)
    assert "send" in text and "guest_wake" in text

    doc = vm.tracer.export_chrome_trace()
    assert validate_chrome_trace(doc) == []
    # one enclosing X event per span plus one per phase segment
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    expected = sum(1 + len(s.marks) for s in vm.tracer.spans)
    assert len(xs) == expected


def test_spans_disabled_adds_no_simulated_time():
    """trace_spans=False must not change the simulation by a tick."""

    def run(trace_spans):
        m = Machine(cards=1).boot()
        vm = m.create_vm("vm0", vphi_config=VPhiConfig(trace_spans=trace_spans))
        echo_server(m, PORT, 8)
        gproc = vm.guest_process("app")
        glib = vm.vphi.libscif(gproc)

        def client():
            ep = yield from glib.open()
            yield from glib.connect(ep, (m.card_node_id(0), PORT))
            yield from glib.send(ep, b"abcdefgh")
            yield from glib.recv(ep, 8)

        vm.spawn_guest(client())
        m.run()
        return m.sim.now, len(vm.tracer.spans)

    t_on, spans_on = run(True)
    t_off, spans_off = run(False)
    assert t_on == t_off  # byte-identical clock, not approximately
    assert spans_on > 0 and spans_off == 0


# ----------------------------------------------------------------------
# fault paths: retries, fail-fast errors, session fencing
# ----------------------------------------------------------------------
def test_retried_op_keeps_one_span_with_backoff_phase():
    """A transient ECONNRESET on an idempotent op retries invisibly; the
    request keeps ONE span spanning both attempts, with the backoff
    stamped and the renewed wire tag appended."""
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.SCIF_ERROR, errno=ECONNRESET, op="vreadfrom", at=(0,),
    ))
    m = Machine(cards=1, fault_plan=plan).boot()
    vm = m.create_vm("vm0")
    ready = window_server(m, PORT, 4 * KB)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(4 * KB, populate=True)
        yield from glib.vreadfrom(ep, vma.start, 4 * KB, roff)
        yield from glib.send(ep, b"x")
        return int(gproc.address_space.read(vma.start, 4 * KB).sum())

    c = vm.spawn_guest(client())
    m.run()
    assert c.value == 0x5A * 4 * KB

    assert_span_contract(vm.tracer)
    rma = [s for s in vm.tracer.spans if s.op == "vreadfrom"]
    assert len(rma) == 1, "the retry must extend the span, not open another"
    span = rma[0]
    assert span.status == "ok"
    assert len(span.tags) == 2, "the retry renews the tag on the same span"
    assert SPAN_RETRY_BACKOFF in dict(span.marks)


def test_failfast_op_span_ends_with_error_status():
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.SCIF_ERROR, errno=ECONNRESET, op="send", at=(0,),
    ))
    m = Machine(cards=1, fault_plan=plan).boot()
    vm = m.create_vm("vm0")
    ready = window_server(m, PORT, 4 * KB)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        yield ready
        try:
            yield from glib.send(ep, b"boom")
        except ScifError as err:
            return type(err).__name__

    c = vm.spawn_guest(client())
    m.run()
    assert c.value == "ECONNRESET"

    assert_span_contract(vm.tracer)
    send = next(s for s in vm.tracer.spans if s.op == "send")
    assert send.status == "error"


@pytest.mark.parametrize("workers", [0, 4], ids=["blocking", "pooled"])
def test_card_reset_fences_without_leaking_spans(workers):
    """A mid-op CARD_RESET aborts in-flight requests and fences stale
    epochs; every span still closes (ok after replay, or stale/error)."""
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.CARD_RESET, op="vreadfrom", vm="vm0", at=(0,),
    ))
    m = Machine(cards=1, fault_plan=plan).boot()
    vm = m.create_vm(
        "vm0",
        vphi_config=VPhiConfig(recovery_policy="queue", backend_workers=workers),
    )
    ready = resilient_window_server(m, PORT, 4 * KB)
    gproc = vm.guest_process("app")
    glib = vm.vphi.libscif(gproc)

    def client():
        ep = yield from glib.open()
        yield from glib.connect(ep, (m.card_node_id(0), PORT))
        roff = yield ready
        vma = gproc.address_space.mmap(4 * KB, populate=True)
        outcomes = []
        for _ in range(2):
            try:
                yield from glib.vreadfrom(ep, vma.start, 4 * KB, roff)
                outcomes.append("ok")
            except ScifError as err:
                outcomes.append(type(err).__name__)
        return outcomes

    c = vm.spawn_guest(client())
    m.run()
    assert c.triggered

    assert_span_contract(vm.tracer)
    statuses = {s.status for s in vm.tracer.spans}
    assert statuses <= {"ok", "error", "timeout", "stale"}
    # the fenced request either replayed (session_wait/backoff stamped on
    # its span) or surfaced a typed error — never a leak either way
    fenced = [
        s for s in vm.tracer.spans
        if SPAN_SESSION_WAIT in dict(s.marks) or SPAN_RETRY_BACKOFF in dict(s.marks)
        or s.status != "ok"
    ]
    assert fenced, "the reset left no trace on any span"


# ----------------------------------------------------------------------
# property: random op mixes under random fault plans never leak spans
# ----------------------------------------------------------------------
CHAOS_VM = "vm-chaos"

PER_VM_KINDS = tuple(
    k for k in FaultKind.ALL
    if k not in (FaultKind.CARD_RESET, FaultKind.BACKEND_RESTART)
)

fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(PER_VM_KINDS),
    op=st.sampled_from([None, "vreadfrom", "vwriteto", "fence_mark"]),
    vm=st.just(CHAOS_VM),
    every=st.integers(1, 4),
    max_fires=st.one_of(st.none(), st.integers(1, 3)),
    duration=st.floats(50e-6, 500e-6),
)

chaos_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(1, 64 * KB)),
        st.tuples(st.just("write"), st.integers(1, 64 * KB)),
        st.tuples(st.just("fence"), st.just(0)),
        st.tuples(st.just("nodes"), st.just(0)),
    ),
    min_size=2, max_size=6,
)


@settings(max_examples=N_EXAMPLES, deadline=None, print_blob=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(specs=st.lists(fault_specs, min_size=1, max_size=3),
       ops=chaos_ops,
       workers=st.sampled_from([0, 4]))
def test_property_spans_survive_chaos(specs, ops, workers):
    m = Machine(cards=1, fault_plan=FaultPlan.of(*specs)).boot()
    cfg = VPhiConfig(op_timeout=2e-3, max_retries=2, backend_workers=workers)
    vm = m.create_vm(CHAOS_VM, vphi_config=cfg)
    card = m.card_node_id(0)
    ready = window_server(m, PORT, 256 * KB)
    gproc = vm.guest_process("chaos-app")
    glib = vm.vphi.libscif(gproc)

    def client():
        try:
            ep = yield from glib.open()
            yield from glib.connect(ep, (card, PORT))
        except ScifError:
            return
        roff = yield ready
        vma = gproc.address_space.mmap(64 * KB, populate=True)
        for verb, nbytes in ops:
            try:
                if verb == "read":
                    yield from glib.vreadfrom(ep, vma.start, nbytes, roff)
                elif verb == "write":
                    yield from glib.vwriteto(ep, vma.start, nbytes, roff)
                elif verb == "fence":
                    yield from glib.fence_mark(ep)
                else:
                    yield from glib.get_node_ids()
            except ScifError:
                pass

    c = vm.spawn_guest(client())
    m.run()
    assert c.triggered, "chaos client deadlocked"

    # whatever mix of retries, timeouts and aborts just happened: every
    # span closed, telescoped exactly, and the export stayed valid
    assert_span_contract(vm.tracer)
    assert validate_chrome_trace(vm.tracer.export_chrome_trace()) == []
    for span in vm.tracer.spans:
        assert span.status in ("ok", "error", "timeout", "stale")
