"""Errno conformance: every typed ScifError maps to the right errno.

Satellite of the session-recovery PR: the guest libscif error paths must
be indistinguishable from native ones — same typed exception class, same
C-API errno — in all three dispatch modes (native, blocking, pooled).
The table test pins the class -> errno mapping exhaustively (a new error
class without a declared expectation fails here), and the differential
scenarios drive real error paths end-to-end, including the two errnos
introduced by session recovery: ESHUTDOWN (backend restart) and
EStaleEpoch -> ESTALE (epoch fence), which exist only on the
virtualized paths.
"""

import numpy as np
import pytest

from repro import FaultKind, FaultPlan, FaultSpec, Machine
from repro.mem import PAGE_SIZE
from repro.scif import ScifError
from repro.scif import errors as errors_mod
from repro.scif.errors import EStaleEpoch
from repro.vphi import VPhiConfig

PORT = 9500
KB = 1 << 10
WIN = 64 * KB

#: the complete, intentional class -> errno table.  A new ScifError
#: subclass must be added here (the completeness test enforces it), so
#: an errno can never change or appear by accident.
EXPECTED_ERRNOS = {
    "ScifError": "EIO",
    "EINVAL": "EINVAL",
    "EADDRINUSE": "EADDRINUSE",
    "ECONNREFUSED": "ECONNREFUSED",
    "ECONNRESET": "ECONNRESET",
    "ENOTCONN": "ENOTCONN",
    "EISCONN": "EISCONN",
    "EAGAIN": "EAGAIN",
    "EBUSY": "EBUSY",  # QoS admission control's shed back-pressure
    "ENXIO": "ENXIO",
    "ENOMEM": "ENOMEM",
    "EACCES": "EACCES",
    "ETIMEDOUT": "ETIMEDOUT",
    "EBADF": "EBADF",
    "ESHUTDOWN": "ESHUTDOWN",
    "EStaleEpoch": "ESTALE",  # virtualization-layer only
    # repro.faults adds one more host-side class:
    "ENODEV": "ENODEV",
}


def all_error_classes():
    """Every ScifError class the codebase defines, discovered not listed."""
    from repro.faults import ENODEV

    out = {ScifError, ENODEV}
    out.update(
        obj for obj in vars(errors_mod).values()
        if isinstance(obj, type) and issubclass(obj, ScifError)
    )
    return sorted(out, key=lambda c: c.__name__)


@pytest.mark.parametrize("cls", all_error_classes(),
                         ids=lambda c: c.__name__)
def test_every_error_class_has_the_declared_errno(cls):
    assert cls.__name__ in EXPECTED_ERRNOS, (
        f"{cls.__name__} has no declared errno expectation; add it to "
        f"EXPECTED_ERRNOS with the intended C-API code"
    )
    assert cls.errno_name == EXPECTED_ERRNOS[cls.__name__]


def test_no_expectation_is_stale():
    names = {c.__name__ for c in all_error_classes()}
    assert set(EXPECTED_ERRNOS) == names


# ----------------------------------------------------------------------
# differential error paths: native vs blocking vs pooled
# ----------------------------------------------------------------------

MODES = {
    "native": None,
    "blocking": VPhiConfig(),
    "pooled": VPhiConfig(backend_workers=4),
}


def make_side(mode):
    """(machine, process, lib) for one fresh stack under test."""
    machine = Machine(cards=1).boot()
    config = MODES[mode]
    if config is None:
        proc = machine.host_process("errno-client")
        return machine, proc, machine.scif(proc), None
    vm = machine.create_vm("vm0", ram_bytes=2 << 30, vphi_config=config)
    proc = vm.guest_process("errno-client")
    return machine, proc, vm.vphi.libscif(proc), vm


def error_path_walk(machine, proc, lib):
    """Drive guest-visible error paths; observables are (class, errno)."""
    card = machine.card_node_id(0)
    obs = []

    def note(label, exc):
        obs.append((label, type(exc).__name__, exc.errno_name))

    # 1) connect with nobody listening -> ECONNREFUSED
    ep = yield from lib.open()
    try:
        yield from lib.connect(ep, (card, PORT + 9))
    except ScifError as e:
        note("refused", e)
    # 2) double-bind the same port -> EADDRINUSE
    a = yield from lib.open()
    b = yield from lib.open()
    yield from lib.bind(a, PORT)
    try:
        yield from lib.bind(b, PORT)
    except ScifError as e:
        note("in-use", e)
    # 3) misaligned registration -> EINVAL (guest-side check)
    vma = proc.address_space.mmap(WIN, populate=True)
    try:
        yield from lib.register(a, vma.start + 1, WIN)
    except ScifError as e:
        note("misaligned", e)
    # 4) RMA on an endpoint with no registered window -> EINVAL
    conn = yield from lib.open()
    srv = machine.scif(machine.card_process("srv-errno"))
    listening = machine.sim.event()

    def server():
        sep = yield from srv.open()
        yield from srv.bind(sep, PORT + 1)
        yield from srv.listen(sep)
        listening.succeed()
        yield from srv.accept(sep)

    machine.sim.spawn(server())
    yield listening
    yield from lib.connect(conn, (card, PORT + 1))
    try:
        yield from lib.readfrom(conn, 0, PAGE_SIZE, 0)
    except ScifError as e:
        note("no-window", e)
    # 5) zero-length virtual RMA -> EINVAL (shim-side check)
    try:
        yield from lib.vwriteto(conn, vma.start, 0, 0)
    except ScifError as e:
        note("zero-rma", e)
    return tuple(obs)


@pytest.mark.parametrize("mode", ["blocking", "pooled"])
def test_error_paths_match_native(mode):
    runs = {}
    for m in ("native", mode):
        machine, proc, lib, vm = make_side(m)
        if vm is None:
            driver = machine.sim.spawn(error_path_walk(machine, proc, lib))
        else:
            driver = vm.spawn_guest(error_path_walk(machine, proc, lib))
        machine.run()
        runs[m] = driver.value
    assert runs[mode] == runs["native"]
    assert len(runs["native"]) == 5  # every path actually raised


# ----------------------------------------------------------------------
# the recovery-introduced errnos (virtualized paths only)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["blocking", "pooled"])
def test_backend_restart_surfaces_eshutdown(mode):
    """With recovery off and no retries, an injected backend restart
    surfaces as a typed ESHUTDOWN, same class and errno in both modes."""
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.BACKEND_RESTART, op="send", vm="vm0", at=(0,),
    ))
    machine = Machine(cards=1, fault_plan=plan).boot()
    base = MODES[mode]
    vm = machine.create_vm(
        "vm0", ram_bytes=2 << 30,
        vphi_config=VPhiConfig(
            backend_workers=base.backend_workers, max_retries=0,
        ),
    )
    card = machine.card_node_id(0)
    srv = machine.scif(machine.card_process("srv"))

    def server():
        sep = yield from srv.open()
        yield from srv.bind(sep, PORT)
        yield from srv.listen(sep)
        conn, _ = yield from srv.accept(sep)
        try:
            yield from srv.recv(conn, 4)
        except ScifError:
            pass  # the restart severs the connection under the server

    machine.sim.spawn(server())
    lib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from lib.open()
        yield from lib.connect(ep, (card, PORT))
        try:
            yield from lib.send(ep, b"ping")
        except ScifError as e:
            return type(e).__name__, e.errno_name
        return None

    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == ("ESHUTDOWN", "ESHUTDOWN")


@pytest.mark.parametrize("mode", ["blocking", "pooled"])
def test_epoch_fence_surfaces_estale(mode):
    """Under the fail-fast policy a fenced in-flight op surfaces as
    EStaleEpoch with the ESTALE errno — the session-recovery errno the
    native API can never produce."""
    plan = FaultPlan.of(FaultSpec(
        kind=FaultKind.CARD_RESET, op="send", vm="vm0", at=(0,),
    ))
    machine = Machine(cards=1, fault_plan=plan).boot()
    base = MODES[mode]
    vm = machine.create_vm(
        "vm0", ram_bytes=2 << 30,
        vphi_config=VPhiConfig(
            backend_workers=base.backend_workers,
            recovery_policy="fail_fast",
        ),
    )
    card = machine.card_node_id(0)
    srv = machine.scif(machine.card_process("srv"))

    def server():
        sep = yield from srv.open()
        yield from srv.bind(sep, PORT)
        yield from srv.listen(sep)
        while True:
            conn, _ = yield from srv.accept(sep)

    machine.sim.spawn(server())
    lib = vm.vphi.libscif(vm.guest_process("app"))

    def client():
        ep = yield from lib.open()
        yield from lib.connect(ep, (card, PORT))
        try:
            yield from lib.send(ep, b"ping")
        except EStaleEpoch as e:
            return type(e).__name__, e.errno_name
        return None

    c = vm.spawn_guest(client())
    machine.run()
    assert c.value == ("EStaleEpoch", "ESTALE")
