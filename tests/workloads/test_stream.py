"""STREAM triad workload: bandwidth model + numerics + launch paths."""

import pytest

from repro import Machine
from repro.coi import start_coi_daemon
from repro.mpss import micnativeloadex
from repro.phi import sku
from repro.workloads import (
    ClientContext,
    STREAM_BINARY,
    STREAM_EFFICIENCY,
    stream_triad_time,
)


@pytest.fixture
def machine():
    m = Machine(cards=1).boot()
    start_coi_daemon(m, card=0)
    return m


def launch(machine, ctx, argv):
    p = ctx.spawn(micnativeloadex(machine, ctx, STREAM_BINARY, argv=argv))
    machine.run()
    return p.value


def test_triad_time_model():
    card = sku("3120P")
    t = stream_triad_time(10_000_000, 10, card)
    # 2.4 GB moved at 240 GB/s * 0.7 = 168 GB/s -> ~14.3 ms
    assert t == pytest.approx(2.4e9 / (240e9 * STREAM_EFFICIENCY), rel=1e-9)


def test_stream_runs_and_verifies(machine):
    ctx = ClientContext.native(machine)
    res = launch(machine, ctx, ["16384", "5", "112"])
    assert res.status == 0
    rec = res.exit_record
    assert rec["a_checksum"] == pytest.approx(rec["a_expected"])
    # sustained triad bandwidth near the model's 168 GB/s
    assert rec["triad_gbps"] == pytest.approx(240 * STREAM_EFFICIENCY, rel=0.01)


def test_stream_bandwidth_independent_of_threads(machine):
    """A bandwidth-bound kernel doesn't speed up with more threads (once
    enough are running to saturate GDDR) — unlike dgemm."""
    big = ["20000000", "10"]
    t = {}
    for threads in (56, 224):
        res = launch(machine, ClientContext.native(machine, f"s{threads}"),
                     big + [str(threads)])
        t[threads] = res.compute_time
    assert t[224] == pytest.approx(t[56], rel=0.01)


def test_stream_from_vm_amortization(machine):
    """The §IV-C amortization claim holds for bandwidth-bound kernels:
    stream's small binary (4.5 MB with deps) makes the fixed vPHI cost
    proportionally larger on short runs."""
    vm = machine.create_vm("vm0")
    short = ["1000000", "1", "112"]
    long = ["50000000", "40", "112"]
    rn_s = launch(machine, ClientContext.native(machine, "n1"), short)
    rg_s = launch(machine, ClientContext.guest(vm, "g1"), short)
    rn_l = launch(machine, ClientContext.native(machine, "n2"), long)
    rg_l = launch(machine, ClientContext.guest(vm, "g2"), long)
    ratio_short = rg_s.total_time / rn_s.total_time
    ratio_long = rg_l.total_time / rn_l.total_time
    assert ratio_short > ratio_long
    assert ratio_long < 1.02
