"""Workload models: dgemm math, microbench helpers, offload registry."""

import pytest
from hypothesis import given, strategies as st

from repro import Machine
from repro.sim import us
from repro.workloads import (
    ClientContext,
    MKL_EFFICIENCY,
    dgemm_flops,
    input_bytes,
    problem_size_for_input_bytes,
    rma_read_throughput,
    sendrecv_latency,
)

MB = 1 << 20


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


class TestDgemmMath:
    def test_flops(self):
        assert dgemm_flops(2, 3, 4) == 48.0
        assert dgemm_flops(1000, 1000, 1000) == 2e9

    def test_input_bytes(self):
        assert input_bytes(1000) == 16_000_000

    @given(st.integers(min_value=16, max_value=20000))
    def test_size_roundtrip(self, n):
        assert problem_size_for_input_bytes(input_bytes(n)) == n

    def test_mkl_efficiency_sane(self):
        assert 0.5 < MKL_EFFICIENCY <= 1.0


class TestMicrobenchHelpers:
    def test_sendrecv_latency_native_anchor(self, machine):
        ctx = ClientContext.native(machine)
        results = sendrecv_latency(machine, ctx, [1, 1024])
        sizes = [s for s, _ in results]
        lats = [l for _, l in results]
        assert sizes == [1, 1024]
        assert lats[0] == pytest.approx(us(7), rel=0.02)
        assert lats[1] > lats[0]

    def test_sendrecv_latency_guest(self, machine):
        vm = machine.create_vm("vm0")
        ctx = ClientContext.guest(vm)
        results = sendrecv_latency(machine, ctx, [1])
        assert results[0][1] == pytest.approx(us(382), rel=0.01)

    def test_rma_throughput_native_anchor(self, machine):
        ctx = ClientContext.native(machine)
        results = rma_read_throughput(machine, ctx, [256 * MB])
        assert results[0][1] == pytest.approx(6.4e9, rel=0.01)

    def test_rma_throughput_monotone_in_size(self, machine):
        """Fig 5 shape: throughput ramps with transfer size."""
        ctx = ClientContext.native(machine)
        results = rma_read_throughput(machine, ctx, [64 * 1024, MB, 16 * MB])
        bws = [bw for _, bw in results]
        assert bws[0] < bws[1] < bws[2]

    def test_contexts_have_labels(self, machine):
        vm = machine.create_vm("vm0")
        assert ClientContext.native(machine).label == "native"
        assert ClientContext.guest(vm).label == "vphi"
