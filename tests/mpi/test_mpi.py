"""Mini-MPI over SCIF: point-to-point, collectives, symmetric placement."""

import numpy as np
import pytest

from repro import Machine
from repro.mpi import MAX, MPIError, SUM, mpirun

MB = 1 << 20


@pytest.fixture
def machine():
    return Machine(cards=1).boot()


def placements_mixed(machine, vm):
    """The symmetric-mode showcase: host + card + card + VM."""
    return ["host", ("card", 0), ("card", 0), ("vm", vm)]


class TestPointToPoint:
    def test_ring_pass(self, machine):
        def main(rank, ctx):
            right = (rank.rank + 1) % rank.size
            left = (rank.rank - 1) % rank.size
            token = yield from rank.sendrecv(right, f"from-{rank.rank}", left)
            return token

        results = mpirun(machine, ["host", ("card", 0), "host"], main)
        assert results == ["from-2", "from-0", "from-1"]

    def test_tag_matching_out_of_order(self, machine):
        def main(rank, ctx):
            if rank.rank == 0:
                yield from rank.send(1, "second", tag=2)
                yield from rank.send(1, "first", tag=1)
                return None
            # receive in the opposite order of arrival
            a = yield from rank.recv(0, tag=1)
            b = yield from rank.recv(0, tag=2)
            return (a, b)

        results = mpirun(machine, ["host", ("card", 0)], main)
        assert results[1] == ("first", "second")

    def test_numpy_payloads_intact(self, machine):
        payload = np.random.default_rng(5).standard_normal(10_000)

        def main(rank, ctx):
            if rank.rank == 0:
                yield from rank.send(1, payload)
                return None
            got = yield from rank.recv(0)
            return got

        results = mpirun(machine, ["host", ("card", 0)], main)
        assert np.array_equal(results[1], payload)

    def test_self_send_rejected(self, machine):
        def main(rank, ctx):
            with pytest.raises(MPIError):
                yield from rank.send(rank.rank, "x")
            return True

        assert mpirun(machine, ["host", "host"], main) == [True, True]


class TestCollectives:
    def test_barrier_synchronizes(self, machine):
        times = {}

        def main(rank, ctx):
            # rank 0 dawdles before the barrier
            if rank.rank == 0:
                yield machine.sim.timeout(0.01)
            yield from rank.barrier()
            times[rank.rank] = machine.sim.now
            return None

        mpirun(machine, ["host", ("card", 0), "host", ("card", 0)], main)
        assert max(times.values()) - min(times.values()) < 0.001
        assert min(times.values()) >= 0.01

    def test_bcast_from_each_root(self, machine):
        def main(rank, ctx):
            out = []
            for root in range(rank.size):
                value = f"payload-{root}" if rank.rank == root else None
                got = yield from rank.bcast(value, root=root)
                out.append(got)
            return out

        results = mpirun(machine, ["host", ("card", 0), "host"], main)
        for per_rank in results:
            assert per_rank == ["payload-0", "payload-1", "payload-2"]

    def test_reduce_sum_scalar(self, machine):
        def main(rank, ctx):
            total = yield from rank.reduce(rank.rank + 1, SUM, root=0)
            return total

        results = mpirun(machine, ["host", ("card", 0), "host", ("card", 0)], main)
        assert results[0] == 10  # 1+2+3+4
        assert results[1:] == [None, None, None]

    def test_allreduce_array_max(self, machine):
        def main(rank, ctx):
            vec = np.arange(8) * (rank.rank + 1)
            got = yield from rank.allreduce(vec, MAX)
            return got

        results = mpirun(machine, ["host", ("card", 0), "host"], main)
        expect = np.arange(8) * 3
        for got in results:
            assert np.array_equal(got, expect)

    def test_gather_scatter(self, machine):
        def main(rank, ctx):
            gathered = yield from rank.gather(rank.rank * 10, root=1)
            seed = list(range(100, 100 + rank.size)) if rank.rank == 1 else None
            mine = yield from rank.scatter(seed, root=1)
            return gathered, mine

        results = mpirun(machine, ["host", ("card", 0), "host"], main)
        assert results[1][0] == [0, 10, 20]
        assert [r[1] for r in results] == [100, 101, 102]

    def test_allgather_ring(self, machine):
        def main(rank, ctx):
            out = yield from rank.allgather(chr(ord("a") + rank.rank))
            return out

        results = mpirun(machine, ["host", ("card", 0), "host", ("card", 0)], main)
        for got in results:
            assert got == ["a", "b", "c", "d"]


class TestSymmetricMode:
    def test_ranks_span_host_card_and_vm(self, machine):
        """Symmetric mode through vPHI: a rank inside a guest participates
        in the same communicator as host and card ranks."""
        vm = machine.create_vm("vm0")

        def main(rank, ctx):
            labels = yield from rank.allgather(ctx.label)
            total = yield from rank.allreduce(rank.rank, SUM)
            return labels, total

        results = mpirun(machine, placements_mixed(machine, vm), main)
        labels, total = results[0]
        assert labels == ["native", "card0", "card0", "vphi"]
        assert total == 6
        # the VM rank really used the ring
        assert vm.vphi.frontend.requests > 0

    def test_distributed_dot_product(self, machine):
        """A real symmetric workload: block-distributed dot product."""
        vm = machine.create_vm("vm0")
        n = 40_000
        rng = np.random.default_rng(11)
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)

        def main(rank, ctx):
            block = n // rank.size
            lo = rank.rank * block
            hi = n if rank.rank == rank.size - 1 else lo + block
            partial = float(x[lo:hi] @ y[lo:hi])
            total = yield from rank.allreduce(partial, SUM)
            return total

        results = mpirun(machine, placements_mixed(machine, vm), main)
        expect = float(x @ y)
        for got in results:
            assert got == pytest.approx(expect, rel=1e-12)

    def test_empty_placement_rejected(self, machine):
        with pytest.raises(MPIError):
            mpirun(machine, [], lambda rank, ctx: None)

    def test_single_rank_collectives_trivial(self, machine):
        def main(rank, ctx):
            yield from rank.barrier()
            v = yield from rank.bcast("solo", root=0)
            s = yield from rank.allreduce(7, SUM)
            g = yield from rank.allgather("only")
            return v, s, g

        results = mpirun(machine, ["host"], main)
        assert results == [("solo", 7, ["only"])]
