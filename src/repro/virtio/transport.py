"""Virtio transport: kicks (guest->host) and virtual interrupts (host->guest).

§II-C, Fig 2: the frontend posts buffers and *notifies* the backend (a
kick, costing a vmexit); the backend completes the request, posts the
response and notifies the guest *via a virtual interrupt*.  Interrupt
delivery respects the VM's execution domain: while QEMU handles a
blocking event the guest is frozen and the interrupt is deferred.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..sim import Domain, Simulator
from .ring import Vring

__all__ = ["VirtioDevice"]


class VirtioDevice:
    """One virtio device instance: a vring plus both notification paths."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "virtio-vphi",
        ring_size: int = 256,
        costs: VPhiCosts = VPHI_COSTS,
        guest_domain: Optional[Domain] = None,
        suppress_notifications: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.ring = Vring(ring_size)
        self.costs = costs
        self.guest_domain = guest_domain
        #: host-side handler invoked (as a new sim process) after each kick.
        self._backend_handler: Optional[Callable[[], Generator]] = None
        #: guest-side interrupt service routine (plain callable).
        self._guest_isr: Optional[Callable[[], None]] = None
        #: EVENT_IDX-style suppression: skip kicks while the device is
        #: already draining, coalesce interrupts until the driver reaps.
        self.suppress_notifications = suppress_notifications
        #: device-side "I am processing" flag (the driver reads it from
        #: the shared ring to decide whether a kick is needed).
        self.backend_busy = False
        self._irq_pending = False
        self.kicks = 0
        self.suppressed_kicks = 0
        self.interrupts = 0
        self.suppressed_irqs = 0

    # ------------------------------------------------------------------
    def bind_backend(self, handler: Callable[[], Generator]) -> None:
        """Register the QEMU backend's kick handler (a generator factory)."""
        self._backend_handler = handler

    def bind_guest_isr(self, isr: Callable[[], None]) -> None:
        """Register the frontend's interrupt service routine."""
        self._guest_isr = isr

    # ------------------------------------------------------------------
    def kick(self):
        """Process (guest side): notify the backend.

        Costs one vmexit; the backend handler is then spawned on the host
        side.  With notification suppression on, a kick while the device
        is already draining is skipped entirely — the driver reads the
        device's busy flag from the shared ring instead of trapping out.
        ``yield from dev.kick()``.
        """
        if self._backend_handler is None:
            raise RuntimeError(f"{self.name}: no backend bound")
        if self.suppress_notifications and self.backend_busy:
            self.suppressed_kicks += 1
            return  # flag check in shared memory: no vmexit
        self.kicks += 1
        self.backend_busy = True
        yield self.sim.timeout(self.costs.kick_vmexit)
        self.sim.spawn(self._backend_handler(), name=f"{self.name}-backend")

    def backend_idle(self) -> None:
        """Device side: declare the drain loop finished.

        The caller must re-check the avail ring *after* this (the classic
        virtio lost-wakeup dance): a driver that saw ``backend_busy`` and
        skipped its kick may have queued work in the gap.
        """
        self.backend_busy = False

    def inject_irq(self) -> None:
        """Host side: raise the virtual interrupt toward the guest.

        Delivery costs ``irq_inject``; if the guest domain is paused the
        ISR runs once it resumes (the domain defers the callback).  With
        suppression on, interrupts coalesce: while one is pending,
        further completions ride the same delivery.
        """
        if self._guest_isr is None:
            raise RuntimeError(f"{self.name}: no guest ISR bound")
        if self.suppress_notifications and self._irq_pending:
            self.suppressed_irqs += 1
            return
        self.interrupts += 1
        self._irq_pending = True

        def deliver() -> None:
            if self.guest_domain is not None and self.guest_domain.paused:
                self.guest_domain._defer(deliver)
                return
            self._irq_pending = False
            self._guest_isr()

        self.sim.call_at(self.sim.now + self.costs.irq_inject, deliver)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtioDevice {self.name} kicks={self.kicks} irqs={self.interrupts}>"
