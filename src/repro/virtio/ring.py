"""The virtio ring (vring): descriptor table + avail + used rings.

§II-C: "a shared ring structure is registered between the guest and the
host ... The frontend driver submits I/O requests by posting the
respective buffers in the shared ring and notifying the backend ...  no
copies are involved ... since a shared memory area (ring) is used and
also the host can access guest's physical address space".

Descriptors therefore carry **guest-physical addresses**; the backend
resolves them through the VM's memory slots
(:meth:`repro.kvm.vm.VirtualMachine.gpa_sg`), never by copying.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import SimError

__all__ = ["DescFlag", "Descriptor", "VirtqueueElement", "Vring"]


class DescFlag(enum.IntFlag):
    NONE = 0
    #: descriptor continues via ``next``.
    NEXT = 0x1
    #: buffer is device-writable (a response/in buffer).
    WRITE = 0x2


@dataclass
class Descriptor:
    """One vring descriptor: a guest-physical buffer reference."""

    addr: int  # guest physical address
    len: int
    flags: DescFlag = DescFlag.NONE
    next: int = -1


@dataclass
class VirtqueueElement:
    """A popped descriptor chain, split into out (driver->device) and in
    (device->driver) buffers, plus the driver's request header object."""

    head: int
    out: list[Descriptor] = field(default_factory=list)
    inb: list[Descriptor] = field(default_factory=list)
    #: the request header riding the chain (a Python object in this model;
    #: in hardware it would be serialized into the first out buffer).
    header: Any = None
    #: bytes the device wrote into the in buffers (reported via used ring).
    written: int = 0


class Vring:
    """The shared ring: fixed-size descriptor table + avail/used FIFOs."""

    def __init__(self, size: int = 256):
        if size <= 0 or size & (size - 1):
            raise SimError(f"vring size must be a power of two, got {size}")
        self.size = size
        self._table: list[Optional[Descriptor]] = [None] * size
        self._free: deque[int] = deque(range(size))
        self._headers: dict[int, Any] = {}
        self._avail: deque[int] = deque()
        self._used: deque[tuple[int, int]] = deque()
        #: statistics
        self.total_submissions = 0
        self.peak_in_flight = 0

    # ------------------------------------------------------------------
    # driver (guest) side
    # ------------------------------------------------------------------
    @property
    def num_free(self) -> int:
        return len(self._free)

    def add_chain(
        self,
        out: list[tuple[int, int]],
        inb: list[tuple[int, int]],
        header: Any = None,
    ) -> int:
        """Allocate descriptors for a request; returns the head index.

        ``out``/``inb`` are lists of ``(guest_physical_addr, len)``.
        """
        need = len(out) + len(inb)
        if need == 0:
            raise SimError("descriptor chain needs at least one buffer")
        if need > len(self._free):
            raise SimError(
                f"vring full: need {need} descriptors, {len(self._free)} free"
            )
        ids = [self._free.popleft() for _ in range(need)]
        chain = [(a, l, DescFlag.NONE) for a, l in out] + [
            (a, l, DescFlag.WRITE) for a, l in inb
        ]
        for i, (addr, length, flags) in enumerate(chain):
            nxt = ids[i + 1] if i + 1 < need else -1
            if nxt != -1:
                flags |= DescFlag.NEXT
            self._table[ids[i]] = Descriptor(addr, length, flags, nxt)
        head = ids[0]
        self._headers[head] = header
        self._avail.append(head)
        self.total_submissions += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        return head

    @property
    def in_flight(self) -> int:
        return self.size - len(self._free)

    def get_used(self) -> Optional[tuple[int, int, Any]]:
        """Driver: reap one completion -> (head, written, header) or None."""
        if not self._used:
            return None
        head, written = self._used.popleft()
        header = self._headers.pop(head, None)
        self._release_chain(head)
        return head, written, header

    def used_pending(self) -> int:
        return len(self._used)

    # ------------------------------------------------------------------
    # device (backend) side
    # ------------------------------------------------------------------
    def avail_pending(self) -> int:
        return len(self._avail)

    def pop_avail(self) -> Optional[VirtqueueElement]:
        """Device: take the next submitted chain, or None."""
        if not self._avail:
            return None
        head = self._avail.popleft()
        elem = VirtqueueElement(head=head, header=self._headers.get(head))
        idx = head
        while idx != -1:
            desc = self._table[idx]
            if desc is None:
                raise SimError(f"corrupt chain: descriptor {idx} is free")
            (elem.inb if desc.flags & DescFlag.WRITE else elem.out).append(desc)
            idx = desc.next if desc.flags & DescFlag.NEXT else -1
        return elem

    def push_used(self, elem: VirtqueueElement, written: int = 0,
                  header: Any = None) -> None:
        """Device: complete a chain (it becomes visible to get_used).

        ``header`` optionally replaces the chain's header object — the
        device writing its response record into the shared buffer.
        """
        elem.written = written
        if header is not None:
            elem.header = header
            self._headers[elem.head] = header
        self._used.append((elem.head, written))

    # ------------------------------------------------------------------
    def _release_chain(self, head: int) -> None:
        idx = head
        while idx != -1:
            desc = self._table[idx]
            if desc is None:
                raise SimError(f"double release of descriptor {idx}")
            self._table[idx] = None
            self._free.append(idx)
            idx = desc.next if desc.flags & DescFlag.NEXT else -1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Vring size={self.size} free={len(self._free)} "
            f"avail={len(self._avail)} used={len(self._used)}>"
        )
