"""Virtio: the split-driver paravirtual transport (rings, kicks, IRQs)."""

from .ring import DescFlag, Descriptor, VirtqueueElement, Vring
from .transport import VirtioDevice

__all__ = ["DescFlag", "Descriptor", "VirtioDevice", "VirtqueueElement", "Vring"]
