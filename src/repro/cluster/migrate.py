"""Journal-replay live migration: move a vPHI session between cards.

The insight carried over from PR 4: a vPHI session's card-side state is
fully described by its :class:`~repro.vphi.session.SessionJournal`, and
the card it talks to is named *only* by the ``(node, port)`` tuples in
its journaled connect records.  Migration is therefore a journal rewrite
plus the very replay machinery recovery already trusts:

1. **prepare** — guest RAM pre-copies over the inter-host fabric while
   the VM keeps running (cross-host moves only; zero downtime share).
2. **fence** — the session gate closes (new submits park exactly as
   they do during a reset rebuild), in-flight tags drain to their real
   completions, then the epoch bumps so any straggler completes stale.
   Draining first is what a *planned* move can afford that a reset
   cannot: no op submitted before the migration is ever aborted, so
   results are byte-identical to a never-migrated run for every
   idempotency class.
3. **transfer** — the journal ships to the destination host (or through
   host memory for an intra-host move), the journaled peer addresses
   are rewritten to the destination card's node id, and the backend is
   retargeted (arbiter re-registration always; a fresh backend +
   libscif context on the destination machine for cross-host moves).
4. **replay** — :meth:`SessionManager.replay_journal` rebuilds every
   endpoint/window/mmap against the destination card through the normal
   submit path (handle translation updates as it goes).
5. **remap** — the EPT work: replay swapped fresh PFN info into each
   mmap'd VMA and zapped it via :meth:`~repro.kvm.fault.KvmMmu.zap_vma`;
   this phase charges the invalidation cost per zapped page (the next
   guest touch refaults into the new frames).
6. **activate** — scheduler/placement bookkeeping flips, the session
   resumes, parked submitters wake into the new epoch.

Downtime = fence→activate (everything but the pre-copy).  Each phase is
stamped on a PR 5 span and totalled in the returned
:class:`MigrationReport`.

Modeling note: guest RAM physically stays in the source host's carve —
the simulator's memory objects are addresses, not locality — so the
pre-copy charges the fabric time a real move would but no pages change
owner.  What *does* move is everything the paper's split driver cares
about: the SCIF endpoints, windows, and mmap frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scif import NativeScif
from ..sim import SimError
from ..vphi.backend import VPhiBackend
from .topology import CardRef

__all__ = [
    "JOURNAL_RECORD_BYTES",
    "MIGRATION_PHASES",
    "MigrationReport",
    "live_migrate",
]

#: wire size of one journaled fact (header + SG descriptor + coords).
JOURNAL_RECORD_BYTES = 64

#: EPT invalidation cost per zapped guest page (IPI + TLB shootdown).
ZAP_COST_PER_PAGE = 0.2e-6

#: the migration state machine, in order.
MIGRATION_PHASES = ("prepare", "fence", "transfer", "replay", "remap",
                    "activate")


@dataclass
class MigrationReport:
    """One live migration's per-phase accounting."""

    vm: str
    source: CardRef
    dest: CardRef
    started: float
    journal_size: int
    phases: dict = field(default_factory=dict)
    replayed_ops: int = 0
    pages_zapped: int = 0
    #: the session broke (circuit/churn) before activation completed.
    broken: bool = False

    @property
    def downtime(self) -> float:
        """Guest-visible stall: every phase except the live pre-copy."""
        return sum(t for p, t in self.phases.items() if p != "prepare")

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    @property
    def cross_host(self) -> bool:
        return self.source.host != self.dest.host

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MigrationReport {self.vm} {self.source}->{self.dest} "
            f"ops={self.replayed_ops} downtime={self.downtime:.6f}s>"
        )


def live_migrate(cluster, vm, dest: CardRef, precopy: bool = True):
    """Process: migrate ``vm``'s vPHI session to ``dest``, live.

    Returns the :class:`MigrationReport`.  Raises
    :class:`~repro.scif.errors.EStaleEpoch` if the session is BROKEN
    before the move starts, and :class:`~repro.sim.SimError` for
    topology mistakes (no such card, migrating onto the same card).
    Requires session recovery armed (``recovery_policy != "none"``) —
    without a journal there is nothing to move.
    """
    sim = cluster.sim
    name = vm.name
    src = cluster.placement_of(name)
    if dest == src:
        raise SimError(f"{name}: migration source and destination are both {dest}")
    if dest not in cluster.scheduler.loads:
        raise SimError(f"no such card {dest} in this cluster")
    if dest in cluster.scheduler.offline or dest.host in cluster.failed_hosts:
        raise SimError(f"cannot migrate {name!r} onto offline card {dest}")
    inst = vm.vphi
    ses = inst.frontend.session
    tracer = cluster.tracer
    span = vm.tracer.new_span("vphi.migrate", vm=name)
    report = MigrationReport(
        vm=name, source=src, dest=dest, started=sim.now,
        journal_size=ses.journal.size,
    )

    # an in-progress reset rebuild finishes first (raises if BROKEN)
    yield from ses.await_active()

    # 1. prepare: RAM pre-copy rides the fabric while the VM runs
    t = sim.now
    if report.cross_host and precopy:
        yield from cluster.fabric.transfer(src.host, dest.host, vm.ram.size)
    report.phases["prepare"] = sim.now - t
    vm.tracer.mark(span, "prepare")

    # 2. fence: close the gate, drain in-flight work, bump the epoch
    t = sim.now
    ses.begin_migration(str(dest))
    yield from ses.quiesce()
    ses.fence_migration(str(dest))
    report.phases["fence"] = sim.now - t
    vm.tracer.mark(span, "fence")

    # 3. transfer: ship the journal, rewrite peers, retarget the backend
    t = sim.now
    nbytes = ses.journal.size * JOURNAL_RECORD_BYTES
    if report.cross_host:
        yield from cluster.fabric.transfer(src.host, dest.host, nbytes)
    elif nbytes:
        host = cluster.machines[src.host]
        yield sim.timeout(nbytes / host.host_params.memcpy_bandwidth)
    ses.rewrite_peers({cluster.node_of(src): cluster.node_of(dest)})
    _retarget_backend(cluster, vm, src, dest)
    report.phases["transfer"] = sim.now - t
    vm.tracer.mark(span, "transfer")

    # 4. replay: rebuild the session against the destination card
    t = sim.now
    ops0, zap0 = ses.replayed_ops, ses.zapped_pages
    yield from ses.replay_journal()
    report.replayed_ops = ses.replayed_ops - ops0
    report.phases["replay"] = sim.now - t
    vm.tracer.mark(span, "replay")

    # 5. remap: charge the EPT invalidation for the re-established mmaps
    t = sim.now
    report.pages_zapped = ses.zapped_pages - zap0
    if report.pages_zapped:
        yield sim.timeout(report.pages_zapped * ZAP_COST_PER_PAGE)
    report.phases["remap"] = sim.now - t
    vm.tracer.mark(span, "remap")

    # 6. activate: flip the bookkeeping, reopen the gate
    t = sim.now
    inst.card = dest.card
    cluster.scheduler.move(name, dest)
    cluster.placements[name] = dest
    ses.resume()
    report.phases["activate"] = sim.now - t
    report.broken = ses.state != "active"
    vm.tracer.mark(span, "activate")
    vm.tracer.end_span(span, "error" if report.broken else "ok")

    cluster.migrations.append(report)
    tracer.count("cluster.migrations")
    tracer.observe("cluster.migration.downtime", report.downtime)
    tracer.emit("cluster.churn", "vm migrated",
                vm=name, source=str(src), dest=str(dest),
                downtime=report.downtime, ops=report.replayed_ops)
    return report


def _retarget_backend(cluster, vm, src: CardRef, dest: CardRef) -> None:
    """Point the VM's backend machinery at the destination card.

    Intra-host: the backend and its libscif context stay (the SCIF
    fabric reaches every card on the host) — only the dispatch credits
    move: the VM deregisters from the source card's arbiter (dropping
    its wfq virtual-clock state — a migrated VM must not carry stale
    start tags) and joins the destination card's as a fresh tenant.

    Cross-host: the old QEMU backend cannot reach the destination
    fabric, so a fresh backend + :class:`~repro.scif.NativeScif` context
    is built on the destination machine and bound to the same virtio
    device (rebinding swaps the kick handler atomically); the old
    backend's endpoints are severed, its pool drained shut, and it is
    detached from the source injector's broadcast list.
    """
    inst = vm.vphi
    cfg = inst.config
    src_m = cluster.machines[src.host]
    dest_m = cluster.machines[dest.host]

    if src.host == dest.host:
        # power-aware cost scaling must follow the VM to the new card
        dev = dest_m.devices[dest.card]
        inst.backend.device = dev
        inst.backend._power = getattr(dev, "power", None)
        if inst.backend.pool is not None:
            old_arb = src_m.arbiter_for(src.card)
            new_arb = dest_m.arbiter_for(dest.card)
            if old_arb is not new_arb:
                old_arb.deregister(vm.name)
                new_arb.configure(vm.name, weight=cfg.qos_share,
                                  priority=cfg.qos_priority)
                inst.backend.pool.arbiter = new_arb
        return

    old = inst.backend
    for ep in list(old.endpoints.values()):
        old._sever_endpoint(ep)
    old.endpoints.clear()
    if old.pool is not None:
        old.pool.shutdown()
        src_m.arbiter_for(src.card).deregister(vm.name)
    src_m.faults.detach_backend(old)
    old.session_listener = None

    lib = NativeScif(
        dest_m.fabric, dest_m.kernel.scif_node, vm.qemu_process,
        host_params=dest_m.host_params,
    )
    arbiter = dest_m.arbiter_for(dest.card) if cfg.pooled else None
    if arbiter is not None:
        arbiter.configure(vm.name, weight=cfg.qos_share,
                          priority=cfg.qos_priority)
    backend = VPhiBackend(
        vm, inst.virtio, lib, dest_m.kernel, config=cfg, tracer=vm.tracer,
        faults=dest_m.faults, arbiter=arbiter,
        device=dest_m.devices[dest.card],
    )
    # Continue the old backend's handle sequence: guest-visible handle
    # numbers from before the move must never be re-issued, or a fresh
    # open could collide with a stale session-translation entry and
    # alias a replayed endpoint.  (A card reset keeps the backend object
    # — and this counter — alive, so only the rebuild path needs it.)
    backend._handles = old._handles
    dest_m.faults.attach_backend(backend)
    backend.session_listener = inst.frontend.session.on_backend_invalidated
    inst.backend = backend
    # the guest's mic sysfs now mirrors the destination host's tree
    for path, _ in dest_m.kernel.sysfs.walk():
        vm.guest_kernel.sysfs.publish(
            path, (lambda p=path, m=dest_m: m.kernel.sysfs.read(p))
        )
