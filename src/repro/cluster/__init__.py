"""Cluster scale-out: N hosts × M cards, placement, live migration.

The paper virtualizes one Phi card behind one host.  This package
generalizes the machine model to a *cluster*:

* :class:`~repro.cluster.topology.Cluster` — N :class:`~repro.system.Machine`\\ s
  sharing one deterministic simulator, stitched together by an
  :class:`~repro.cluster.topology.InterHostFabric` whose per-hop
  latency/bandwidth rides the same cost machinery as the PCIe links.
* :class:`~repro.cluster.place.PlacementScheduler` — bin-packing of VMs
  onto cards by ``qos_share`` under ``spread``/``pack`` policies, with
  skew-driven rebalancing.
* :func:`~repro.cluster.migrate.live_migrate` — journal-replay live
  migration: fence the source epoch, ship the
  :class:`~repro.vphi.session.SessionJournal`, replay it against the
  destination card through the normal submit path, re-mmap via
  :meth:`~repro.kvm.fault.KvmMmu.zap_vma`, reopen the gate — downtime
  measured per phase.
* Churn — card hot-plug/hot-unplug and host failure — as first-class
  events audited through each machine's
  :class:`~repro.faults.FaultInjector`.
"""

from .migrate import (
    JOURNAL_RECORD_BYTES,
    MIGRATION_PHASES,
    MigrationReport,
    live_migrate,
)
from .place import PlacementScheduler
from .topology import CardRef, Cluster, InterHostFabric

__all__ = [
    "CardRef",
    "Cluster",
    "InterHostFabric",
    "JOURNAL_RECORD_BYTES",
    "MIGRATION_PHASES",
    "MigrationReport",
    "PlacementScheduler",
    "live_migrate",
]
