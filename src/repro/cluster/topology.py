"""Cluster topology: hosts, cards, the inter-host fabric, and churn.

One :class:`Cluster` owns N :class:`~repro.system.Machine`\\ s driven by
a single :class:`~repro.sim.Simulator` — every machine's PCIe links,
SCIF fabrics and fault injectors advance on one deterministic clock, so
cluster runs replay bit-for-bit like single-machine runs do.  Cards are
addressed by :class:`CardRef` (host index, card index); the
:class:`~repro.cluster.place.PlacementScheduler` maps VMs onto them and
:func:`~repro.cluster.migrate.live_migrate` moves them.

Churn is first-class and *audited*: hot-unplug and host failure fire a
:class:`~repro.faults.Injection` through the owning machine's injector
(push API), so a chaos run's post-mortem reads one interleaved fault
history across datapath faults and topology events.

Churn semantics, deliberately asymmetric:

* **hot-unplug** is a *planned* detach (the SVFF model): the scheduler
  marks the card offline, every VM placed on it is live-migrated to the
  remaining capacity, and only then does the card leave the pool.  With
  no spare capacity the stragglers are evicted with typed errors.
* **host failure** is *abrupt*: no migration is possible (the journal
  lives with the frontend, but the QEMU backends just died), so every
  VM on the host is evicted — sessions go BROKEN, in-flight work aborts
  typed, and the host's cards leave the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.calibration import HOST, HostParams
from ..faults import FaultKind, FaultPlan
from ..pcie import LinkConfig
from ..scif.errors import ENXIO, EStaleEpoch
from ..sim import Mutex, SimError, Simulator, Tracer
from ..system import Machine
from ..vphi import VPhiConfig
from .place import PlacementScheduler

__all__ = ["CardRef", "Cluster", "InterHostFabric"]


@dataclass(frozen=True, order=True)
class CardRef:
    """One card's cluster-wide address: (host index, card index)."""

    host: int
    card: int

    def __str__(self) -> str:
        return f"h{self.host}c{self.card}"


class InterHostFabric:
    """The network between hosts: per-hop latency + shared bandwidth.

    Modeled with the same idiom as :class:`~repro.pcie.PCIeLink`: each
    unordered host pair is one serialized pipe (a FIFO mutex — two
    concurrent bulk transfers between the same hosts queue, they don't
    magically share), a transfer costs ``hops * hop_latency`` of wire
    latency plus cut-through serialization at ``hop_bandwidth``.  The
    default bandwidth is an 8-lane gen-3 pipe from the PCIe cost tables
    (a 100GbE-class spine expressed in the calibrated machinery) — the
    point is not the absolute number but that migration cost scales with
    bytes shipped on the same axis everything else does.

    ``topology`` picks the hop count: ``"flat"`` (default) is one
    leaf-spine hop between any two hosts; ``"ring"`` walks the shorter
    arc of a ring, so distance matters.
    """

    TOPOLOGIES = ("flat", "ring")

    def __init__(
        self,
        sim: Simulator,
        hosts: int,
        hop_latency: Optional[float] = None,
        hop_bandwidth: Optional[float] = None,
        topology: str = "flat",
        tracer: Optional[Tracer] = None,
    ):
        if hosts < 1:
            raise ValueError("fabric needs at least one host")
        if topology not in self.TOPOLOGIES:
            raise ValueError(
                f"unknown fabric topology {topology!r} "
                f"(choose from {self.TOPOLOGIES})"
            )
        self.sim = sim
        self.hosts = hosts
        self.topology = topology
        self.tracer = tracer
        link = LinkConfig(generation=3, lanes=8)
        self.hop_latency = (hop_latency if hop_latency is not None
                            else 5.0 * link.msg_latency)
        self.hop_bandwidth = (hop_bandwidth if hop_bandwidth is not None
                              else link.effective_bandwidth)
        self._locks: dict[tuple[int, int], Mutex] = {}
        #: metrics
        self.bytes_moved = 0
        self.transfers = 0
        self.busy_time = 0.0

    def hops(self, a: int, b: int) -> int:
        """Wire hops between two hosts (0 = same host, nothing moves)."""
        if a == b:
            return 0
        if self.topology == "ring":
            d = abs(a - b)
            return min(d, self.hosts - d)
        return 1

    def transfer_time(self, a: int, b: int, nbytes: int) -> float:
        """Uncontended cost of moving ``nbytes`` from host a to host b."""
        h = self.hops(a, b)
        if h == 0:
            return 0.0
        return h * self.hop_latency + nbytes / self.hop_bandwidth

    def _lock(self, a: int, b: int) -> Mutex:
        key = (min(a, b), max(a, b))
        lock = self._locks.get(key)
        if lock is None:
            lock = Mutex(self.sim, name=f"ihf-{key[0]}-{key[1]}")
            self._locks[key] = lock
        return lock

    def transfer(self, a: int, b: int, nbytes: int):
        """Process: move ``nbytes`` between hosts, holding their pipe."""
        if a == b:
            return 0.0
        lock = self._lock(a, b)
        yield lock.acquire()
        try:
            t = self.transfer_time(a, b, nbytes)
            yield self.sim.timeout(t)
            self.bytes_moved += nbytes
            self.transfers += 1
            self.busy_time += t
            if self.tracer is not None:
                self.tracer.count("cluster.fabric.transfers")
                self.tracer.accumulate("cluster.fabric.bytes", nbytes)
            return t
        finally:
            lock.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InterHostFabric {self.topology} hosts={self.hosts} "
            f"{self.hop_bandwidth / 1e9:.2f} GB/s/hop>"
        )


class Cluster:
    """N hosts × M cards on one deterministic clock."""

    def __init__(
        self,
        hosts: int = 2,
        cards_per_host: int = 1,
        card_model: str = "3120P",
        host_params: HostParams = HOST,
        fault_plan: Optional[FaultPlan] = None,
        placement: str = "spread",
        hop_latency: Optional[float] = None,
        hop_bandwidth: Optional[float] = None,
        fabric_topology: str = "flat",
        tracer: Optional[Tracer] = None,
        sim: Optional[Simulator] = None,
        power_model: str = "none",
        power_config=None,
        host_power_budget: Optional[float] = None,
    ):
        if hosts < 1:
            raise ValueError("cluster needs at least one host")
        if cards_per_host < 1:
            raise ValueError("cluster hosts need at least one card")
        self.sim = sim or Simulator()
        self.tracer = tracer or Tracer()
        self.tracer.bind_clock(lambda: self.sim.now)
        self.machines = [
            Machine(cards=cards_per_host, card_model=card_model,
                    host_params=host_params, sim=self.sim,
                    tracer=self.tracer, fault_plan=fault_plan,
                    power_model=power_model, power_config=power_config)
            for _ in range(hosts)
        ]
        self.fabric = InterHostFabric(
            self.sim, hosts, hop_latency=hop_latency,
            hop_bandwidth=hop_bandwidth, topology=fabric_topology,
            tracer=self.tracer,
        )
        self.scheduler = PlacementScheduler(
            self, policy=placement, host_power_budget=host_power_budget)
        #: VM name -> current CardRef (evicted VMs drop out).
        self.placements: dict[str, CardRef] = {}
        #: VM name -> VirtualMachine, for every VM ever created.
        self.vms: dict[str, object] = {}
        #: completed MigrationReports, in completion order.
        self.migrations: list = []
        #: VM names evicted by churn (host failure / capacity exhaustion).
        self.evicted: list[str] = []
        self.failed_hosts: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def hosts(self) -> int:
        return len(self.machines)

    @property
    def cards_per_host(self) -> int:
        return len(self.machines[0].devices)

    @property
    def cards(self) -> list[CardRef]:
        """Every card in the cluster, in (host, card) order."""
        return [
            CardRef(h, c)
            for h, m in enumerate(self.machines)
            for c in range(len(m.devices))
        ]

    def boot(self) -> "Cluster":
        """Boot every machine (sequentially, on the shared clock)."""
        for m in self.machines:
            m.boot()
        return self

    def machine(self, ref) -> Machine:
        """The machine owning one CardRef (or a bare host index)."""
        host = ref.host if isinstance(ref, CardRef) else ref
        return self.machines[host]

    def node_of(self, ref: CardRef) -> int:
        """One card's SCIF node id on its own host's fabric."""
        return self.machines[ref.host].card_node_id(ref.card)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def pepc(self):
        """The pepc-style power control plane over every card, with VM
        scope resolved through the cluster's placements."""
        from ..phi.pepc import PowerControl

        return PowerControl(self.machines, vms=self.vms)

    # ------------------------------------------------------------------
    def create_vm(
        self,
        name: str,
        ram_bytes: int = 2 << 30,
        vcpus: int = 1,
        vphi_config: Optional[VPhiConfig] = None,
        placement: Optional[CardRef] = None,
        arbiter_policy: Optional[str] = None,
    ):
        """Create a VM on the scheduler's (or an explicit) card.

        The VM's ``qos_share`` is what the bin-packing weighs — a
        2.0-share tenant occupies twice the card capacity of a 1.0.
        """
        if name in self.vms:
            raise SimError(f"cluster already has a VM named {name!r}")
        config = vphi_config or VPhiConfig()
        if placement is None:
            ref = self.scheduler.place(name, share=config.qos_share)
        else:
            ref = placement
            if ref not in self.scheduler.loads:
                raise SimError(f"no such card {ref} in this cluster")
            self.scheduler.assign(name, ref, share=config.qos_share)
        vm = self.machines[ref.host].create_vm(
            name=name, ram_bytes=ram_bytes, vcpus=vcpus,
            vphi_config=config, card=ref.card,
            arbiter_policy=arbiter_policy,
        )
        self.placements[name] = ref
        self.vms[name] = vm
        return vm

    def placement_of(self, vm) -> CardRef:
        name = vm if isinstance(vm, str) else vm.name
        try:
            return self.placements[name]
        except KeyError:
            raise SimError(f"VM {name!r} has no placement (evicted?)") from None

    def migrate(self, vm, dest: Optional[CardRef] = None):
        """Process: live-migrate one VM (scheduler picks ``dest=None``)."""
        from .migrate import live_migrate

        name = vm if isinstance(vm, str) else vm.name
        machine_vm = self.vms[name]
        if dest is None:
            src = self.placement_of(name)
            dest = self.scheduler.pick_dest(
                name, exclude={src},
                share=machine_vm.vphi.config.qos_share,
            )
            if dest is None:
                raise SimError(
                    f"no destination card for {name!r} (all offline?)"
                )
        report = yield from live_migrate(self, machine_vm, dest)
        return report

    def rebalance(self):
        """Process: migrate VMs until card load skew is policy-clean.

        Executes the scheduler's :meth:`~PlacementScheduler.rebalance_plan`
        move by move (re-planning after each — a migration changes the
        loads it was planned against).
        """
        moved = []
        while True:
            plan = self.scheduler.rebalance_plan()
            if not plan:
                return moved
            name, _src, dest = plan[0]
            yield from self.migrate(name, dest)
            moved.append(plan[0])

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def hot_unplug(self, host: int, card: int):
        """Process: planned card removal — drain by migration, detach.

        VMs placed on the card are live-migrated to the remaining online
        capacity; with none left (or a session too broken to move) they
        are evicted with typed errors.  Returns the displaced VM names.
        """
        ref = CardRef(host, card)
        if ref not in self.scheduler.loads:
            raise SimError(f"no such card {ref}")
        m = self.machines[host]
        m.faults.fire(FaultKind.CARD_UNPLUG)
        self.scheduler.set_offline(ref, True)
        victims = [n for n, r in self.placements.items() if r == ref]
        for name in victims:
            vm = self.vms[name]
            dest = self.scheduler.pick_dest(
                name, exclude={ref}, share=vm.vphi.config.qos_share,
            )
            if dest is None:
                self._evict(vm, f"card {ref} unplugged, no spare capacity")
                continue
            try:
                yield from self.migrate(name, dest)
            except EStaleEpoch:
                # the session broke underneath the migration (concurrent
                # churn); it cannot follow its card — evict it typed.
                self._evict(vm, f"card {ref} unplugged mid-recovery")
        return victims

    def hot_plug(self, host: int, card: int) -> CardRef:
        """Re-attach a previously unplugged card to the placement pool."""
        ref = CardRef(host, card)
        if ref not in self.scheduler.loads:
            raise SimError(f"no such card {ref}")
        if host in self.failed_hosts:
            raise SimError(f"host {host} is failed; cannot re-plug {ref}")
        self.scheduler.set_offline(ref, False)
        return ref

    def fail_host(self, host: int) -> list[str]:
        """Abrupt host death: evict its VMs, retire its cards.

        Synchronous — there is nothing to wait for; the failure *is*
        the event.  Returns the evicted VM names.
        """
        m = self.machines[host]
        m.faults.fire(FaultKind.HOST_FAIL)
        self.failed_hosts.add(host)
        for card in range(len(m.devices)):
            self.scheduler.set_offline(CardRef(host, card), True)
        victims = [n for n, r in self.placements.items() if r.host == host]
        for name in victims:
            self._evict(self.vms[name], f"host {host} failed")
        return victims

    def _evict(self, vm, cause: str) -> None:
        """Terminal removal: break the session, abort, release capacity."""
        inst = vm.vphi
        inst.frontend.session.force_broken(cause)
        be = inst.backend
        if be.pool is not None:
            be.pool.abort_inflight(lambda: ENXIO(cause))
        for ep in list(be.endpoints.values()):
            be._sever_endpoint(ep)
        be.endpoints.clear()
        self.scheduler.release(vm.name)
        self.placements.pop(vm.name, None)
        self.evicted.append(vm.name)
        self.tracer.count("cluster.evictions")
        self.tracer.emit("cluster.churn", "vm evicted",
                         vm=vm.name, cause=cause)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Cluster hosts={self.hosts} cards={len(self.cards)} "
            f"vms={len(self.placements)} migrations={len(self.migrations)}>"
        )
