"""Placement: bin-packing VMs onto cards by ``qos_share``.

The unit of capacity is the *share*: a VM's ``qos_share`` (the same
number its card arbiter weighs wfq grants by) is how much of a card it
occupies, so placement and runtime QoS argue about the same currency.
Two policies:

* ``"spread"`` — least-loaded card wins (ties break toward the lowest
  ``(host, card)``), minimizing per-card contention.
* ``"pack"`` — first card with headroom under ``capacity`` wins
  (first-fit in card order), minimizing the number of cards in use —
  the consolidation policy a power- or maintenance-driven operator
  wants.  A VM that fits nowhere falls back to least-loaded (the pool
  oversubscribes rather than refuses).

Rebalancing is skew-driven: while the hottest card exceeds the coldest
by more than the largest single share it carries (i.e. while one move
could actually help), propose moving the smallest share off the hottest
card onto the coldest.  The plan is advisory — the cluster executes it
with live migrations, re-planning after each move.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim import SimError

if TYPE_CHECKING:  # pragma: no cover
    from .topology import CardRef, Cluster

__all__ = ["PlacementScheduler"]


class PlacementScheduler:
    """Assigns VMs to cards and proposes skew-correcting moves."""

    POLICIES = ("spread", "pack")

    def __init__(self, cluster: "Cluster", policy: str = "spread",
                 capacity: Optional[float] = None,
                 host_power_budget: Optional[float] = None):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r} "
                f"(choose from {self.POLICIES})"
            )
        self.cluster = cluster
        self.policy = policy
        #: pack-policy headroom per card, in shares.  Defaults to the
        #: host's core count — one share per dispatch slot is the point
        #: where the arbiter starts queueing.
        self.capacity = (capacity if capacity is not None
                         else float(cluster.machines[0].host_params.cores))
        #: per-host power envelope in watts (None = unconstrained).  A
        #: candidate card is power-feasible when the TDP caps of the
        #: host's already-populated cards plus its own fit the budget —
        #: placement and the runtime throttle loop argue about the same
        #: watts, so capping a card (pepc) frees placement headroom.
        self.host_power_budget = host_power_budget
        #: summed shares per card (every card, online or not).
        self.loads: dict["CardRef", float] = {
            ref: 0.0 for ref in cluster.cards
        }
        #: VM name -> (card, share).
        self.assignments: dict[str, tuple] = {}
        self.offline: set = set()
        #: metrics
        self.placed = 0
        self.moves = 0

    # ------------------------------------------------------------------
    def online_cards(self, exclude=()) -> list:
        return [ref for ref in self.loads
                if ref not in self.offline and ref not in exclude]

    def load_of(self, ref) -> float:
        return self.loads[ref]

    def share_of(self, name: str) -> float:
        return self.assignments[name][1]

    def vms_on(self, ref) -> list[str]:
        return [n for n, (r, _) in self.assignments.items() if r == ref]

    # ------------------------------------------------------------------
    def card_watts(self, ref) -> float:
        """One card's power claim: its TDP cap (live, pepc-settable)
        with the power model on, its SKU TDP otherwise."""
        device = self.cluster.machine(ref).devices[ref.card]
        if device.power is not None:
            return float(device.power.tdp_cap)
        return float(device.sku.tdp_watts)

    def _power_feasible(self, candidates: list) -> list:
        """Filter candidates to cards whose host power budget has room.

        A host's claim is the summed watts of its cards that already
        carry VMs; a candidate is feasible when adding its own claim
        (if not already populated) stays within the budget.
        """
        budget = self.host_power_budget
        if budget is None:
            return candidates
        populated = {ref for ref, load in self.loads.items() if load > 0}
        claimed: dict[int, float] = {}
        for ref in populated:
            claimed[ref.host] = claimed.get(ref.host, 0.0) + self.card_watts(ref)
        feasible = []
        for ref in candidates:
            extra = 0.0 if ref in populated else self.card_watts(ref)
            if claimed.get(ref.host, 0.0) + extra <= budget + 1e-9:
                feasible.append(ref)
        return feasible

    def _choose(self, share: float, candidates: list) -> Optional["CardRef"]:
        if not candidates:
            return None
        powered = self._power_feasible(candidates)
        if powered:
            candidates = powered
        # (an infeasible-everywhere request oversubscribes the budget
        # rather than refusing, mirroring the pack-capacity fallback)
        if self.policy == "pack":
            for ref in sorted(candidates):
                if self.loads[ref] + share <= self.capacity:
                    return ref
            # nothing has headroom: oversubscribe the least-loaded card
        return min(candidates, key=lambda r: (self.loads[r], r))

    def place(self, name: str, share: float = 1.0) -> "CardRef":
        """Pick a card for a new VM and record the assignment."""
        if name in self.assignments:
            raise SimError(f"VM {name!r} is already placed")
        ref = self._choose(share, self.online_cards())
        if ref is None:
            raise SimError("no online cards to place on")
        self.assign(name, ref, share)
        return ref

    def pick_dest(self, name: str, exclude=(),
                  share: Optional[float] = None) -> Optional["CardRef"]:
        """A migration destination for an existing VM (None = nowhere).

        Unlike :meth:`place` this does *not* record anything — the move
        is only real once the live migration lands (``move`` then).
        """
        if share is None:
            share = self.assignments[name][1]
        return self._choose(share, self.online_cards(exclude=exclude))

    def assign(self, name: str, ref, share: float) -> None:
        """Record an assignment made for us (explicit placement)."""
        old = self.assignments.get(name)
        if old is not None:
            self.loads[old[0]] -= old[1]
        self.assignments[name] = (ref, share)
        self.loads[ref] += share
        self.placed += 1

    def move(self, name: str, dest) -> None:
        """Re-home one VM's share (called when its migration lands)."""
        ref, share = self.assignments[name]
        if ref == dest:
            return
        self.loads[ref] -= share
        self.loads[dest] += share
        self.assignments[name] = (dest, share)
        self.moves += 1

    def release(self, name: str) -> None:
        """Forget a VM (evicted or destroyed)."""
        entry = self.assignments.pop(name, None)
        if entry is not None:
            self.loads[entry[0]] -= entry[1]

    def set_offline(self, ref, offline: bool = True) -> None:
        if offline:
            self.offline.add(ref)
        else:
            self.offline.discard(ref)

    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """Hottest-minus-coldest load over the online cards."""
        online = self.online_cards()
        if len(online) < 2:
            return 0.0
        loads = [self.loads[r] for r in online]
        return max(loads) - min(loads)

    def rebalance_plan(self) -> list[tuple]:
        """Skew-correcting moves: ``[(vm, src, dest), ...]`` (greedy).

        Simulated against a copy of the loads; a move is proposed only
        while it strictly reduces the hot-cold gap, so the plan always
        terminates and never ping-pongs a VM.
        """
        online = self.online_cards()
        if len(online) < 2:
            return []
        loads = {r: self.loads[r] for r in online}
        homes = {n: (r, s) for n, (r, s) in self.assignments.items()
                 if r in loads}
        plan: list[tuple] = []
        while True:
            hot = max(online, key=lambda r: (loads[r], r))
            cold = min(online, key=lambda r: (loads[r], r))
            gap = loads[hot] - loads[cold]
            movable = sorted(
                ((s, n) for n, (r, s) in homes.items() if r == hot and s > 0),
            )
            # moving share s changes the gap by 2s: profitable iff s < gap
            best = next(((s, n) for s, n in movable if s < gap), None)
            if best is None:
                return plan
            share, name = best
            loads[hot] -= share
            loads[cold] += share
            homes[name] = (cold, share)
            plan.append((name, hot, cold))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlacementScheduler {self.policy} cards={len(self.loads)} "
            f"vms={len(self.assignments)} skew={self.imbalance():.2f}>"
        )
