"""Kernel allocator model with the ``KMALLOC_MAX_SIZE`` ceiling.

§III (*Implementation details*): the vPHI frontend copies user data into
guest **physically contiguous** pages obtained with ``kmalloc()`` so they
can ride the virtio ring, and Linux caps a single physically contiguous
allocation at ``KMALLOC_MAX_SIZE`` (4 MB on x86_64).  Transfers larger than
that are broken into 4 MB elements — the chunking implemented in
:mod:`repro.vphi.chunking`.
"""

from __future__ import annotations

from .errors import AllocTooLarge
from .physical import PhysExtent, PhysicalMemory

__all__ = ["KMALLOC_MAX_SIZE", "KernelAllocator"]

#: Maximum physically contiguous kmalloc on x86_64 (MAX_ORDER 11 * 4 KiB * ...).
KMALLOC_MAX_SIZE = 4 * 1024 * 1024


class KernelAllocator:
    """kmalloc/kfree facade over a :class:`PhysicalMemory`."""

    def __init__(self, phys: PhysicalMemory, max_alloc: int = KMALLOC_MAX_SIZE):
        self.phys = phys
        self.max_alloc = max_alloc
        #: live allocation count (leak detection in tests).
        self.live = 0
        self.total_allocs = 0

    def kmalloc(self, nbytes: int, label: str = "kmalloc") -> PhysExtent:
        """Allocate physically contiguous kernel memory.

        Raises :class:`AllocTooLarge` above ``max_alloc`` — callers must
        chunk, exactly as the paper's frontend does.
        """
        if nbytes > self.max_alloc:
            raise AllocTooLarge(
                f"kmalloc({nbytes}) exceeds KMALLOC_MAX_SIZE={self.max_alloc}"
            )
        ext = self.phys.alloc(nbytes, label=label)
        self.live += 1
        self.total_allocs += 1
        return ext

    def kfree(self, ext: PhysExtent) -> None:
        ext.free()
        self.live -= 1

    def kmalloc_chunked(self, nbytes: int, label: str = "kmalloc") -> list[PhysExtent]:
        """Allocate ``nbytes`` as a list of <= max_alloc contiguous extents."""
        out: list[PhysExtent] = []
        off = 0
        try:
            while off < nbytes:
                n = min(self.max_alloc, nbytes - off)
                out.append(self.kmalloc(n, label=label))
                off += n
        except Exception:
            for ext in out:
                self.kfree(ext)
            raise
        return out
