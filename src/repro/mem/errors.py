"""Memory-subsystem error types (kernel-flavoured)."""

from __future__ import annotations

__all__ = [
    "MemError",
    "OutOfMemory",
    "BadAddress",
    "PageFault",
    "PinViolation",
    "AllocTooLarge",
]


class MemError(Exception):
    """Base class for memory-model errors."""


class OutOfMemory(MemError):
    """Allocation could not be satisfied (ENOMEM)."""


class BadAddress(MemError):
    """Access outside any allocated extent / mapped VMA (EFAULT)."""


class PageFault(MemError):
    """Access to a non-present page with no fault handler able to resolve it."""

    def __init__(self, vaddr: int, message: str = ""):
        super().__init__(message or f"unresolvable page fault at {vaddr:#x}")
        self.vaddr = vaddr


class PinViolation(MemError):
    """Pin/unpin misuse (double unpin, swap of a pinned page, ...)."""


class AllocTooLarge(MemError):
    """kmalloc request above KMALLOC_MAX_SIZE (the limit §III works around)."""
