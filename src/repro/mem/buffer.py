"""User-level data buffers for workloads and tests.

A :class:`Buffer` is a thin, numpy-backed byte container with deterministic
pattern fills and cheap integrity checks — the payloads the microbenchmarks
push through the stack to prove byte-exactness end to end.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

__all__ = ["Buffer"]

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]


class Buffer:
    """A mutable byte buffer with zero-copy views."""

    __slots__ = ("data",)

    def __init__(self, data: BytesLike):
        if isinstance(data, np.ndarray):
            if data.dtype != np.uint8:
                raise TypeError(f"Buffer requires uint8 array, got {data.dtype}")
            self.data = data
        else:
            self.data = np.frombuffer(bytes(data), dtype=np.uint8).copy()

    # -- constructors -------------------------------------------------------
    @classmethod
    def zeros(cls, nbytes: int) -> "Buffer":
        return cls(np.zeros(nbytes, dtype=np.uint8))

    @classmethod
    def pattern(cls, nbytes: int, seed: int = 0) -> "Buffer":
        """Deterministic pseudo-random contents (seeded, reproducible)."""
        rng = np.random.default_rng(seed)
        return cls(rng.integers(0, 256, size=nbytes, dtype=np.uint8))

    @classmethod
    def sequential(cls, nbytes: int, start: int = 0) -> "Buffer":
        """Byte ``i`` holds ``(start + i) & 0xFF`` — offsets show in dumps."""
        return cls(((np.arange(nbytes, dtype=np.int64) + start) & 0xFF).astype(np.uint8))

    # -- views and content ----------------------------------------------------
    def view(self, offset: int = 0, nbytes: int | None = None) -> "Buffer":
        """Zero-copy sub-buffer (mutations are visible both ways)."""
        nbytes = len(self.data) - offset if nbytes is None else nbytes
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self.data):
            raise IndexError(
                f"view [{offset}, {offset + nbytes}) outside buffer of {len(self.data)}"
            )
        return Buffer(self.data[offset : offset + nbytes])

    def tobytes(self) -> bytes:
        return self.data.tobytes()

    def checksum(self) -> int:
        """CRC32 of the contents (cheap integrity check for large payloads)."""
        return zlib.crc32(self.data.tobytes())

    def fill(self, byte: int) -> None:
        self.data[:] = byte

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Buffer):
            return np.array_equal(self.data, other.data)
        if isinstance(other, (bytes, bytearray)):
            return self.tobytes() == bytes(other)
        return NotImplemented

    def __hash__(self):  # Buffers are mutable
        raise TypeError("Buffer is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = self.data[:8].tobytes().hex()
        return f"<Buffer {len(self.data)}B {head}{'...' if len(self.data) > 8 else ''}>"
