"""Virtual address spaces: VMAs, page tables, pinning, swap, fault hooks.

This models exactly the machinery §III of the paper leans on:

* ``scif_register`` needs :meth:`AddressSpace.pin` (the get_user_pages
  model) so RMA targets cannot be swapped out from under a transfer;
* ``scif_mmap`` installs a *device* VMA whose fault handler resolves to
  Xeon Phi memory — and under vPHI the guest-side VMA is tagged
  :data:`VMAFlag.PFNPHI` carrying the host frame number, which is the
  <10-LOC KVM modification;
* the swap model makes the paper's warning concrete: an RMA against an
  unpinned page that was swapped out reads stale bytes *without* faulting,
  because DMA bypasses the page tables.
"""

from __future__ import annotations

import bisect
import enum
from typing import Callable, Optional

import numpy as np

from .errors import BadAddress, MemError, PageFault, PinViolation
from .pages import PAGE_SHIFT, PAGE_SIZE, page_align_down, page_align_up, page_offset
from .physical import PhysExtent, PhysicalMemory

__all__ = ["VMAFlag", "VMA", "PTE", "PinnedPages", "AddressSpace", "SGEntry"]


class VMAFlag(enum.IntFlag):
    """VMA permission / type flags (subset of Linux ``vm_flags``)."""

    READ = 0x1
    WRITE = 0x2
    ANON = 0x10
    #: device mapping (no anonymous backing; faults go to the handler)
    DEVICE = 0x20
    #: the paper's new tag: this VMA maps Xeon Phi memory through vPHI and
    #: stores the physical frame so KVM's fault path can resolve EPT faults.
    PFNPHI = 0x1000


#: ``fault_handler(vma, page_vaddr) -> (mem, paddr)`` resolving one page.
FaultHandler = Callable[["VMA", int], tuple[PhysicalMemory, int]]


class VMA:
    """A virtual memory area: ``[start, end)`` with flags and fault hook."""

    __slots__ = ("start", "end", "flags", "name", "fault_handler", "private")

    def __init__(
        self,
        start: int,
        end: int,
        flags: VMAFlag,
        name: str = "",
        fault_handler: Optional[FaultHandler] = None,
    ):
        self.start = start
        self.end = end
        self.flags = flags
        self.name = name
        self.fault_handler = fault_handler
        #: scratch slot for driver-private data (vPHI stores the base PFN
        #: of the mapped Xeon Phi region here — the "stored frame number").
        self.private: object = None

    @property
    def nbytes(self) -> int:
        return self.end - self.start

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VMA {self.name!r} [{self.start:#x},{self.end:#x}) {self.flags!r}>"


class PTE:
    """Page-table entry: where one virtual page currently lives."""

    __slots__ = ("mem", "paddr", "pin_count", "extent")

    def __init__(self, mem: PhysicalMemory, paddr: int, extent: Optional[PhysExtent] = None):
        self.mem = mem
        self.paddr = paddr
        self.pin_count = 0
        #: owning extent for anonymous pages (freed on unmap/swap).
        self.extent = extent


class SGEntry:
    """One physically contiguous run of a scatter-gather list."""

    __slots__ = ("mem", "paddr", "nbytes")

    def __init__(self, mem: PhysicalMemory, paddr: int, nbytes: int):
        self.mem = mem
        self.paddr = paddr
        self.nbytes = nbytes

    def __iter__(self):
        return iter((self.mem, self.paddr, self.nbytes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SG {self.mem.name!r}@{self.paddr:#x}+{self.nbytes}>"


class PinnedPages:
    """Result of :meth:`AddressSpace.pin` — holds pages resident until unpinned."""

    __slots__ = ("space", "vaddr", "nbytes", "sg", "_vpns", "active")

    def __init__(self, space: "AddressSpace", vaddr: int, nbytes: int,
                 sg: list[SGEntry], vpns: list[int]):
        self.space = space
        self.vaddr = vaddr
        self.nbytes = nbytes
        self.sg = sg
        self._vpns = vpns
        self.active = True

    def unpin(self) -> None:
        self.space.unpin(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PinnedPages {self.vaddr:#x}+{self.nbytes} runs={len(self.sg)} active={self.active}>"


class AddressSpace:
    """One process's (or one kernel's) virtual address space."""

    #: default placement base for mmap without an address hint.
    MMAP_BASE = 0x7F00_0000_0000

    def __init__(self, phys: PhysicalMemory, name: str = ""):
        self.phys = phys
        self.name = name
        self._vmas: list[VMA] = []  # sorted by start
        self._pt: dict[int, PTE] = {}  # vpn -> PTE
        self._swap: dict[int, bytes] = {}  # vpn -> swapped-out contents
        self._next_map = self.MMAP_BASE
        #: counters for the experiments
        self.fault_count = 0
        self.swapin_count = 0
        self.swapout_count = 0

    # ------------------------------------------------------------------
    # VMA management
    # ------------------------------------------------------------------
    def mmap(
        self,
        length: int,
        flags: VMAFlag = VMAFlag.READ | VMAFlag.WRITE | VMAFlag.ANON,
        name: str = "",
        addr: Optional[int] = None,
        fault_handler: Optional[FaultHandler] = None,
        populate: bool = False,
    ) -> VMA:
        """Create a mapping; returns the VMA (its ``start`` is the address).

        ``populate=True`` eagerly backs an anonymous VMA with one contiguous
        extent — used by benchmark buffers so scatter-gather lists coalesce.
        """
        if length <= 0:
            raise MemError("mmap length must be positive")
        length = page_align_up(length)
        if addr is None:
            addr = self._next_map
            self._next_map += length + PAGE_SIZE  # guard page gap
        elif page_offset(addr):
            raise MemError(f"mmap hint {addr:#x} not page aligned")
        if self._overlaps(addr, addr + length):
            raise MemError(f"mmap [{addr:#x},{addr + length:#x}) overlaps existing VMA")
        vma = VMA(addr, addr + length, flags, name=name, fault_handler=fault_handler)
        starts = [v.start for v in self._vmas]
        self._vmas.insert(bisect.bisect_left(starts, vma.start), vma)
        if populate:
            if fault_handler is not None:
                raise MemError("populate only applies to anonymous VMAs")
            ext = self.phys.alloc(length, label=name or "anon")
            for i in range(length >> PAGE_SHIFT):
                vpn = (addr >> PAGE_SHIFT) + i
                self._pt[vpn] = PTE(self.phys, ext.addr + (i << PAGE_SHIFT), extent=None)
            # Remember the extent on the VMA so munmap can free it wholesale.
            vma.private = ext
        return vma

    def munmap(self, vma: VMA) -> None:
        try:
            self._vmas.remove(vma)
        except ValueError:
            raise MemError(f"munmap of unknown VMA {vma!r}") from None
        for vpn in range(vma.start >> PAGE_SHIFT, vma.end >> PAGE_SHIFT):
            pte = self._pt.pop(vpn, None)
            if pte is not None:
                if pte.pin_count:
                    raise PinViolation(
                        f"munmap of pinned page {vpn << PAGE_SHIFT:#x} in {vma.name!r}"
                    )
                if pte.extent is not None:
                    pte.extent.free()
            self._swap.pop(vpn, None)
        if isinstance(vma.private, PhysExtent) and not vma.private.freed:
            vma.private.free()

    def _overlaps(self, start: int, end: int) -> bool:
        for v in self._vmas:
            if v.start < end and start < v.end:
                return True
        return False

    def find_vma(self, vaddr: int) -> Optional[VMA]:
        starts = [v.start for v in self._vmas]
        i = bisect.bisect_right(starts, vaddr) - 1
        if i >= 0 and self._vmas[i].contains(vaddr):
            return self._vmas[i]
        return None

    # ------------------------------------------------------------------
    # translation and faults
    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> tuple[PhysicalMemory, int]:
        """Resolve ``vaddr`` to (memory, physical address), faulting if needed."""
        vpn = vaddr >> PAGE_SHIFT
        pte = self._pt.get(vpn)
        if pte is None:
            pte = self._fault(vaddr)
        return pte.mem, pte.paddr + page_offset(vaddr)

    def _fault(self, vaddr: int) -> PTE:
        vma = self.find_vma(vaddr)
        if vma is None:
            raise BadAddress(f"{self.name}: no VMA maps {vaddr:#x} (SIGSEGV)")
        self.fault_count += 1
        vpn = vaddr >> PAGE_SHIFT
        if vma.fault_handler is not None:
            mem, paddr = vma.fault_handler(vma, vpn << PAGE_SHIFT)
            pte = PTE(mem, paddr)
        elif vma.flags & VMAFlag.ANON:
            ext = self.phys.alloc(PAGE_SIZE, label=vma.name or "anon")
            pte = PTE(self.phys, ext.addr, extent=ext)
            swapped = self._swap.pop(vpn, None)
            if swapped is not None:
                self.swapin_count += 1
                self.phys.write(ext.addr, swapped)
        else:
            raise PageFault(vaddr, f"{self.name}: VMA {vma.name!r} has no backing")
        self._pt[vpn] = pte
        return pte

    def map_page(self, vaddr: int, mem: PhysicalMemory, paddr: int) -> None:
        """Install an explicit translation (kmap-style, no VMA required)."""
        if page_offset(vaddr) or page_offset(paddr):
            raise MemError("map_page requires page-aligned addresses")
        vpn = vaddr >> PAGE_SHIFT
        if vpn in self._pt:
            raise MemError(f"page {vaddr:#x} already mapped")
        self._pt[vpn] = PTE(mem, paddr)

    def unmap_page(self, vaddr: int) -> None:
        pte = self._pt.pop(vaddr >> PAGE_SHIFT, None)
        if pte is None:
            raise MemError(f"page {vaddr:#x} not mapped")
        if pte.pin_count:
            raise PinViolation(f"unmap of pinned page {vaddr:#x}")

    def is_present(self, vaddr: int) -> bool:
        return (vaddr >> PAGE_SHIFT) in self._pt

    # ------------------------------------------------------------------
    # CPU-style access (walks page tables, takes faults)
    # ------------------------------------------------------------------
    def read(self, vaddr: int, nbytes: int) -> np.ndarray:
        out = np.empty(nbytes, dtype=np.uint8)
        off = 0
        while off < nbytes:
            mem, paddr, run = self._contiguous_run(vaddr + off, nbytes - off)
            mem.read_into(paddr, out[off : off + run])
            off += run
        return out

    def write(self, vaddr: int, data: np.ndarray | bytes) -> None:
        if isinstance(data, (bytes, bytearray, memoryview)):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        nbytes = len(data)
        off = 0
        while off < nbytes:
            mem, paddr, run = self._contiguous_run(vaddr + off, nbytes - off)
            mem.write(paddr, data[off : off + run])
            off += run

    def _contiguous_run(self, vaddr: int, nbytes: int) -> tuple[PhysicalMemory, int, int]:
        """Translate ``vaddr`` and extend across physically contiguous pages.

        Returns ``(mem, paddr, run)`` where ``run <= nbytes`` covers every
        consecutive page whose translation stays contiguous in ``mem`` —
        populated VMAs collapse to a single memory op instead of one per
        4 KiB page.  Pages are faulted in the same sequential order the
        page-at-a-time loop used.
        """
        mem, paddr = self.translate(vaddr)
        run = min(PAGE_SIZE - page_offset(vaddr), nbytes)
        while run < nbytes:
            m2, p2 = self.translate(vaddr + run)
            if m2 is not mem or p2 != paddr + run:
                break
            run += min(PAGE_SIZE, nbytes - run)
        return mem, paddr, run

    # ------------------------------------------------------------------
    # scatter-gather resolution (the DMA view of a user buffer)
    # ------------------------------------------------------------------
    def sg_list(self, vaddr: int, nbytes: int, fault_in: bool = True) -> list[SGEntry]:
        """Resolve a virtual range to coalesced physical runs.

        ``fault_in=False`` reads the page tables *without* faulting —
        that is how DMA sees memory, and why unpinned swapped-out pages
        yield stale physical frames (:class:`PageFault` is raised here only
        if the page was never mapped at all).
        """
        if nbytes <= 0:
            return []
        runs: list[SGEntry] = []
        off = 0
        while off < nbytes:
            a = vaddr + off
            if fault_in:
                mem, paddr = self.translate(a)
            else:
                pte = self._pt.get(a >> PAGE_SHIFT)
                if pte is None:
                    raise PageFault(a, f"{self.name}: DMA against non-present page")
                mem, paddr = pte.mem, pte.paddr + page_offset(a)
            n = min(PAGE_SIZE - page_offset(a), nbytes - off)
            if runs and runs[-1].mem is mem and runs[-1].paddr + runs[-1].nbytes == paddr:
                runs[-1].nbytes += n
            else:
                runs.append(SGEntry(mem, paddr, n))
            off += n
        return runs

    # ------------------------------------------------------------------
    # pinning (get_user_pages) and swap
    # ------------------------------------------------------------------
    def pin(self, vaddr: int, nbytes: int) -> PinnedPages:
        """Fault in and pin every page of ``[vaddr, vaddr+nbytes)``."""
        if nbytes <= 0:
            raise MemError("pin length must be positive")
        start = page_align_down(vaddr)
        end = page_align_up(vaddr + nbytes)
        vpns = []
        for vpn in range(start >> PAGE_SHIFT, end >> PAGE_SHIFT):
            a = vpn << PAGE_SHIFT
            pte = self._pt.get(vpn)
            if pte is None:
                pte = self._fault(a)
            pte.pin_count += 1
            vpns.append(vpn)
        sg = self.sg_list(vaddr, nbytes, fault_in=False)
        return PinnedPages(self, vaddr, nbytes, sg, vpns)

    def unpin(self, pinned: PinnedPages) -> None:
        if not pinned.active:
            raise PinViolation("double unpin")
        if pinned.space is not self:
            raise PinViolation("unpin against the wrong address space")
        pinned.active = False
        for vpn in pinned._vpns:
            pte = self._pt.get(vpn)
            if pte is None or pte.pin_count <= 0:
                raise PinViolation(f"unpin of unpinned page {vpn << PAGE_SHIFT:#x}")
            pte.pin_count -= 1

    def swap_out(self, vaddr: int) -> bool:
        """Evict one anonymous page to swap.  Returns False if it was pinned
        (the kernel skips pinned pages) or not present."""
        vpn = page_align_down(vaddr) >> PAGE_SHIFT
        pte = self._pt.get(vpn)
        if pte is None:
            return False
        if pte.pin_count > 0:
            return False
        if pte.extent is None:
            # Not an anonymous page we own (device mapping / populated
            # extent) — leave it alone, like the kernel would.
            return False
        self._swap[vpn] = bytes(pte.mem.read(pte.paddr, PAGE_SIZE))
        pte.extent.free()
        del self._pt[vpn]
        self.swapout_count += 1
        return True

    def resident_pages(self) -> int:
        return len(self._pt)

    def pinned_pages(self) -> int:
        return sum(1 for pte in self._pt.values() if pte.pin_count > 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AddressSpace {self.name!r} vmas={len(self._vmas)} resident={len(self._pt)}>"
