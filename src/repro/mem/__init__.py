"""Memory substrate: physical memories, address spaces, pinning, kmalloc."""

from .address_space import (
    VMA,
    AddressSpace,
    PTE,
    PinnedPages,
    SGEntry,
    VMAFlag,
)
from .buffer import Buffer
from .errors import (
    AllocTooLarge,
    BadAddress,
    MemError,
    OutOfMemory,
    PageFault,
    PinViolation,
)
from .kmalloc import KMALLOC_MAX_SIZE, KernelAllocator
from .pages import (
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    is_page_aligned,
    page_align_down,
    page_align_up,
    page_offset,
    pages_spanned,
)
from .physical import CHUNK_SIZE, POISON_BYTE, PhysExtent, PhysicalMemory

__all__ = [
    "AddressSpace",
    "AllocTooLarge",
    "BadAddress",
    "Buffer",
    "CHUNK_SIZE",
    "KMALLOC_MAX_SIZE",
    "KernelAllocator",
    "MemError",
    "OutOfMemory",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "POISON_BYTE",
    "PTE",
    "PageFault",
    "PhysExtent",
    "PhysicalMemory",
    "PinViolation",
    "PinnedPages",
    "SGEntry",
    "VMA",
    "VMAFlag",
    "is_page_aligned",
    "page_align_down",
    "page_align_up",
    "page_offset",
    "pages_spanned",
]
