"""Page-size constants and page arithmetic helpers."""

from __future__ import annotations

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PAGE_MASK",
    "page_align_down",
    "page_align_up",
    "page_offset",
    "pages_spanned",
    "is_page_aligned",
]

#: x86-64 base page size, shared by host, guest and the card's uOS.
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~PAGE_MASK


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to a page boundary."""
    return (addr + PAGE_MASK) & ~PAGE_MASK


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its page."""
    return addr & PAGE_MASK


def pages_spanned(addr: int, nbytes: int) -> int:
    """Number of pages touched by the byte range ``[addr, addr+nbytes)``."""
    if nbytes <= 0:
        return 0
    first = page_align_down(addr)
    last = page_align_down(addr + nbytes - 1)
    return ((last - first) >> PAGE_SHIFT) + 1


def is_page_aligned(addr: int) -> bool:
    return (addr & PAGE_MASK) == 0
