"""Physical memory model: sparse, chunk-backed, byte-addressable.

Each simulated RAM (host DDR3, guest RAM, Xeon Phi GDDR5) is a
:class:`PhysicalMemory`.  Storage is materialized lazily in fixed-size
chunks of one numpy array each, so a simulated 64 GB host costs nothing
until written, while bulk copies still run at numpy speed (the guides'
"views, not copies" rule: all internal transfers slice chunk arrays
directly).

A :class:`PhysicalMemory` can be *nested*: a VM's RAM is carved out of an
extent of host RAM, so guest-physical address ``g`` **is** host-physical
``base + g`` and the QEMU backend's zero-copy access to guest buffers falls
out of the representation instead of being faked.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

import numpy as np

from .errors import BadAddress, MemError, OutOfMemory
from .pages import PAGE_SIZE, page_align_up

__all__ = ["PhysicalMemory", "PhysExtent", "CHUNK_SIZE", "POISON_BYTE"]

#: Materialization granularity of backing storage.
CHUNK_SIZE = 1 << 20  # 1 MiB

#: Pattern written into freshly *reused* frames so stale reads are detectable
#: (the paper's pinning discussion: an RMA against a swapped-out page reads
#: whatever now occupies the frame).
POISON_BYTE = 0xDD


class PhysExtent:
    """A contiguous physical byte range owned by an allocation."""

    __slots__ = ("mem", "addr", "nbytes", "_freed", "label")

    def __init__(self, mem: "PhysicalMemory", addr: int, nbytes: int, label: str = ""):
        self.mem = mem
        self.addr = addr
        self.nbytes = nbytes
        self.label = label
        self._freed = False

    @property
    def end(self) -> int:
        return self.addr + self.nbytes

    @property
    def freed(self) -> bool:
        return self._freed

    def _check(self, off: int, n: int) -> None:
        if self._freed:
            raise BadAddress(f"use-after-free of extent {self.label!r}@{self.addr:#x}")
        if off < 0 or n < 0 or off + n > self.nbytes:
            raise BadAddress(
                f"extent {self.label!r} access [{off}, {off + n}) outside size {self.nbytes}"
            )

    def read(self, off: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        nbytes = self.nbytes - off if nbytes is None else nbytes
        self._check(off, nbytes)
        return self.mem.read(self.addr + off, nbytes)

    def read_into(self, out: np.ndarray, off: int = 0) -> None:
        """Copy extent bytes directly into ``out`` (a uint8 array or view)."""
        self._check(off, len(out))
        self.mem.read_into(self.addr + off, out)

    def iter_views(self, off: int = 0, nbytes: Optional[int] = None):
        """Yield ``(offset, chunk_view)`` pairs covering the range, zero-copy."""
        nbytes = self.nbytes - off if nbytes is None else nbytes
        self._check(off, nbytes)
        return self.mem.iter_views(self.addr + off, nbytes)

    def write(self, data: np.ndarray | bytes, off: int = 0) -> None:
        data = np.asarray(bytearray(data), dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else data
        self._check(off, len(data))
        self.mem.write(self.addr + off, data)

    def fill(self, byte: int, off: int = 0, nbytes: Optional[int] = None) -> None:
        nbytes = self.nbytes - off if nbytes is None else nbytes
        self._check(off, nbytes)
        self.mem.fill(self.addr + off, nbytes, byte)

    def free(self) -> None:
        self.mem.free(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PhysExtent {self.label!r} [{self.addr:#x}, {self.end:#x}) in {self.mem.name!r}>"


class PhysicalMemory:
    """Byte-addressable physical memory with a first-fit range allocator."""

    def __init__(
        self,
        size: int,
        name: str = "",
        parent: Optional[PhysExtent] = None,
    ):
        if size <= 0:
            raise ValueError("memory size must be positive")
        if parent is not None and parent.nbytes < size:
            raise ValueError("parent extent smaller than requested memory size")
        self.size = size
        self.name = name
        self.parent = parent
        # Free list: sorted list of [start, end) holes.
        self._holes: list[tuple[int, int]] = [(0, size)]
        self._extents: dict[int, PhysExtent] = {}
        self._chunks: dict[int, np.ndarray] = {}
        #: bytes currently allocated (accounting).
        self.bytes_allocated = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = PAGE_SIZE, label: str = "") -> PhysExtent:
        """Allocate a physically contiguous, ``align``-aligned extent."""
        if nbytes <= 0:
            raise MemError("allocation size must be positive")
        if align <= 0 or (align & (align - 1)):
            raise MemError(f"alignment must be a power of two, got {align}")
        nbytes = page_align_up(nbytes)
        for i, (start, end) in enumerate(self._holes):
            base = (start + align - 1) & ~(align - 1)
            if base + nbytes <= end:
                # Split the hole around [base, base+nbytes).
                newholes = []
                if start < base:
                    newholes.append((start, base))
                if base + nbytes < end:
                    newholes.append((base + nbytes, end))
                self._holes[i : i + 1] = newholes
                ext = PhysExtent(self, base, nbytes, label=label)
                self._extents[base] = ext
                self.bytes_allocated += nbytes
                return ext
        raise OutOfMemory(
            f"{self.name or 'memory'}: cannot allocate {nbytes} bytes "
            f"(allocated {self.bytes_allocated}/{self.size})"
        )

    def free(self, extent: PhysExtent) -> None:
        if extent.mem is not self:
            raise MemError("extent belongs to a different memory")
        if extent._freed:
            raise MemError(f"double free of extent @{extent.addr:#x}")
        stored = self._extents.pop(extent.addr, None)
        if stored is not extent:
            raise MemError(f"unknown extent @{extent.addr:#x}")
        extent._freed = True
        self.bytes_allocated -= extent.nbytes
        # Scribble poison over freed storage (only where chunks are already
        # materialized — untouched chunks still read back as poison-free
        # zeros, which is fine: they held no data to leak).  A later reuse of
        # the range sees garbage, not the old contents, which is what makes
        # stale reads against swapped/freed frames detectable in the pinning
        # experiments.
        first = extent.addr // CHUNK_SIZE
        last = (extent.end - 1) // CHUNK_SIZE
        for ci in range(first, last + 1):
            if ci in self._chunks:
                lo = max(extent.addr - ci * CHUNK_SIZE, 0)
                hi = min(extent.end - ci * CHUNK_SIZE, CHUNK_SIZE)
                self._chunks[ci][lo:hi] = POISON_BYTE
        self._insert_hole(extent.addr, extent.end)

    def _insert_hole(self, start: int, end: int) -> None:
        starts = [h[0] for h in self._holes]
        i = bisect.bisect_left(starts, start)
        self._holes.insert(i, (start, end))
        # Coalesce with neighbours.
        merged: list[tuple[int, int]] = []
        for s, e in self._holes:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._holes = merged

    @property
    def bytes_free(self) -> int:
        return sum(e - s for s, e in self._holes)

    def largest_free_block(self) -> int:
        return max((e - s for s, e in self._holes), default=0)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def _bounds(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise BadAddress(
                f"{self.name or 'memory'}: access [{addr:#x}, {addr + nbytes:#x}) "
                f"outside size {self.size:#x}"
            )

    def _chunk(self, index: int) -> np.ndarray:
        chunk = self._chunks.get(index)
        if chunk is None:
            chunk = self._chunks[index] = np.zeros(CHUNK_SIZE, dtype=np.uint8)
        return chunk

    def _spans(self, addr: int, nbytes: int) -> Iterator[tuple[np.ndarray, int, int, int]]:
        """Yield ``(chunk, chunk_lo, chunk_hi, dest_off)`` covering the range."""
        off = 0
        while off < nbytes:
            a = addr + off
            ci, co = divmod(a, CHUNK_SIZE)
            n = min(CHUNK_SIZE - co, nbytes - off)
            yield self._chunk(ci), co, co + n, off
            off += n

    def _resolve(self, addr: int) -> tuple["PhysicalMemory", int]:
        """Flatten a nested address to (root memory, root address).

        Walks the parent chain once instead of recursing through each
        level's read/write; liveness of every intermediate extent is still
        enforced so use-after-free of a carved region keeps raising.
        """
        mem: PhysicalMemory = self
        while mem.parent is not None:
            ext = mem.parent
            if ext._freed:
                raise BadAddress(
                    f"use-after-free of extent {ext.label!r}@{ext.addr:#x}"
                )
            addr += ext.addr
            mem = ext.mem
        return mem, addr

    def read(self, addr: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` out as a fresh uint8 array."""
        self._bounds(addr, nbytes)
        mem = self
        if self.parent is not None:
            mem, addr = self._resolve(addr)
        ci, co = divmod(addr, CHUNK_SIZE)
        if co + nbytes <= CHUNK_SIZE:
            return mem._chunk(ci)[co : co + nbytes].copy()
        out = np.empty(nbytes, dtype=np.uint8)
        for chunk, lo, hi, doff in mem._spans(addr, nbytes):
            out[doff : doff + (hi - lo)] = chunk[lo:hi]
        return out

    def read_into(self, addr: int, out: np.ndarray) -> None:
        """Copy ``len(out)`` bytes directly into ``out`` — one copy, no temp."""
        nbytes = len(out)
        self._bounds(addr, nbytes)
        mem = self
        if self.parent is not None:
            mem, addr = self._resolve(addr)
        ci, co = divmod(addr, CHUNK_SIZE)
        if co + nbytes <= CHUNK_SIZE:
            out[:] = mem._chunk(ci)[co : co + nbytes]
            return
        for chunk, lo, hi, doff in mem._spans(addr, nbytes):
            out[doff : doff + (hi - lo)] = chunk[lo:hi]

    def iter_views(self, addr: int, nbytes: int) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(offset, chunk_view)`` pairs covering the range.

        The views alias live backing storage — callers must consume (copy)
        each one before the next simulated write can touch the range.
        """
        self._bounds(addr, nbytes)
        mem = self
        if self.parent is not None:
            mem, addr = self._resolve(addr)
        for chunk, lo, hi, doff in mem._spans(addr, nbytes):
            yield doff, chunk[lo:hi]

    def write(self, addr: int, data: np.ndarray | bytes) -> None:
        if isinstance(data, (bytes, bytearray, memoryview)):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        if data.dtype != np.uint8:
            data = data.view(np.uint8) if data.flags["C_CONTIGUOUS"] else np.ascontiguousarray(data).view(np.uint8)
        n = len(data)
        self._bounds(addr, n)
        mem = self
        if self.parent is not None:
            mem, addr = self._resolve(addr)
        chunks = mem._chunks
        off = 0
        while off < n:
            a = addr + off
            ci, co = divmod(a, CHUNK_SIZE)
            take = min(CHUNK_SIZE - co, n - off)
            chunk = chunks.get(ci)
            if chunk is None:
                if co == 0 and take == CHUNK_SIZE:
                    # Whole-chunk overwrite: materialize from the payload
                    # directly instead of zero-filling first.
                    chunks[ci] = data[off : off + CHUNK_SIZE].copy()
                    off += take
                    continue
                chunk = chunks[ci] = np.zeros(CHUNK_SIZE, dtype=np.uint8)
            chunk[co : co + take] = data[off : off + take]
            off += take

    def fill(self, addr: int, nbytes: int, byte: int) -> None:
        self._bounds(addr, nbytes)
        mem = self
        if self.parent is not None:
            mem, addr = self._resolve(addr)
        for chunk, lo, hi, _ in mem._spans(addr, nbytes):
            chunk[lo:hi] = byte

    def copy_within(self, dst: int, src: int, nbytes: int) -> None:
        """memmove-style copy inside this memory."""
        self.write(dst, self.read(src, nbytes))

    @staticmethod
    def copy(
        dst_mem: "PhysicalMemory",
        dst: int,
        src_mem: "PhysicalMemory",
        src: int,
        nbytes: int,
    ) -> None:
        """Copy between two physical memories (the DMA engine's data move).

        Streams chunk views in lockstep — one copy per span instead of a
        full read into a temporary followed by a full write.  Overlapping
        same-root ranges fall back to the copy-via-temporary path so the
        memmove semantics are preserved.
        """
        src_mem._bounds(src, nbytes)
        dst_mem._bounds(dst, nbytes)
        smem, s = src_mem._resolve(src) if src_mem.parent is not None else (src_mem, src)
        dmem, d = dst_mem._resolve(dst) if dst_mem.parent is not None else (dst_mem, dst)
        if smem is dmem and s < d + nbytes and d < s + nbytes:
            dst_mem.write(dst, src_mem.read(src, nbytes))
            return
        dchunks = dmem._chunks
        off = 0
        while off < nbytes:
            sci, sco = divmod(s + off, CHUNK_SIZE)
            dci, dco = divmod(d + off, CHUNK_SIZE)
            take = min(CHUNK_SIZE - sco, CHUNK_SIZE - dco, nbytes - off)
            schunk = smem._chunk(sci)
            dchunk = dchunks.get(dci)
            if dchunk is None:
                if dco == 0 and take == CHUNK_SIZE:
                    dchunks[dci] = schunk[sco : sco + CHUNK_SIZE].copy()
                    off += take
                    continue
                dchunk = dchunks[dci] = np.zeros(CHUNK_SIZE, dtype=np.uint8)
            dchunk[dco : dco + take] = schunk[sco : sco + take]
            off += take

    def carve(self, nbytes: int, name: str = "", label: str = "") -> "PhysicalMemory":
        """Allocate an extent and wrap it as a nested PhysicalMemory.

        This is how a VM's RAM is created out of host RAM.
        """
        ext = self.alloc(nbytes, label=label or name)
        return PhysicalMemory(nbytes, name=name, parent=ext)

    @property
    def host_base(self) -> int:
        """For nested memories: offset of address 0 in the root memory."""
        base = 0
        mem: Optional[PhysicalMemory] = self
        while mem is not None and mem.parent is not None:
            base += mem.parent.addr
            mem = mem.parent.mem
        return base

    def root(self) -> "PhysicalMemory":
        mem = self
        while mem.parent is not None:
            mem = mem.parent.mem
        return mem

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PhysicalMemory {self.name!r} size={self.size:#x} "
            f"alloc={self.bytes_allocated:#x} nested={self.parent is not None}>"
        )
