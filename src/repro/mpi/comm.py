"""Point-to-point MPI communication over SCIF streams.

The symmetric model of execution (§II-A): "Xeon Phi can be viewed as an
independent node and ... a user can launch some processes of the same
parallel application on the host side and some other processes on the
accelerator, using for example MPI."  Intel's MPI uses SCIF as its
intra-node fabric; this module does the same — every rank pair shares a
SCIF connection, and messages are length+tag framed records on that
stream.  Because a rank's "libscif" can just as well be the vPHI guest
shim, ranks placed inside VMs work unchanged — symmetric mode through
vPHI, the paper's future work.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any

from ..scif import Endpoint

__all__ = ["MPIError", "RankEndpoint", "TAG_ANY"]

#: wildcard receive tag.
TAG_ANY = -1

_HDR = 16  # 8B length + 8B tag


class MPIError(Exception):
    """Communicator misuse or transport failure."""


def _frame(tag: int, payload: bytes) -> bytes:
    return len(payload).to_bytes(8, "big") + tag.to_bytes(8, "big", signed=True) + payload


class RankEndpoint:
    """One rank's view of its channel to one peer rank."""

    def __init__(self, lib, ep: Endpoint | object, peer_rank: int):
        self.lib = lib
        self.ep = ep
        self.peer_rank = peer_rank
        #: messages read off the stream but not yet matched by tag.
        self.inbox: deque[tuple[int, bytes]] = deque()

    # ------------------------------------------------------------------
    def send_msg(self, tag: int, obj: Any):
        """Process: send one tagged message (pickled, like mpi4py's
        lowercase methods; numpy arrays pickle efficiently)."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        yield from self.lib.send(self.ep, _frame(tag, payload))
        return len(payload)

    def recv_msg(self, tag: int = TAG_ANY):
        """Process: receive the next message matching ``tag``.

        The per-pair stream is ordered; non-matching messages are parked
        in the inbox so out-of-order tag matching works.
        """
        for i, (t, payload) in enumerate(self.inbox):
            if tag == TAG_ANY or t == tag:
                del self.inbox[i]
                return pickle.loads(payload)
        while True:
            hdr = yield from self.lib.recv(self.ep, _HDR)
            hdr_bytes = hdr.tobytes()
            length = int.from_bytes(hdr_bytes[:8], "big")
            t = int.from_bytes(hdr_bytes[8:16], "big", signed=True)
            data = yield from self.lib.recv(self.ep, length)
            payload = data.tobytes()
            if tag == TAG_ANY or t == tag:
                return pickle.loads(payload)
            self.inbox.append((t, payload))
