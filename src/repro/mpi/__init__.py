"""Symmetric-mode substrate: a mini-MPI over SCIF (ranks on host, card, VMs)."""

from .comm import MPIError, RankEndpoint, TAG_ANY
from .collectives import MAX, MIN, PROD, Rank, SUM
from .launcher import MPI_BASE_PORT, mpirun

__all__ = [
    "MAX",
    "MIN",
    "MPIError",
    "MPI_BASE_PORT",
    "PROD",
    "Rank",
    "RankEndpoint",
    "SUM",
    "TAG_ANY",
    "mpirun",
]
