"""MPI rank object: point-to-point + collectives.

Standard algorithms on top of the per-pair streams: dissemination
barrier, binomial-tree broadcast, binary-tree reduce, ring allgather.
Operations are generator processes, consistent with the whole stack.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from .comm import MPIError, RankEndpoint, TAG_ANY

__all__ = ["Rank", "SUM", "MAX", "MIN", "PROD"]

# reduction ops work on numbers and numpy arrays alike
SUM = lambda a, b: a + b
MAX = lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
MIN = lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
PROD = lambda a, b: a * b

# internal tag spaces so user traffic and collectives never collide
_TAG_BARRIER = 1 << 40
_TAG_BCAST = 2 << 40
_TAG_REDUCE = 3 << 40
_TAG_GATHER = 4 << 40
_TAG_SCATTER = 5 << 40
_TAG_ALLGATHER = 6 << 40


class Rank:
    """One MPI process: its rank id and channels to every peer."""

    def __init__(self, rank: int, size: int, name: str = ""):
        self.rank = rank
        self.size = size
        self.name = name or f"rank{rank}"
        self.peers: dict[int, RankEndpoint] = {}
        self._collective_seq = 0

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def _peer(self, other: int) -> RankEndpoint:
        if other == self.rank:
            raise MPIError(f"rank {self.rank} cannot message itself")
        try:
            return self.peers[other]
        except KeyError:
            raise MPIError(f"rank {self.rank} has no channel to {other}") from None

    def send(self, dest: int, obj: Any, tag: int = 0):
        """Process: blocking tagged send."""
        n = yield from self._peer(dest).send_msg(tag, obj)
        return n

    def recv(self, source: int, tag: int = TAG_ANY):
        """Process: blocking tagged receive from ``source``."""
        obj = yield from self._peer(source).recv_msg(tag)
        return obj

    def sendrecv(self, dest: int, obj: Any, source: int, tag: int = 0):
        """Process: exchange — send to ``dest``, then receive from
        ``source`` (sends never block indefinitely in this transport, so
        the classic exchange deadlock cannot occur)."""
        yield from self.send(dest, obj, tag)
        got = yield from self.recv(source, tag)
        return got

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._collective_seq += 1
        return self._collective_seq

    def barrier(self):
        """Process: dissemination barrier (log2(size) rounds)."""
        seq = self._next_seq()
        k = 1
        round_no = 0
        while k < self.size:
            dest = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            tag = _TAG_BARRIER + (seq << 8) + round_no
            yield from self.send(dest, None, tag)
            yield from self.recv(src, tag)
            k <<= 1
            round_no += 1
        return None

    def bcast(self, obj: Any, root: int = 0):
        """Process: binomial-tree broadcast; returns the value on every rank."""
        seq = self._next_seq()
        tag = _TAG_BCAST + (seq << 8)
        rel = (self.rank - root) % self.size
        # walk up: receive from the parent (rel with its lowest set bit
        # cleared); the mask where we stop is our subtree height
        mask = 1
        while mask < self.size:
            if rel & mask:
                parent = ((rel ^ mask) + root) % self.size
                obj = yield from self.recv(parent, tag)
                break
            mask <<= 1
        # walk down: forward to each child rel+mask for smaller masks
        mask >>= 1
        while mask > 0:
            if rel + mask < self.size:
                child = (rel + mask + root) % self.size
                yield from self.send(child, obj, tag)
            mask >>= 1
        return obj

    def reduce(self, value: Any, op: Callable = SUM, root: int = 0):
        """Process: binary-tree reduce toward ``root``; result on root."""
        seq = self._next_seq()
        tag = _TAG_REDUCE + (seq << 8)
        rel = (self.rank - root) % self.size
        acc = value
        k = 1
        while k < self.size:
            if rel & k:
                parent = ((rel & ~k) + root) % self.size
                yield from self.send(parent, acc, tag)
                break
            partner_rel = rel | k
            if partner_rel < self.size:
                partner = (partner_rel + root) % self.size
                other = yield from self.recv(partner, tag)
                acc = op(acc, other)
            k <<= 1
        return acc if self.rank == root else None

    def allreduce(self, value: Any, op: Callable = SUM):
        """Process: reduce + broadcast."""
        acc = yield from self.reduce(value, op, root=0)
        result = yield from self.bcast(acc, root=0)
        return result

    def gather(self, value: Any, root: int = 0):
        """Process: linear gather; root gets the list indexed by rank."""
        seq = self._next_seq()
        tag = _TAG_GATHER + (seq << 8)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[self.rank] = value
            for other in range(self.size):
                if other != root:
                    out[other] = yield from self.recv(other, tag)
            return out
        yield from self.send(root, value, tag)
        return None

    def scatter(self, values: Optional[list], root: int = 0):
        """Process: root distributes ``values[i]`` to rank i."""
        seq = self._next_seq()
        tag = _TAG_SCATTER + (seq << 8)
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIError("scatter needs one value per rank at the root")
            for other in range(self.size):
                if other != root:
                    yield from self.send(other, values[other], tag)
            return values[root]
        got = yield from self.recv(root, tag)
        return got

    def allgather(self, value: Any):
        """Process: ring allgather (size-1 rounds)."""
        seq = self._next_seq()
        tag = _TAG_ALLGATHER + (seq << 8)
        out: list[Any] = [None] * self.size
        out[self.rank] = value
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        carry_rank, carry = self.rank, value
        for _ in range(self.size - 1):
            yield from self.send(right, (carry_rank, carry), tag)
            carry_rank, carry = yield from self.recv(left, tag)
            out[carry_rank] = carry
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rank {self.rank}/{self.size} {self.name!r}>"
