"""mpirun: launch ranks across host, card(s) and VMs, wire the mesh.

Placement mirrors an Intel-MPI machinefile for symmetric mode: some
ranks on the host CPU, some on the coprocessor — and, through vPHI, some
inside guests.  Every rank pair gets its own SCIF connection (rank i
accepts from higher ranks and connects to lower ones), then the user's
``main(rank, ctx)`` generator runs.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

from ..sim import DeadlockError
from ..workloads.microbench import ClientContext
from .comm import MPIError, RankEndpoint
from .collectives import Rank

__all__ = ["mpirun", "MPI_BASE_PORT"]

MPI_BASE_PORT = 30_000

#: placement entry: "host", ("card", index) or ("vm", VirtualMachine)
Placement = Union[str, tuple]


def _context_for(machine, placement: Placement, rank: int) -> ClientContext:
    if placement == "host":
        return ClientContext.native(machine, f"mpi-rank{rank}")
    kind, what = placement
    if kind == "card":
        proc = machine.card_process(f"mpi-rank{rank}", card=what)
        return ClientContext(machine.scif(proc), proc, machine.sim.spawn,
                             f"card{what}")
    if kind == "vm":
        return ClientContext.guest(what, f"mpi-rank{rank}")
    raise MPIError(f"bad placement {placement!r}")


def _node_of(machine, placement: Placement) -> int:
    if placement == "host":
        return 0
    kind, what = placement
    if kind == "card":
        return machine.card_node_id(what)
    if kind == "vm":
        return 0  # the VM's QEMU backend binds on the host node
    raise MPIError(f"bad placement {placement!r}")


def mpirun(
    machine,
    placements: Sequence[Placement],
    main: Callable,
    args: tuple = (),
    run: bool = True,
) -> list:
    """Launch ``main(rank, ctx, *args)`` once per placement entry.

    Returns the rank sim-processes; with ``run=True`` the simulation is
    executed and the list of per-rank return values is returned instead.
    """
    size = len(placements)
    if size < 1:
        raise MPIError("need at least one rank")
    sim = machine.sim
    contexts = [_context_for(machine, p, i) for i, p in enumerate(placements)]
    nodes = [_node_of(machine, p) for p in placements]
    listening = [sim.event(f"mpi-listen-{i}") for i in range(size)]

    def rank_body(i: int):
        ctx = contexts[i]
        rank = Rank(i, size, name=f"rank{i}@{ctx.label}")
        # 1. passive side: bind + listen, then announce readiness
        lep = yield from ctx.lib.open()
        yield from ctx.lib.bind(lep, MPI_BASE_PORT + i)
        yield from ctx.lib.listen(lep, backlog=size)
        listening[i].succeed()
        # 2. wait until every rank is listening (out-of-band in the model;
        #    a real launcher synchronizes this over its control channel)
        yield sim.all_of([ev for ev in listening])
        # 3. active side: connect to every lower rank, identify ourselves
        for j in range(i):
            ep = yield from ctx.lib.open()
            yield from ctx.lib.connect(ep, (nodes[j], MPI_BASE_PORT + j))
            yield from ctx.lib.send(ep, i.to_bytes(8, "big"))
            rank.peers[j] = RankEndpoint(ctx.lib, ep, j)
        # 4. accept from every higher rank
        for _ in range(size - 1 - i):
            ep, _peer = yield from ctx.lib.accept(lep)
            ident = yield from ctx.lib.recv(ep, 8)
            j = int.from_bytes(ident.tobytes(), "big")
            rank.peers[j] = RankEndpoint(ctx.lib, ep, j)
        yield from ctx.lib.close(lep)
        # 5. run the application
        result = yield from main(rank, ctx, *args)
        for peer in rank.peers.values():
            yield from ctx.lib.close(peer.ep)
        return result

    procs = [ctx.spawn(rank_body(i)) for i, ctx in enumerate(contexts)]
    if not run:
        return procs
    machine.run()
    missing = [i for i, p in enumerate(procs) if not p.triggered]
    if missing:
        raise DeadlockError(f"MPI ranks {missing} never finished")
    return [p.value for p in procs]
