"""micnativeloadex: launch a MIC executable on the card from the host/VM.

§II-B/§IV-C: "We use ... micnativeloadex ... to evaluate our framework in
native mode of execution. ... micnativeloadex's role is to properly setup
the environment, launch the necessary libraries and executables and spawn
the requested number of threads."  It reads the mic sysfs tree (which
vPHI mirrors into the guest) and drives the card's coi_daemon over SCIF —
so the identical tool code runs natively and inside a VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..coi import COIConnection
from .binaries import MICBinary

__all__ = ["LaunchResult", "micnativeloadex"]


class MicToolError(Exception):
    """Tool-level failure (bad card state, missing binary, ...)."""


@dataclass
class LaunchResult:
    """What the tool reports when the MIC process exits."""

    exit_record: dict
    #: end-to-end wall time: launch + transfer + execution + teardown
    total_time: float
    #: time spent shipping binaries over the PCIe bus
    transfer_time: float
    #: the card-side compute time reported by the process
    compute_time: float
    transferred_bytes: int

    @property
    def status(self) -> int:
        return self.exit_record.get("status", -1)


def micnativeloadex(
    machine,
    ctx,
    binary: MICBinary,
    argv: Sequence[str] = (),
    env: Optional[dict] = None,
    card: int = 0,
    sysfs=None,
):
    """Process: run ``binary`` on card ``card`` and wait for it.

    ``ctx`` is a :class:`~repro.workloads.microbench.ClientContext`
    (native or guest); ``sysfs`` defaults to the tree visible to that
    context (host sysfs natively, the vPHI-mirrored guest tree in a VM).
    Returns a :class:`LaunchResult`.
    """
    sim = machine.sim
    t_start = sim.now
    # 1. the tool checks the card through sysfs before doing anything
    if sysfs is None:
        kernel = ctx.process.kernel
        sysfs = getattr(kernel, "sysfs", machine.kernel.sysfs)
    base = f"sys/class/mic/mic{card}"
    state = sysfs.read(f"{base}/state")
    if state != "online":
        raise MicToolError(f"mic{card} is {state!r}, not online")
    family = sysfs.read(f"{base}/family")
    if family != "x100":
        raise MicToolError(f"unsupported card family {family!r}")
    # 2. connect to coi_daemon and ship executable + dependencies
    conn = COIConnection(ctx.lib, machine.card_node_id(card))
    yield from conn.connect()
    t_transfer0 = sim.now
    handle = yield from conn.process_create(binary, argv=argv, env=env)
    transfer_time = sim.now - t_transfer0
    # 3. wait for the process to exit and collect its record
    exit_record = yield from handle.wait()
    yield from conn.close()
    return LaunchResult(
        exit_record=exit_record,
        total_time=sim.now - t_start,
        transfer_time=transfer_time,
        compute_time=exit_record.get("compute_time", 0.0),
        transferred_bytes=binary.total_transfer_bytes,
    )
