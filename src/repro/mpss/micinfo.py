"""micinfo: print card inventory from the mic sysfs tree."""

from __future__ import annotations

__all__ = ["micinfo"]


def micinfo(sysfs, cards: int = 1) -> str:
    """Render the MPSS-style card report for ``cards`` devices."""
    lines = ["MicInfo Utility Log", "=" * 40]
    for i in range(cards):
        base = f"sys/class/mic/mic{i}"
        if not sysfs.exists(f"{base}/state"):
            continue
        lines += [
            f"Device No: {i}, Device Name: mic{i}",
            f"    Family          : {sysfs.read(f'{base}/family')}",
            f"    SKU             : {sysfs.read(f'{base}/version')}",
            f"    State           : {sysfs.read(f'{base}/state')}",
            f"    Total # of cores: {sysfs.read(f'{base}/cores_count')}",
            f"    Frequency (kHz) : {sysfs.read(f'{base}/cores_frequency')}",
            f"    GDDR size (KiB) : {sysfs.read(f'{base}/memsize')}",
        ]
    return "\n".join(lines)
