"""MIC binary model: executables + shared-object dependencies.

A :class:`MICBinary` stands in for a k1om ELF: it has a *size* (its bytes
really cross the PCIe link at launch, which is what Figs 6-8 amortize)
and an *entry point* — a generator run on the card's uOS once the loader
has "exec'ed" it.  ``register_binary`` adds entries to the global
registry the coi_daemon resolves names against.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["MICBinary", "SharedLibrary", "register_binary", "lookup_binary", "BINARIES"]

MB = 1 << 20


@dataclass(frozen=True)
class SharedLibrary:
    """A dependency transferred alongside the executable."""

    name: str
    size: int


@dataclass
class MICBinary:
    """One launchable MIC executable."""

    name: str
    size: int
    #: ``entry(uos, proc, argv, env) -> generator returning an exit dict``
    entry: Callable
    deps: tuple = ()

    @property
    def total_transfer_bytes(self) -> int:
        """Executable + every dependency (what micnativeloadex ships)."""
        return self.size + sum(d.size for d in self.deps)

    def content(self) -> np.ndarray:
        """Deterministic fake ELF bytes (checksummed by the loader)."""
        rng = np.random.default_rng(zlib.crc32(self.name.encode()))
        return rng.integers(0, 256, size=self.size, dtype=np.uint8)

    def checksum(self) -> int:
        return zlib.crc32(self.content().tobytes())


#: global registry (name -> binary), populated by workloads at import.
BINARIES: dict[str, MICBinary] = {}


def register_binary(binary: MICBinary) -> MICBinary:
    BINARIES[binary.name] = binary
    return binary


def lookup_binary(name: str) -> Optional[MICBinary]:
    return BINARIES.get(name)
