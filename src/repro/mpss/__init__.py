"""Intel MPSS tools: micnativeloadex, micinfo, the MIC binary model."""

from .binaries import BINARIES, MICBinary, SharedLibrary, lookup_binary, register_binary
from .micinfo import micinfo
from .micnativeloadex import LaunchResult, MicToolError, micnativeloadex

__all__ = [
    "BINARIES",
    "LaunchResult",
    "MICBinary",
    "MicToolError",
    "SharedLibrary",
    "lookup_binary",
    "micinfo",
    "micnativeloadex",
    "register_binary",
]
