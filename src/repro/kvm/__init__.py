"""QEMU-KVM model: VMs, memory slots, the event loop, the EPT fault hook."""

from .fault import KvmMmu, PfnPhiInfo
from .qemu import QemuProcess
from .vm import GuestKernel, VirtualMachine

__all__ = ["GuestKernel", "KvmMmu", "PfnPhiInfo", "QemuProcess", "VirtualMachine"]
