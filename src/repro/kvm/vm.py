"""The virtual machine: guest RAM, guest kernel, vCPUs, QEMU, memory slots.

The representation makes the paper's zero-copy claim structural: guest RAM
is *carved out of host RAM* (a nested :class:`~repro.mem.PhysicalMemory`),
so a guest-physical address is host-physical ``slot_base + gpa`` and the
QEMU backend touches guest buffers through plain SG entries — exactly like
the real backend, which "registers guest memory when the VM boots" and
maps buffers instead of copying (§III).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..mem import PhysExtent, PhysicalMemory, SGEntry
from ..oscore import Kernel, OSProcess
from ..sim import Domain, SimError, Simulator, Tracer
from .fault import KvmMmu
from .qemu import QemuProcess

__all__ = ["GuestKernel", "VirtualMachine"]

GB = 1 << 30


class GuestKernel(Kernel):
    """The guest's Linux: kmalloc and processes live in guest RAM."""

    def __init__(self, sim: Simulator, phys: PhysicalMemory, vm_name: str):
        super().__init__(sim, phys, name=f"guest-linux-{vm_name}")
        #: the vPHI frontend driver module, once insmod'ed.
        self.vphi_frontend = None
        #: guest sysfs; vPHI mirrors the host's mic tree here.
        from ..oscore import Sysfs

        self.sysfs = Sysfs()


class VirtualMachine:
    """One QEMU-KVM guest on the host."""

    def __init__(
        self,
        sim: Simulator,
        host_kernel,
        name: str = "vm0",
        ram_bytes: int = 2 * GB,
        vcpus: int = 1,
        costs: VPhiCosts = VPHI_COSTS,
        kvm_modified: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        if vcpus < 1:
            raise SimError("VM needs at least one vCPU")
        self.sim = sim
        self.name = name
        self.vcpus = vcpus
        self.costs = costs
        #: the VM's tracer: one shared timeline for everything this guest
        #: does (the vPHI frontend *and* backend both default to it, so
        #: per-VM breakdowns never split across two tracers).
        self.tracer = tracer or Tracer()
        self.tracer.bind_clock(lambda: sim.now)
        #: guest RAM is one memory slot carved from host RAM.
        self.ram = host_kernel.phys.carve(ram_bytes, name=f"{name}-ram")
        self.guest_kernel = GuestKernel(sim, self.ram, name)
        #: the freezable execution context of everything inside the guest.
        self.domain = Domain(sim, name=name)
        #: QEMU: one host process per VM (this is what enables sharing).
        self.qemu_process: OSProcess = host_kernel.create_process(f"qemu-{name}")
        self.qemu = QemuProcess(sim, self.qemu_process, self.domain, costs=costs)
        self.mmu = KvmMmu(name, modified=kvm_modified, tracer=self.tracer)
        self.host_kernel = host_kernel

    # ------------------------------------------------------------------
    # memory slots
    # ------------------------------------------------------------------
    @property
    def slot_base(self) -> int:
        """Host-physical address of guest-physical 0."""
        return self.ram.host_base

    def gpa_sg(self, gpa: int, nbytes: int) -> list[SGEntry]:
        """Resolve a guest-physical range to host memory (zero copy).

        The backend uses this for every buffer referenced from the virtio
        ring.  Bounds are checked against the slot.
        """
        if gpa < 0 or gpa + nbytes > self.ram.size:
            raise SimError(
                f"{self.name}: gpa [{gpa:#x},{gpa + nbytes:#x}) outside guest RAM"
            )
        return [SGEntry(self.ram, gpa, nbytes)]

    def extent_sg(self, ext: PhysExtent, nbytes: Optional[int] = None) -> list[SGEntry]:
        """SG for a guest kernel extent (kmalloc chunk) — guest physical."""
        if ext.mem is not self.ram:
            raise SimError("extent does not belong to this VM's RAM")
        return self.gpa_sg(ext.addr, ext.nbytes if nbytes is None else nbytes)

    # ------------------------------------------------------------------
    def guest_process(self, name: str) -> OSProcess:
        """Create a guest user process."""
        return self.guest_kernel.create_process(name)

    def spawn_guest(self, gen, name: str = "guest-proc"):
        """Spawn a sim process that executes *inside* the guest: it is
        frozen whenever QEMU handles a blocking event."""
        return self.sim.spawn(gen, name=f"{self.name}:{name}", domain=self.domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualMachine {self.name} ram={self.ram.size // GB}GB vcpus={self.vcpus}>"
