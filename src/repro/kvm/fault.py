"""The KVM EPT fault path — including the paper's <10-LOC modification.

§III (*Guest memory registration and MMIO*): after a guest ``scif_mmap``,
a guest-side load/store faults into the KVM module on the host.  Stock
KVM would interpret the faulting frame as ordinary guest RAM and resolve
to "an invalid memory area".  vPHI therefore tags the VMAs it creates
with ``VM_PFNPHI`` and stores the physical frame of the Xeon Phi region;
the modified fault handler spots the tag and installs a mapping to device
memory instead.

``KvmMmu(modified=False)`` reproduces the *unmodified* behaviour so the
failure mode the paper describes is testable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim import Tracer
from ..mem import (
    AddressSpace,
    BadAddress,
    PAGE_SIZE,
    PageFault,
    SGEntry,
    VMA,
    VMAFlag,
    page_align_down,
)

__all__ = ["KvmMmu", "PfnPhiInfo"]


class PfnPhiInfo:
    """The driver-private record stashed on a VM_PFNPHI VMA: where in Xeon
    Phi memory each page of the mapping lives (the 'stored frame number')."""

    __slots__ = ("runs",)

    def __init__(self, runs: Sequence[SGEntry]):
        self.runs = list(runs)

    def locate(self, rel: int) -> tuple:
        """(memory, paddr) for byte offset ``rel`` into the mapping."""
        pos = 0
        for run in self.runs:
            if pos <= rel < pos + run.nbytes:
                return run.mem, run.paddr + (rel - pos)
            pos += run.nbytes
        raise BadAddress(f"PFNPHI offset {rel:#x} beyond mapped window")


class KvmMmu:
    """The host-side second-level fault handler for one VM.

    Fault counts are kept on the per-VM tracer (``kvm.fault.pfnphi`` /
    ``kvm.fault.regular``) and each PFNPHI resolution is emitted into the
    same ``vphi.timeline`` category the SCIF ops use, so EPT faults and
    the mmap traffic that causes them appear interleaved in one timeline.
    """

    def __init__(self, vm_name: str, modified: bool = True,
                 tracer: Optional[Tracer] = None):
        self.vm_name = vm_name
        #: whether the paper's <10-LOC patch is applied.
        self.modified = modified
        self.tracer = tracer or Tracer()

    @property
    def pfnphi_faults(self) -> int:
        """EPT faults resolved through the VM_PFNPHI patch."""
        return self.tracer.counters["kvm.fault.pfnphi"]

    @property
    def regular_faults(self) -> int:
        """EPT faults on untagged VMAs (always unresolvable here)."""
        return self.tracer.counters["kvm.fault.regular"]

    def handle_fault(self, space: AddressSpace, vma: VMA, page_vaddr: int):
        """Resolve one guest fault.  Installed as the VMA fault handler for
        vPHI device mappings; returns ``(memory, paddr)`` for the page."""
        if vma.flags & VMAFlag.PFNPHI:
            if not self.modified:
                # Stock KVM: the address is interpreted against host memory
                # and lands nowhere valid.
                raise PageFault(
                    page_vaddr,
                    f"kvm[{self.vm_name}]: EPT fault on PFNPHI vma "
                    f"{vma.name!r} but the host kvm module is unmodified "
                    "(the paper's <10-LOC patch is required)",
                )
            info = vma.private
            if not isinstance(info, PfnPhiInfo):
                raise PageFault(page_vaddr, "PFNPHI vma without stored frame info")
            self.tracer.count("kvm.fault.pfnphi")
            rel = page_align_down(page_vaddr) - vma.start
            mem, paddr = info.locate(rel)
            if paddr % PAGE_SIZE:
                raise PageFault(page_vaddr, "PFNPHI mapping not page aligned")
            self.tracer.emit("vphi.timeline", "EPT fault resolved to Phi memory",
                             vma=vma.name, page=page_align_down(page_vaddr))
            return mem, paddr
        self.tracer.count("kvm.fault.regular")
        raise PageFault(page_vaddr, f"kvm[{self.vm_name}]: unhandled EPT fault")

    def zap_vma(self, space: AddressSpace, vma: VMA) -> int:
        """Drop every installed translation for ``vma``.

        After a card reset the frame numbers stashed on a PFNPHI VMA are
        stale — the windows were rebuilt and may live elsewhere on the
        card.  Session recovery swaps ``vma.private`` for the fresh
        :class:`PfnPhiInfo` and zaps the old EPT entries; the next guest
        access faults back into :meth:`handle_fault` and resolves against
        the new frames.  Returns the number of pages zapped.
        """
        zapped = 0
        for vaddr in range(vma.start, vma.end, PAGE_SIZE):
            if space.is_present(vaddr):
                space.unmap_page(vaddr)
                zapped += 1
        self.tracer.count("kvm.zap.vma")
        self.tracer.count("kvm.zap.pages", zapped)
        self.tracer.emit("vphi.timeline", "EPT entries zapped for rebuilt mapping",
                         vma=vma.name, pages=zapped)
        return zapped
