"""The QEMU process model: event-driven core + worker threads.

§III (*Blocking vs non-blocking mode*): "QEMU handles events as they are
produced and during that time the whole VM is in blocking mode.  Any
previously running entity inside the guest pauses. ... In a few cases ...
QEMU ... spawns a worker thread that executes the long-running handling
of the event, and falls back to the event-driven mode unfreezing the VM."

Here: a blocking event pauses the VM's execution :class:`~repro.sim.Domain`
for the handler's full duration; a non-blocking event charges the worker
spawn/teardown costs but leaves the guest running.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..analysis.calibration import VPHI_COSTS, VPhiCosts
from ..oscore import OSProcess
from ..sim import Channel, ChannelClosed, Domain, Simulator

__all__ = ["QemuProcess"]


class QemuProcess:
    """One VM's QEMU: a host process running an event loop."""

    def __init__(
        self,
        sim: Simulator,
        host_process: OSProcess,
        guest_domain: Domain,
        costs: VPhiCosts = VPHI_COSTS,
    ):
        self.sim = sim
        self.host_process = host_process
        self.guest_domain = guest_domain
        self.costs = costs
        self._events: Channel = Channel(sim, name=f"{host_process.name}-events")
        self._loop = sim.spawn(self._event_loop(), name=f"{host_process.name}-loop")
        #: metrics
        self.blocking_events = 0
        self.worker_events = 0
        self.workers_live = 0
        self.workers_peak = 0

    # ------------------------------------------------------------------
    def post_event(self, handler: Callable[[], Generator], blocking: bool = True) -> None:
        """Queue an event for the loop.  ``handler`` is a generator factory
        executed either inline (blocking: VM frozen) or on a worker."""
        self._events.try_put((handler, blocking))

    def shutdown(self) -> None:
        self._events.close()

    # ------------------------------------------------------------------
    def _event_loop(self):
        while True:
            try:
                handler, blocking = yield self._events.get()
            except ChannelClosed:
                return
            if blocking:
                # Event-driven mode: the guest freezes for the handler's
                # entire duration.
                self.blocking_events += 1
                self.guest_domain.pause()
                try:
                    yield from handler()
                finally:
                    self.guest_domain.resume()
            else:
                # Threading mode: pay thread creation, run concurrently,
                # pay teardown; the loop (and the guest) keep going.
                self.worker_events += 1
                yield self.sim.timeout(self.costs.worker_spawn)
                self.workers_live += 1
                self.workers_peak = max(self.workers_peak, self.workers_live)
                self.sim.spawn(
                    self._worker(handler), name=f"{self.host_process.name}-worker"
                )

    def _worker(self, handler: Callable[[], Generator]):
        try:
            yield from handler()
        finally:
            self.workers_live -= 1
        yield self.sim.timeout(self.costs.worker_teardown)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QemuProcess {self.host_process.name!r} blocking={self.blocking_events} "
            f"workers={self.worker_events}>"
        )
