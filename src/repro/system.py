"""The physical machine: host + Xeon Phi cards + SCIF fabric, pre-wired.

:class:`Machine` reproduces the paper's testbed in one call::

    from repro import Machine

    m = Machine(cards=1)          # Xeon E5-2695v2 host + one 3120P
    m.boot()                      # boot uOS, load drivers, publish sysfs

    proc = m.host_process("client")
    lib = m.scif(proc)            # libscif for that process
    # ... yield from lib.connect(...) inside a sim process

Everything below (VMs, vPHI, COI, the tools) builds on this object.
"""

from __future__ import annotations

from typing import Optional

from .analysis.calibration import HOST, HostParams
from .faults import FaultInjector, FaultPlan
from .host import HostKernel
from .mem import PhysicalMemory
from .oscore import OSProcess
from .phi import XeonPhiDevice
from .scif import NativeScif, ScifFabric
from .sim import SimError, Simulator, Tracer

__all__ = ["Machine"]


class Machine:
    """One physical server with coprocessors, matching §IV-A by default."""

    def __init__(
        self,
        cards: int = 1,
        card_model: str = "3120P",
        host_params: HostParams = HOST,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional[FaultPlan] = None,
        power_model: str = "none",
        power_config=None,
    ):
        if cards < 0:
            raise ValueError("cards must be >= 0")
        self.sim = sim or Simulator()
        self.tracer = tracer or Tracer()
        self.tracer.bind_clock(lambda: self.sim.now)
        self.host_params = host_params
        self.ram = PhysicalMemory(host_params.ram_bytes, name="host-ram")
        self.kernel = HostKernel(self.sim, self.ram)
        #: the card power model in force (``"none"`` keeps every series
        #: byte-identical to the pre-power era; ``"knc"`` opts in).
        self.power_model = power_model
        self.devices = [
            XeonPhiDevice(self.sim, card_model, index=i,
                          power_model=power_model, power_config=power_config)
            for i in range(cards)
        ]
        self.fabric = ScifFabric(self.sim, tracer=self.tracer)
        #: deterministic fault source shared by every injection site on
        #: this machine (PCIe links, host chardev, per-VM vPHI devices).
        self.faults = FaultInjector(fault_plan, self.sim, self.tracer)
        for dev in self.devices:
            self.faults.attach_link(dev.link)
            if dev.power is not None:
                dev.power.tracer = self.tracer
        #: per-card dispatch arbiters, created lazily by
        #: :meth:`arbiter_for` (card 0's doubles as the legacy
        #: ``vphi_arbiter`` attribute).
        self.card_arbiters: dict = {}
        self._booted = False

    # ------------------------------------------------------------------
    def boot_process(self):
        """Process: boot every card, attach the fabric, publish sysfs."""
        self.kernel.attach_scif(self.fabric)
        if self.kernel.scif_dev is not None:
            self.kernel.scif_dev.faults = self.faults
        for dev in self.devices:
            yield from dev.boot()
            self.fabric.attach_device(dev)
            self.kernel.publish_mic_sysfs(dev)
        self._booted = True
        return self

    def boot(self) -> "Machine":
        """Synchronous convenience: run the simulator through boot."""
        proc = self.sim.spawn(self.boot_process(), name="machine-boot")
        self.sim.run()
        if not proc.triggered:
            raise SimError("machine boot did not complete")
        return self

    @property
    def booted(self) -> bool:
        return self._booted

    # ------------------------------------------------------------------
    def create_vm(
        self,
        name: str = "vm0",
        ram_bytes: int = 2 << 30,
        vcpus: int = 1,
        vphi_config=None,
        kvm_modified: bool = True,
        card: int = 0,
        arbiter_policy=None,
    ):
        """Spawn a QEMU-KVM guest with vPHI installed.

        Returns the :class:`~repro.kvm.VirtualMachine`; its ``vphi``
        attribute is the installed :class:`~repro.vphi.VPhiInstance`
        (``vm.vphi.libscif(guest_process)`` gives the guest's libscif).
        ``card`` picks which of this machine's cards the VM's pooled
        dispatch arbitrates against (card sharing is per card, not per
        machine).
        """
        from .kvm import VirtualMachine
        from .vphi import install_vphi

        if not self._booted:
            raise SimError("boot() the machine before creating VMs")
        vm = VirtualMachine(
            self.sim, self.kernel, name=name, ram_bytes=ram_bytes,
            vcpus=vcpus, kvm_modified=kvm_modified,
        )
        install_vphi(self, vm, config=vphi_config, card=card,
                     arbiter_policy=arbiter_policy)
        return vm

    def arbiter_for(self, card: int = 0, slots=None, policy=None):
        """The dispatch arbiter for one card, created on first use.

        Card 0's arbiter is also published as ``machine.vphi_arbiter``
        — the legacy machine-wide attribute from the one-card era — and
        a pre-existing ``vphi_arbiter`` (the traffic harness pre-creates
        one with plan-specific slots/policy) is adopted as card 0's, so
        both spellings always name the same object.
        """
        from .vphi.pool import CardArbiter

        arb = self.card_arbiters.get(card)
        if arb is None and card == 0:
            arb = getattr(self, "vphi_arbiter", None)
            if arb is not None:
                self.card_arbiters[0] = arb
        if arb is None:
            arb = CardArbiter(
                self.sim,
                slots=slots if slots is not None else self.host_params.cores,
                name=f"vphi-arbiter-c{card}",
            )
            self.card_arbiters[card] = arb
            if card == 0:
                self.vphi_arbiter = arb
        if policy is not None:
            arb.set_policy(policy)
        return arb

    def pepc(self, vms: Optional[dict] = None):
        """The pepc-style power control plane over this machine's cards.

        ``vms`` optionally maps VM names to their
        :class:`~repro.kvm.VirtualMachine` so VM-scoped operations
        resolve (a VM's scope is the card its vPHI dispatch targets).
        """
        from .phi.pepc import PowerControl

        return PowerControl([self], vms=vms)

    def host_process(self, name: str) -> OSProcess:
        """Create a host user process."""
        return self.kernel.create_process(name)

    def card_process(self, name: str, card: int = 0) -> OSProcess:
        """Create a process running on a card's uOS."""
        uos = self._uos(card)
        return uos.create_process(name)

    def scif(self, process: OSProcess) -> NativeScif:
        """libscif bound to a process (host or card — SCIF is symmetric)."""
        kernel = process.kernel
        if kernel is self.kernel:
            node = self.kernel.scif_node
        else:
            node = getattr(kernel, "scif_node", None)
        if node is None:
            raise SimError(f"no SCIF node for process {process.name!r}; boot() first")
        return NativeScif(self.fabric, node, process, host_params=self.host_params)

    def card_node_id(self, card: int = 0) -> int:
        dev = self.devices[card]
        if dev.node_id is None:
            raise SimError(f"{dev.name} not attached; boot() first")
        return dev.node_id

    def _uos(self, card: int):
        dev = self.devices[card]
        if dev.uos is None:
            raise SimError(f"{dev.name} not booted")
        return dev.uos

    def uos(self, card: int = 0):
        return self._uos(card)

    def reboot_card(self, card: int = 0):
        """Process: hard-reset + reboot one card, reattaching its SCIF node.

        Established connections die (peers see resets); after the reboot
        the same node id serves fresh connections — the recovery story a
        shared-accelerator deployment needs.
        """
        dev = self.devices[card]
        node_id = dev.node_id
        yield from dev.reset(self.fabric)
        yield from dev.boot()
        if node_id is not None:
            node = self.fabric.node(node_id)
            node.kernel = dev.uos
            dev.uos.scif_node = node
            dev.node_id = node_id
        return dev

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Machine cards={len(self.devices)} booted={self._booted}>"
