"""Deterministic discrete-event simulation kernel.

The substrate every simulated component (card, PCIe, SCIF, virtio, QEMU/KVM,
vPHI) executes on.  See :mod:`repro.sim.core` for the execution model.
"""

from .calendar import CalendarQueue
from .core import (
    MS,
    SECOND,
    US,
    AllOf,
    AnyOf,
    Domain,
    Event,
    Process,
    Simulator,
    Timeout,
    ms,
    us,
)
from .errors import DeadlockError, Interrupted, Killed, SimError
from .primitives import (
    Channel,
    ChannelClosed,
    Mutex,
    Resource,
    Semaphore,
    WaitQueue,
    run_with,
)
from .trace import LatencyStat, Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Channel",
    "ChannelClosed",
    "DeadlockError",
    "Domain",
    "Event",
    "Interrupted",
    "Killed",
    "LatencyStat",
    "MS",
    "Mutex",
    "Process",
    "Resource",
    "SECOND",
    "Semaphore",
    "SimError",
    "Simulator",
    "Span",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "US",
    "WaitQueue",
    "ms",
    "run_with",
    "us",
]
