"""Lightweight structured tracing and metric collection.

Every layer of the stack emits trace records (``tracer.emit(...)``) and
bumps counters; the benchmark harness reads them back to build the paper's
breakdown analyses (e.g. the §IV-B attribution of 93 % of the latency
overhead to the frontend wait scheme).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer", "LatencyStat"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: simulated time, category, message, and fields."""

    time: float
    category: str
    message: str
    fields: tuple[tuple[str, Any], ...] = ()

    def field(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default


class LatencyStat:
    """Streaming min/max/mean/count accumulator for one named quantity."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LatencyStat {self.name} n={self.count} mean={self.mean:.3g} "
            f"min={self.min:.3g} max={self.max:.3g}>"
        )


class Tracer:
    """Collects trace records, counters and time accumulators.

    Recording full records is opt-in per category (``enable``) so hot paths
    stay cheap; counters and accumulators are always on.
    """

    def __init__(self, record_all: bool = False):
        self.records: list[TraceRecord] = []
        self.counters: Counter[str] = Counter()
        self.accumulators: defaultdict[str, float] = defaultdict(float)
        self.stats: dict[str, LatencyStat] = {}
        self._enabled: set[str] = set()
        self._record_all = record_all
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator's ``now`` so records carry simulated time."""
        self._clock = clock

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def emit(self, category: str, message: str, **fields: Any) -> None:
        self.counters[category] += 1
        if self._record_all or category in self._enabled:
            self.records.append(
                TraceRecord(self._clock(), category, message, tuple(fields.items()))
            )

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    def accumulate(self, key: str, amount: float) -> None:
        """Add simulated seconds (or bytes, …) to a named bucket.

        The latency-breakdown benches sum per-phase buckets from here.
        """
        self.accumulators[key] += amount

    def observe(self, key: str, value: float) -> None:
        stat = self.stats.get(key)
        if stat is None:
            stat = self.stats[key] = LatencyStat(key)
        stat.add(value)

    def find(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.accumulators.clear()
        self.stats.clear()

    def summary(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump used by example scripts."""
        lines = ["counters:"]
        keys = sorted(categories) if categories else sorted(self.counters)
        for key in keys:
            lines.append(f"  {key}: {self.counters[key]}")
        if self.accumulators:
            lines.append("accumulators:")
            for key in sorted(self.accumulators):
                lines.append(f"  {key}: {self.accumulators[key]:.6g}")
        return "\n".join(lines)
