"""Lightweight structured tracing and metric collection.

Every layer of the stack emits trace records (``tracer.emit(...)``) and
bumps counters; the benchmark harness reads them back to build the paper's
breakdown analyses (e.g. the §IV-B attribution of 93 % of the latency
overhead to the frontend wait scheme).

Three tiers of detail, cheapest first:

* **counters / accumulators / stats** — always on.  :class:`LatencyStat`
  keeps a sparse geometric histogram alongside min/mean/max, so p50/p95/
  p99 come for free wherever a latency was observed.
* **records** — opt-in per category (``enable``) or wholesale
  (``record_all``), stored in a capped ring buffer so a long chaos run
  cannot grow memory without bound (drops are counted under
  ``vphi.trace.dropped_records``).
* **spans** — one :class:`Span` per request lifecycle, stamped with
  phase timestamps by every layer it crosses (frontend, ring, backend,
  pool, host).  Phase durations telescope — consecutive timestamp
  differences — so they sum to the span's end-to-end latency *exactly*.
  Completed spans export as Chrome trace-event JSON
  (:meth:`Tracer.export_chrome_trace`) loadable in ``chrome://tracing``
  or Perfetto.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .errors import SimError

__all__ = [
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_MAX_SPANS",
    "DROPPED_RECORDS_KEY",
    "DROPPED_SPANS_KEY",
    "LatencyStat",
    "Span",
    "TraceRecord",
    "Tracer",
]

#: generous default caps: a full Fig 4/5 run stays far below these, while
#: an unbounded chaos-soak run tops out instead of eating the heap.
DEFAULT_MAX_RECORDS = 65536
DEFAULT_MAX_SPANS = 65536
#: counter bumped once per record/span dropped on ring-buffer overflow.
DROPPED_RECORDS_KEY = "vphi.trace.dropped_records"
DROPPED_SPANS_KEY = "vphi.trace.dropped_spans"


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: simulated time, category, message, and fields."""

    time: float
    category: str
    message: str
    fields: tuple[tuple[str, Any], ...] = ()

    def field(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default


#: histogram resolution: geometric buckets, 10 per decade (each bucket
#: spans a ~26 % relative range — plenty for latency percentiles).
BUCKETS_PER_DECADE = 10


class LatencyStat:
    """Streaming accumulator for one named quantity.

    Tracks count/total/min/max plus a sparse geometric histogram, so
    :meth:`percentile` (and the ``p50``/``p95``/``p99`` shorthands) are
    available wherever a bare mean used to be.  Non-positive values
    (zero-duration observations) land in a dedicated underflow bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "zeros", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.zeros = 0
        #: sparse histogram: bucket index -> observation count, where
        #: bucket ``i`` covers ``[10^(i/N), 10^((i+1)/N))``.
        self.buckets: dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.zeros += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bounds(idx: int) -> tuple[float, float]:
        """The ``[lo, hi)`` value range bucket ``idx`` covers."""
        return (10 ** (idx / BUCKETS_PER_DECADE),
                10 ** ((idx + 1) / BUCKETS_PER_DECADE))

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100) from the histogram.

        Nearest-rank over the bucket counts, linearly interpolated inside
        the winning bucket and clamped to the exact observed min/max.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q / 100.0 * self.count))
        cum = self.zeros
        if cum >= target:
            return min(0.0, self.max) if self.min <= 0 else self.min
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if cum + n >= target:
                lo, hi = self.bucket_bounds(idx)
                frac = (target - cum) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cum += n
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            # never leak min=inf / max=-inf from the empty state
            return f"<LatencyStat {self.name} n=0 mean=- min=- max=->"
        return (
            f"<LatencyStat {self.name} n={self.count} mean={self.mean:.3g} "
            f"min={self.min:.3g} max={self.max:.3g} p50={self.p50:.3g} "
            f"p99={self.p99:.3g}>"
        )


class Span:
    """One request's lifecycle: a start time plus phase timestamps.

    Each :meth:`mark` records "phase *ended* now"; a phase's duration is
    the gap back to the previous mark (or the start).  Durations
    therefore telescope — they sum to ``end - start`` exactly, with no
    float drift and no gaps — which is the invariant the span test suite
    holds the whole stack to.

    A span survives tag renewal (frontend retries re-post under a fresh
    tag): ``tags`` accumulates every correlation id the request was
    posted under, and the tracer's active-span table maps each of them
    back here until the span ends.
    """

    __slots__ = ("op", "vm", "start", "marks", "status", "tags")

    def __init__(self, op: str, start: float, vm: str = ""):
        self.op = op
        self.vm = vm
        self.start = start
        #: ``(phase, end_time)`` in mark order; times are monotone.
        self.marks: list[tuple[str, float]] = []
        #: None while open; "ok"/"error"/"timeout"/"stale"/... once ended.
        self.status: Optional[str] = None
        #: every tag this request was posted under (retries append).
        self.tags: list[int] = []

    @property
    def tag(self) -> Optional[int]:
        """The most recent correlation id (None before first posting)."""
        return self.tags[-1] if self.tags else None

    @property
    def closed(self) -> bool:
        return self.status is not None

    @property
    def end(self) -> float:
        return self.marks[-1][1] if self.marks else self.start

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    def mark(self, phase: str, time: float) -> None:
        """Stamp "``phase`` ended at ``time``"; times must be monotone."""
        if time < self.end:
            raise SimError(
                f"span {self.op} tag={self.tag}: mark {phase!r} at {time:g} "
                f"precedes previous mark at {self.end:g}"
            )
        self.marks.append((phase, time))

    def phase_durations(self) -> dict[str, float]:
        """Seconds spent per phase (repeated phases accumulate); the
        values sum to :attr:`elapsed` exactly by construction."""
        out: dict[str, float] = {}
        prev = self.start
        for phase, t in self.marks:
            out[phase] = out.get(phase, 0.0) + (t - prev)
            prev = t
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.status or "open"
        return (
            f"<Span {self.op} tag={self.tag} {state} "
            f"phases={len(self.marks)} elapsed={self.elapsed:.3g}>"
        )


class Tracer:
    """Collects trace records, counters, accumulators and request spans.

    Recording full records is opt-in per category (``enable``) so hot
    paths stay cheap; counters and accumulators are always on; spans are
    on by default (``record_spans=False`` turns the whole span layer into
    no-ops for overhead-sensitive soaks).
    """

    def __init__(
        self,
        record_all: bool = False,
        max_records: Optional[int] = DEFAULT_MAX_RECORDS,
        max_spans: Optional[int] = DEFAULT_MAX_SPANS,
        record_spans: bool = True,
    ):
        #: capped ring buffer: overflow drops the oldest record and bumps
        #: :attr:`dropped_records` + ``vphi.trace.dropped_records``.
        self.records: deque[TraceRecord] = deque(maxlen=max_records)
        self.counters: Counter[str] = Counter()
        self.accumulators: defaultdict[str, float] = defaultdict(float)
        self.stats: dict[str, LatencyStat] = {}
        self._enabled: set[str] = set()
        self._record_all = record_all
        self._clock: Callable[[], float] = lambda: 0.0
        self.record_spans = record_spans
        #: live spans by correlation tag (retried requests map several
        #: tags to one span); a leak here is a bug the tests hunt.
        self.active_spans: dict[int, Span] = {}
        #: completed spans, oldest dropped past ``max_spans``.
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self.dropped_records = 0
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    # ring-buffer caps, hoisted: emit/end_span fire on every request, so
    # "is this ring capped and full" must be one comparison against a
    # precomputed cap — not a maxlen None-test per call.  A cap of -1
    # means unbounded (a length never equals it).  The buffers stay
    # plain attributes to callers; assigning a replacement deque (as the
    # soak tests do) recomputes the cap through the setter.
    # ------------------------------------------------------------------
    @property
    def records(self) -> deque:
        return self._records

    @records.setter
    def records(self, ring: deque) -> None:
        self._records = ring
        self._records_cap = -1 if ring.maxlen is None else ring.maxlen

    @property
    def spans(self) -> deque:
        return self._spans

    @spans.setter
    def spans(self, ring: deque) -> None:
        self._spans = ring
        self._spans_cap = -1 if ring.maxlen is None else ring.maxlen

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator's ``now`` so records carry simulated time."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def emit(self, category: str, message: str, **fields: Any) -> None:
        self.counters[category] += 1
        if self._record_all or category in self._enabled:
            records = self._records
            if len(records) == self._records_cap:
                self.dropped_records += 1
                self.counters[DROPPED_RECORDS_KEY] += 1
            records.append(
                TraceRecord(self._clock(), category, message, tuple(fields.items()))
            )

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    def accumulate(self, key: str, amount: float) -> None:
        """Add simulated seconds (or bytes, …) to a named bucket.

        The latency-breakdown benches sum per-phase buckets from here.
        """
        self.accumulators[key] += amount

    def observe(self, key: str, value: float) -> None:
        stat = self.stats.get(key)
        if stat is None:
            stat = self.stats[key] = LatencyStat(key)
        stat.add(value)

    def find(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    # ------------------------------------------------------------------
    # request-lifecycle spans
    # ------------------------------------------------------------------
    def new_span(self, op: str, vm: str = "") -> Optional[Span]:
        """Open a span starting now (None when spans are disabled)."""
        if not self.record_spans:
            return None
        return Span(op, self._clock(), vm=vm)

    def bind_span(self, tag: int, span: Optional[Span]) -> None:
        """Register ``span`` under a correlation tag so layers that only
        see the wire tag (backend, pool) can stamp it."""
        if span is None:
            return
        span.tags.append(tag)
        self.active_spans[tag] = span

    def unbind_span(self, tag: int) -> None:
        """Drop one tag's active-table entry (the span itself lives on)."""
        self.active_spans.pop(tag, None)

    def span_for(self, tag: int) -> Optional[Span]:
        return self.active_spans.get(tag)

    def mark(self, span: Optional[Span], phase: str) -> None:
        """Stamp "``phase`` ended now" on ``span`` (no-op on None or on
        an already-closed span — batch cleanup paths sweep both)."""
        if span is not None and not span.closed:
            span.mark(phase, self._clock())

    def mark_tag(self, tag: int, phase: str) -> None:
        """Stamp a phase on whatever span ``tag`` correlates to, if any."""
        span = self.active_spans.get(tag)
        if span is not None:
            span.mark(phase, self._clock())

    def end_span(self, span: Optional[Span], status: str = "ok") -> None:
        """Close ``span`` with ``status``; idempotent (the first close
        wins, so cleanup paths can end defensively)."""
        if span is None or span.closed:
            return
        span.status = status
        for tag in span.tags:
            if self.active_spans.get(tag) is span:
                del self.active_spans[tag]
        spans = self._spans
        if len(spans) == self._spans_cap:
            self.dropped_spans += 1
            self.counters[DROPPED_SPANS_KEY] += 1
        spans.append(span)

    # ------------------------------------------------------------------
    def export_chrome_trace(self, include_open: bool = False) -> dict:
        """The run as Chrome trace-event JSON (the ``chrome://tracing`` /
        Perfetto "JSON Object Format": a ``traceEvents`` list).

        Each span becomes one enclosing complete ("X") event plus one
        "X" event per phase segment; VMs map to pids (named via "M"
        metadata events) and correlation tags to tids, so one VM's
        requests stack as parallel timeline lanes.  Timestamps are
        microseconds of simulated time.
        """
        events: list[dict] = []
        pids: dict[str, int] = {}

        def pid_for(vm: str) -> int:
            pid = pids.get(vm)
            if pid is None:
                pid = pids[vm] = len(pids) + 1
                events.append({
                    "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": vm or "sim"},
                })
            return pid

        spans: list[Span] = list(self.spans)
        if include_open:
            seen = set()
            for span in self.active_spans.values():
                if id(span) not in seen:
                    seen.add(id(span))
                    spans.append(span)
        for span in spans:
            pid = pid_for(span.vm)
            tid = span.tag or 0
            events.append({
                "name": span.op, "cat": span.op, "ph": "X",
                "ts": span.start * 1e6, "dur": span.elapsed * 1e6,
                "pid": pid, "tid": tid,
                "args": {"status": span.status or "open",
                         "tags": list(span.tags)},
            })
            prev = span.start
            for phase, t in span.marks:
                events.append({
                    "name": phase, "cat": span.op, "ph": "X",
                    "ts": prev * 1e6, "dur": (t - prev) * 1e6,
                    "pid": pid, "tid": tid,
                    "args": {"op": span.op},
                })
                prev = t
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
        self.accumulators.clear()
        self.stats.clear()
        self.active_spans.clear()
        self.spans.clear()
        self.dropped_records = 0
        self.dropped_spans = 0

    def summary(self, categories: Optional[Iterable[str]] = None) -> str:
        """Human-readable dump used by example scripts.

        ``categories`` filters *both* sections: counters print exactly
        the requested keys, accumulators print only requested ones.
        """
        wanted = set(categories) if categories is not None else None
        lines = ["counters:"]
        keys = sorted(wanted) if wanted else sorted(self.counters)
        for key in keys:
            lines.append(f"  {key}: {self.counters[key]}")
        acc_keys = [k for k in sorted(self.accumulators)
                    if wanted is None or k in wanted]
        if acc_keys:
            lines.append("accumulators:")
            for key in acc_keys:
                lines.append(f"  {key}: {self.accumulators[key]:.6g}")
        return "\n".join(lines)
