r"""Discrete-event simulation kernel.

Everything in this reproduction — the Xeon Phi card, the PCIe link, the SCIF
transport, virtio rings, QEMU/KVM and vPHI itself — runs as coroutine
*processes* on top of this kernel.  A process is a plain Python generator
that ``yield``\ s *events*; the kernel resumes it when the event fires and
sends the event's value back as the result of the ``yield`` expression.

Design points (all load-bearing for the reproduction):

* **Deterministic.**  Ties in the event queue are broken by a monotonic
  sequence number, so two runs with the same seed produce identical
  schedules.  ``Date``-free: simulated time is a float in **seconds**
  starting at 0.0 (helpers :func:`us`/:func:`ms` convert).
* **Execution domains.**  A :class:`Domain` groups processes that share an
  execution context that can be frozen — the guest side of a VM while QEMU
  handles a blocking request pauses exactly this way (§III, *Blocking vs
  non-blocking mode*).  Resumptions of processes in a paused domain are
  deferred, not lost, and replay in order on resume.
* **Interrupts.**  ``process.interrupt(cause)`` models asynchronous signal
  delivery (used by poll timeouts and connection teardown).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .calendar import CalendarQueue
from .errors import Interrupted, Killed, SimError, StopProcess

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Domain",
    "Simulator",
    "AllOf",
    "AnyOf",
    "us",
    "ms",
    "SECOND",
    "US",
    "MS",
]

#: One simulated second (the base unit of simulated time).
SECOND = 1.0
#: One simulated millisecond.
MS = 1e-3
#: One simulated microsecond.
US = 1e-6


def us(x: float) -> float:
    """Convert microseconds to simulated seconds."""
    return x * US


def ms(x: float) -> float:
    """Convert milliseconds to simulated seconds."""
    return x * MS


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; exactly one of :meth:`succeed` or
    :meth:`fail` moves it to *triggered*.  The kernel then schedules it and,
    when its turn comes, *fires* it: every registered callback (usually a
    process resumption) runs with the event's value or exception.
    """

    __slots__ = ("sim", "_value", "_exc", "_triggered", "_fired", "callbacks",
                 "name", "_entry")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._fired = False
        self.callbacks: list[Callable[["Event"], None]] = []
        #: the queue entry holding this event's pending firing (set when
        #: scheduled, cleared on fire; a cancelled entry has a None thunk).
        self._entry: Optional[list] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() was called (the outcome is decided)."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once callbacks have run (waiters have been resumed)."""
        return self._fired

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError(f"event {self.name or self!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful; fire after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimError(f"event {self.name or self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes see ``exc`` raised."""
        if self._triggered:
            raise SimError(f"event {self.name or self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule_event(self, delay)
        return self

    # -- kernel internals ---------------------------------------------------
    def _fire(self) -> None:
        if self._fired:
            return
        self._fired = True
        self._entry = None
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._fired:
            # Late subscription to an already-fired event: deliver promptly
            # (next kernel step at the current time) instead of silently
            # dropping the waiter.
            self.sim._call_soon(lambda: cb(self))
        else:
            self.callbacks.append(cb)
            entry = self._entry
            if entry is not None and entry[2] is None:
                # the pending firing was cancelled when the last waiter
                # abandoned it — a new waiter revives it
                self.sim._revive(self, entry[0])

    def _discard_callback(self, cb: Callable[["Event"], None]) -> None:
        try:
            self.callbacks.remove(cb)
        except ValueError:
            pass
        if (not self.callbacks and isinstance(self, Timeout)
                and self._entry is not None and not self._fired):
            # a pure delay nobody waits on anymore: tombstone its queue
            # entry so interrupted sleepers don't pile up until they expire
            self.sim._queue.cancel(self._entry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = delay
        self.succeed(value, delay=delay)


class Domain:
    """A freezable execution context (e.g. the guest side of one VM).

    While paused, member processes are never resumed: resumptions are
    queued and replayed, in arrival order, when every pause is released.
    Pauses nest (``pause``/``resume`` act like a counting lock).
    """

    __slots__ = ("sim", "name", "_pause_depth", "_deferred", "paused_time", "_paused_at")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._pause_depth = 0
        self._deferred: list[Callable[[], None]] = []
        #: Total simulated seconds this domain has spent frozen (metric for
        #: the blocking-mode cost analysis).
        self.paused_time = 0.0
        self._paused_at = 0.0

    @property
    def paused(self) -> bool:
        return self._pause_depth > 0

    @property
    def paused_seconds(self) -> float:
        """Total frozen time so far, *including* any still-open pause.

        ``paused_time`` only accumulates when the last nested pause is
        released; windowed accounting (occupancy over a sub-interval)
        needs the open pause counted up to now, or a domain frozen
        across a window boundary is invisible to that window.
        """
        open_pause = (self.sim.now - self._paused_at) if self.paused else 0.0
        return self.paused_time + open_pause

    def pause(self) -> None:
        if self._pause_depth == 0:
            self._paused_at = self.sim.now
        self._pause_depth += 1

    def resume(self) -> None:
        if self._pause_depth == 0:
            raise SimError(f"domain {self.name!r} resume() without pause()")
        self._pause_depth -= 1
        if self._pause_depth == 0:
            self.paused_time += self.sim.now - self._paused_at
            deferred, self._deferred = self._deferred, []
            for thunk in deferred:
                self.sim._call_soon(thunk)

    def _defer(self, thunk: Callable[[], None]) -> None:
        self._deferred.append(thunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Domain {self.name!r} depth={self._pause_depth}>"


class Process(Event):
    """A coroutine process.  Also an event: it fires when the process ends,
    with the generator's return value (or its unhandled exception)."""

    __slots__ = ("gen", "domain", "_waiting_on", "_resume_cb", "_started", "_pending_throw")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        name: str = "",
        domain: Optional[Domain] = None,
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process body must be a generator (got {type(gen).__name__}); "
                "did you forget a 'yield'?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "proc"))
        self.gen = gen
        self.domain = domain
        self._waiting_on: Optional[Event] = None
        self._started = False
        #: exception queued for delivery at the next resumption (interrupt).
        self._pending_throw: Optional[BaseException] = None
        self._resume_cb = self._on_event  # stable bound method for discard
        sim._call_soon(self._start)

    # -- public API ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Deliver :class:`Interrupted` into the process at the current time.

        Harmless no-op if the process already ended.
        """
        if not self.alive:
            return
        self._pending_throw = Interrupted(cause)
        self._detach()
        self.sim._call_soon(self._step_deliver)

    def kill(self) -> None:
        """Forcibly terminate the process (it fires with ``Killed``)."""
        if not self.alive:
            return
        self._pending_throw = Killed(f"process {self.name!r} killed")
        self._detach()
        self.sim._call_soon(self._step_deliver)

    # -- kernel internals -----------------------------------------------------
    def _detach(self) -> None:
        if self._waiting_on is not None:
            self._waiting_on._discard_callback(self._resume_cb)
            self._waiting_on = None

    def _start(self) -> None:
        if self._started or self._triggered:
            return
        self._started = True
        self._step(None, None)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event._value, None)

    def _step_deliver(self) -> None:
        exc, self._pending_throw = self._pending_throw, None
        if exc is None or self._triggered:
            return
        self._step(None, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # Respect domain freeze: requeue the resumption for replay.
        if self.domain is not None and self.domain.paused:
            self.domain._defer(lambda: self._step(value, exc))
            return
        if self._pending_throw is not None and exc is None:
            exc, self._pending_throw = self._pending_throw, None
        self.sim._current = self
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except StopProcess:
            self._finish_err(Killed(f"process {self.name!r} killed"))
            return
        except Killed as kexc:
            self._finish_err(kexc)
            return
        except BaseException as err:
            self._finish_err(err)
            return
        finally:
            self.sim._current = None
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._finish_err(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes may "
                    "only yield Event instances (Timeout, Process, ...)"
                )
            )
            return
        if target.sim is not self.sim:
            self._finish_err(SimError("yielded event belongs to a different Simulator"))
            return
        self._waiting_on = target
        target._add_callback(self._resume_cb)

    def _finish_ok(self, value: Any) -> None:
        self.gen.close()
        if not self._triggered:
            self.succeed(value)

    def _finish_err(self, exc: BaseException) -> None:
        self.gen.close()
        if not self._triggered:
            # A process dying with an exception fails its join-event.  If
            # nobody ever joins it, the simulator surfaces the error at the
            # end of run() so failures cannot vanish silently.
            self.sim._note_crash(self, exc)
            self.fail(exc)

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        # Registering a waiter on a process means its outcome is observed;
        # the waiter owns any exception, so run() will not re-raise it.
        self.sim._observed_crash_events.add(id(self))
        super()._add_callback(cb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._triggered else ("running" if self._started else "new")
        return f"<Process {self.name!r} {state}>"


class AllOf(Event):
    """Succeeds when all child events have fired; value is the list of their
    values (in the given order).  Fails fast on the first child failure."""

    __slots__ = ("_remaining", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        events = list(events)
        self._values: list[Any] = [None] * len(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev._add_callback(self._make_cb(i))

    def _make_cb(self, i: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._triggered:
                return
            if ev._exc is not None:
                self.fail(ev._exc)
                return
            self._values[i] = ev._value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._values))

        return cb


class AnyOf(Event):
    """Succeeds when the first child fires; value is ``(index, value)``."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(events):
            ev._add_callback(self._make_cb(i))

    def _make_cb(self, i: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if self._triggered:
                return
            if ev._exc is not None:
                self.fail(ev._exc)
            else:
                self.succeed((i, ev._value))

        return cb


class Simulator:
    """The event loop: a time-ordered queue of pending event firings.

    ``run(until=None)`` executes until the queue drains (or simulated time
    reaches ``until``).  All times are simulated seconds.
    """

    def __init__(self, trace: Optional["object"] = None):
        self.now: float = 0.0
        self._queue = CalendarQueue()
        self._current: Optional[Process] = None
        self._crashes: list[tuple[Process, BaseException]] = []
        self._observed_crash_events: set[int] = set()
        self.trace = trace

    # -- factory helpers ------------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "",
        domain: Optional[Domain] = None,
    ) -> Process:
        return Process(self, gen, name=name, domain=domain)

    def domain(self, name: str = "") -> Domain:
        return Domain(self, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float) -> None:
        event._entry = self._queue.push(self.now + delay, event._fire, self.now)

    def _call_soon(self, thunk: Callable[[], None]) -> None:
        self._queue.push(self.now, thunk, self.now)

    def call_at(self, when: float, thunk: Callable[[], None]) -> None:
        """Run a plain callback at absolute simulated time ``when``."""
        if when < self.now:
            raise SimError(f"call_at({when}) is in the past (now={self.now})")
        self._queue.push(when, thunk, self.now)

    def _revive(self, event: Event, when: float) -> None:
        """Re-queue a cancelled-but-revived event firing (see
        ``Event._add_callback``); past-due firings deliver promptly."""
        event._entry = self._queue.push(max(when, self.now), event._fire, self.now)

    # -- crash bookkeeping ------------------------------------------------
    def _note_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    # -- main loop ----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``now`` would pass ``until``.

        Returns the final simulated time.  Raises the first unhandled
        process exception once the loop stops, so silent failures are
        impossible.
        """
        queue = self._queue
        pop = queue.pop
        while True:
            entry = pop(until)
            if entry is None:
                if until is not None and until > self.now:
                    # stopped on the horizon (or drained short of it)
                    self.now = until
                break
            when = entry[0]
            if when > self.now:
                self.now = when
            entry[2]()
        self.raise_pending_crash()
        return self.now

    def step(self) -> bool:
        """Execute a single queued firing.  Returns False if queue empty."""
        entry = self._queue.pop()
        if entry is None:
            return False
        when = entry[0]
        if when > self.now:
            self.now = when
        entry[2]()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next queued firing, or None if the queue is empty."""
        return self._queue.peek()

    def raise_pending_crash(self) -> None:
        """Re-raise the first process crash that no other process observed."""
        for proc, exc in self._crashes:
            if id(proc) in self._observed_crash_events:
                continue
            self._observed_crash_events.add(id(proc))
            raise SimError(f"process {proc.name!r} died: {exc!r}") from exc
