"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class Interrupted(SimError):
    """Raised inside a process that was interrupted by another process.

    ``cause`` carries the object passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupted(cause={self.cause!r})"


class Killed(SimError):
    """Raised inside a process that was forcibly killed."""


class DeadlockError(SimError):
    """A process the caller was waiting for never finished: the event
    queue drained (or the deadline passed) while it was still blocked.
    Raised by :func:`repro.sim.run_with` and the MPI launcher."""


class StopProcess(Exception):
    """Internal: thrown to unwind a generator on kill.  Not a SimError so
    that user ``except SimError`` blocks do not swallow it."""
