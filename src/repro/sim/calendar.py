"""Calendar-queue scheduler for the DES kernel.

The simulator's pending-firing queue was a single binary heap.  Two
observations about this workload make a calendar structure much faster:

* the overwhelmingly dominant schedule is *zero delay* — ring drains,
  process starts, event callbacks and deferred resumptions all land at
  the current instant, so they belong in a plain FIFO **lane**, not a
  priority structure;
* real timeouts cluster around the current time (device costs are
  microseconds), so a bucketed **wheel** over a short horizon gives
  near-O(1) insert/pop, with a plain heap holding the **far** tail
  beyond the horizon.

Ordering is *exactly* the heap's: every entry carries ``(when, seq)``
with a globally monotonic ``seq``, and :meth:`pop` always returns the
globally smallest ``(when, seq)`` across all three tiers — including
same-timestamp FIFO tie-breaks.  The property suite drives this queue
and a reference heap with identical random schedules and asserts the
firing orders are indistinguishable.

Entries are mutable ``[when, seq, thunk]`` records; cancellation nulls
the thunk (a lazy-delete tombstone) and the queue compacts itself when
tombstones outnumber live entries, so abandoned timeouts from
interrupted waiters cannot grow the queue without bound.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = ["CalendarQueue"]

#: entry layout: [when, seq, thunk-or-None]
Entry = list


class CalendarQueue:
    """Time-ordered queue of ``(when, seq, thunk)`` firings.

    Three tiers, popped in global ``(when, seq)`` order:

    * ``lane``  — FIFO deque of entries pushed at the current instant
      (``when <= now`` at push time); append/popleft, no comparisons.
    * ``wheel`` — ``nbuckets`` mini-heaps of width ``width`` seconds
      covering ``[base, base + nbuckets*width)``.
    * ``far``   — one heap for everything beyond the wheel horizon;
      refills the wheel whenever the nearer tiers drain.
    """

    __slots__ = ("_lane", "_buckets", "_far", "_nbuckets", "_width",
                 "_base", "_horizon", "_cur", "_wheel_count", "_seq",
                 "_live", "tombstones", "compactions",
                 "compact_threshold")

    def __init__(self, width: float = 4e-6, nbuckets: int = 256,
                 compact_threshold: int = 64):
        from collections import deque

        self._lane: deque = deque()
        self._nbuckets = nbuckets
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._far: list = []
        self._width = width
        self._base = 0.0
        self._horizon = nbuckets * width
        self._cur = 0
        self._wheel_count = 0
        self._seq = 0
        #: live (non-tombstone) entries across all tiers.
        self._live = 0
        #: current number of cancelled-but-unreaped entries.
        self.tombstones = 0
        #: total compaction passes (observability for the chaos suites).
        self.compactions = 0
        self.compact_threshold = compact_threshold

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    def push(self, when: float, thunk: Callable[[], None], now: float) -> Entry:
        """Insert a firing; returns the entry (for :meth:`cancel`)."""
        seq = self._seq
        self._seq = seq + 1
        entry: Entry = [when, seq, thunk]
        self._live += 1
        if when == now:
            # the same-tick fast lane: seq order *is* FIFO order here,
            # so appending keeps the global (when, seq) invariant
            self._lane.append(entry)
            return entry
        if when < self._base:
            # a peek()/pop(limit) against a far-future head rebased the
            # wheel past this time (e.g. run(until=...) parking on a
            # distant timeout, then new near-term work arriving).  If
            # the wheel is empty rewind it to ``when``; otherwise spill
            # to the far heap — _head() compares the far head against
            # every tier, so ordering stays global either way.
            if self._wheel_count == 0:
                self._rebase(when)
            else:
                heapq.heappush(self._far, entry)
                return entry
        if when < self._horizon:
            i = int((when - self._base) / self._width)
            if i >= self._nbuckets:  # float edge at the horizon boundary
                heapq.heappush(self._far, entry)
            else:
                heapq.heappush(self._buckets[i], entry)
                self._wheel_count += 1
                if i < self._cur:
                    # the cursor skipped this (then-empty) bucket while
                    # hunting a later head; rewind so the new earlier
                    # entry is found first
                    self._cur = i
        else:
            heapq.heappush(self._far, entry)
        return entry

    def cancel(self, entry: Entry) -> None:
        """Tombstone one entry (lazy delete); compacts when they pile up."""
        if entry[2] is None:
            return
        entry[2] = None
        self._live -= 1
        self.tombstones += 1
        if (self.tombstones > self.compact_threshold
                and self.tombstones > self._live):
            self.compact()

    def compact(self) -> None:
        """Drop every tombstone from every tier in one pass."""
        self.compactions += 1
        from collections import deque

        self._lane = deque(e for e in self._lane if e[2] is not None)
        count = 0
        for i, bucket in enumerate(self._buckets):
            if bucket:
                live = [e for e in bucket if e[2] is not None]
                if len(live) != len(bucket):
                    heapq.heapify(live)
                    self._buckets[i] = live
                count += len(self._buckets[i])
        self._wheel_count = count
        far = [e for e in self._far if e[2] is not None]
        if len(far) != len(self._far):
            heapq.heapify(far)
            self._far = far
        self.tombstones = 0

    # ------------------------------------------------------------------
    def _wheel_head(self) -> Optional[Entry]:
        """Smallest live wheel entry, purging dead heads; None if empty."""
        while self._wheel_count:
            bucket = self._buckets[self._cur]
            while bucket:
                head = bucket[0]
                if head[2] is None:
                    heapq.heappop(bucket)
                    self._wheel_count -= 1
                    self.tombstones -= 1
                    continue
                return head
            self._cur = (self._cur + 1) % self._nbuckets
        return None

    def _far_head(self) -> Optional[Entry]:
        far = self._far
        while far:
            head = far[0]
            if head[2] is None:
                heapq.heappop(far)
                self.tombstones -= 1
                continue
            return head
        return None

    def _lane_head(self) -> Optional[Entry]:
        lane = self._lane
        while lane:
            head = lane[0]
            if head[2] is None:
                lane.popleft()
                self.tombstones -= 1
                continue
            return head
        return None

    def _rebase(self, start: float) -> None:
        """Re-center the empty wheel at ``start`` and refill it from far."""
        self._base = start
        self._horizon = start + self._nbuckets * self._width
        self._cur = 0
        far = self._far
        while far:
            head = far[0]
            if head[2] is None:
                heapq.heappop(far)
                self.tombstones -= 1
                continue
            if head[0] >= self._horizon:
                break
            heapq.heappop(far)
            i = int((head[0] - self._base) / self._width)
            if i < 0:
                # a rewind rebase (push below base) can find far entries
                # even earlier than ``start``; bucket heaps keep them
                # ordered, so the front bucket is always safe
                i = 0
            elif i >= self._nbuckets:
                i = self._nbuckets - 1
            heapq.heappush(self._buckets[i], head)
            self._wheel_count += 1

    def _head(self) -> Optional[Entry]:
        """The globally smallest live entry (not removed).

        The far heap is compared against the other tiers unconditionally:
        after a rebase against a far-future head, a later push can land
        in the far heap with a time *below* ``_base`` (see :meth:`push`),
        so a non-empty wheel does not mean the wheel holds the minimum.
        """
        lane = self._lane_head()
        wheel = self._wheel_head()
        far = self._far_head()
        if wheel is None and far is not None and (
            lane is None
            or far[0] < lane[0]
            or (far[0] == lane[0] and far[1] < lane[1])
        ):
            # wheel drained and the far tail holds the global head:
            # pull it into a re-centered wheel
            self._rebase(far[0])
            wheel = self._wheel_head()
            far = self._far_head()
        best = lane
        if wheel is not None and (best is None
                                  or (wheel[0], wheel[1]) < (best[0], best[1])):
            best = wheel
        if far is not None and (best is None
                                or (far[0], far[1]) < (best[0], best[1])):
            best = far
        return best

    def peek(self) -> Optional[float]:
        """Time of the next live firing, or None if the queue is empty."""
        head = self._head()
        return None if head is None else head[0]

    def pop(self, limit: Optional[float] = None) -> Optional[Entry]:
        """Remove and return the next live entry; None if empty or if its
        time exceeds ``limit``."""
        head = self._head()
        if head is None or (limit is not None and head[0] > limit):
            return None
        if self._lane and self._lane[0] is head:
            self._lane.popleft()
        else:
            bucket = self._buckets[self._cur]
            if bucket and bucket[0] is head:
                heapq.heappop(bucket)
                self._wheel_count -= 1
            else:
                # head lives in the far heap: either the wheel is empty,
                # or the far heap holds sub-base entries after a rebase
                heapq.heappop(self._far)
        self._live -= 1
        return head
