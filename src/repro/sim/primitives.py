"""Synchronization primitives built on the DES kernel.

These mirror the kernel-side constructs the paper's stack is made of:
wait queues (the frontend driver's sleep/wake-all scheme), semaphores and
mutexes (driver serialization), bounded channels (message queues between
layers), and counted resources (DMA channels, CPU cores).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .core import Event, Simulator
from .errors import SimError

__all__ = ["WaitQueue", "Semaphore", "Mutex", "Channel", "Resource"]


class WaitQueue:
    """A Linux-style wait queue.

    Processes block with ``yield wq.wait()``; another process calls
    :meth:`wake_one` or :meth:`wake_all`.  ``wake_all`` is the exact
    mechanism §IV-B blames for 93 % of vPHI's latency overhead: *every*
    sleeper is woken, re-scheduled, and checks the shared ring to see
    whether the reply was for it.  ``per_waiter_cost`` lets callers charge
    that rescheduling cost per woken process.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: Deque[Event] = deque()
        #: total number of wakeups delivered (metric).
        self.wakeups = 0

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event that fires at the next wake targeting this waiter."""
        ev = self.sim.event(name=f"wq:{self.name}")
        self._waiters.append(ev)
        return ev

    def wake_one(self, value: Any = None, delay: float = 0.0) -> bool:
        """Wake the longest-waiting process.  Returns False if none waited."""
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed(value, delay=delay)
                self.wakeups += 1
                return True
        return False

    def wake_all(self, value: Any = None, per_waiter_cost: float = 0.0) -> int:
        """Wake every waiter; the *i*-th is delayed ``i * per_waiter_cost``.

        The staggering models the scheduler walking the wait queue and
        putting each task back on a runqueue one at a time.
        """
        n = 0
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed(value, delay=n * per_waiter_cost)
                self.wakeups += 1
                n += 1
        return n

    def cancel(self, ev: Event) -> None:
        """Withdraw a waiter (e.g. poll timeout fired first)."""
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass


class Semaphore:
    """Counting semaphore with FIFO fairness."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = ""):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Return an event that fires once the semaphore is held."""
        ev = self.sim.event(name=f"sem:{self.name}")
        if self._value > 0 and not self._waiters:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed()
                return
        self._value += 1

class Mutex(Semaphore):
    """Binary semaphore."""

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, value=1, name=name)

    def release(self) -> None:
        if self._value >= 1 and not self._waiters:
            raise SimError(f"mutex {self.name!r} released while not held")
        super().release()


class Channel:
    """Bounded FIFO channel between processes.

    ``put`` blocks when full (unless ``capacity`` is None); ``get`` blocks
    when empty.  Used for request queues between driver layers.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the channel: pending and future getters fail with
        :class:`ChannelClosed`; puts become errors."""
        self._closed = True
        while self._getters:
            ev = self._getters.popleft()
            if not ev.triggered:
                ev.fail(ChannelClosed(self.name))
        while self._putters:
            ev, _ = self._putters.popleft()
            if not ev.triggered:
                ev.fail(ChannelClosed(self.name))

    def put(self, item: Any) -> Event:
        ev = self.sim.event(name=f"chan-put:{self.name}")
        if self._closed:
            ev.fail(ChannelClosed(self.name))
            return ev
        # Fast path: hand directly to a waiting getter.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                ev.succeed()
                return ev
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        if self._closed:
            raise ChannelClosed(self.name)
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        ev = self.sim.event(name=f"chan-get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
            self._refill_from_putters()
        elif self._closed:
            ev.fail(ChannelClosed(self.name))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            item = self._items.popleft()
            self._refill_from_putters()
            return True, item
        return False, None

    def _refill_from_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            if not ev.triggered:
                self._items.append(item)
                ev.succeed()


class ChannelClosed(SimError):
    """Get/put on a closed :class:`Channel`."""


class Resource:
    """A pool of ``capacity`` identical units (DMA channels, worker slots).

    ``request()`` yields an event firing when a unit is granted; the holder
    must call ``release()`` exactly once.  FIFO grant order.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: peak concurrent holders (utilization metric).
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self) -> Event:
        ev = self.sim.event(name=f"res:{self.name}")
        if self._in_use < self.capacity and not self._waiters:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"resource {self.name!r} released below zero")
        self._in_use -= 1
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                self._grant(ev)
                break

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        ev.succeed()


def run_with(sim: Simulator, gen: Generator[Any, Any, Any], until: Optional[float] = None) -> Any:
    """Convenience: spawn ``gen``, run the simulator, return the result."""
    from .errors import DeadlockError

    proc = sim.spawn(gen)
    sim.run(until=until)
    if not proc.triggered:
        raise DeadlockError(
            f"process {proc.name!r} did not finish before the simulation drained"
        )
    return proc.value
