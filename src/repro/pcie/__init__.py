"""PCIe interconnect model: link arbitration and scatter-gather DMA."""

from .dma import DMAEngine, sg_copy, sg_total
from .link import GEN1, GEN2, GEN3, LinkConfig, PCIeGen, PCIeLink

__all__ = [
    "DMAEngine",
    "GEN1",
    "GEN2",
    "GEN3",
    "LinkConfig",
    "PCIeGen",
    "PCIeLink",
    "sg_copy",
    "sg_total",
]
