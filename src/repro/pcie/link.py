"""PCIe link model: generations, lanes, bandwidth/latency envelope.

The link is the shared medium both the native SCIF path and every VM's
vPHI traffic ride on; it serializes bulk transfers (one DMA burst at a
time, FIFO) and delivers small control messages (doorbells) with a fixed
one-way latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import GBPS, SCIF_COSTS
from ..sim import Mutex, Simulator

__all__ = ["PCIeGen", "LinkConfig", "PCIeLink"]


@dataclass(frozen=True)
class PCIeGen:
    """Per-lane characteristics of one PCIe generation."""

    name: str
    gigatransfers: float
    #: line-code efficiency (8b/10b for gen1/2, 128b/130b for gen3).
    encoding: float

    @property
    def lane_bandwidth(self) -> float:
        """Usable bytes/second per lane."""
        return self.gigatransfers * 1e9 * self.encoding / 8


GEN1 = PCIeGen("gen1", 2.5, 8 / 10)
GEN2 = PCIeGen("gen2", 5.0, 8 / 10)
GEN3 = PCIeGen("gen3", 8.0, 128 / 130)

_GENS = {1: GEN1, 2: GEN2, 3: GEN3}


@dataclass(frozen=True)
class LinkConfig:
    """A concrete slot configuration.

    The default matches the paper's testbed: Xeon Phi 3120P in a gen2 x16
    slot, with protocol efficiency tuned so sustained reads hit the Fig 5
    native anchor of 6.4 GB/s.
    """

    generation: int = 2
    lanes: int = 16
    #: protocol efficiency (TLP headers, flow control) on top of encoding.
    protocol_efficiency: float = 0.8
    #: one-way small-message latency (doorbell / MSI).
    msg_latency: float = SCIF_COSTS.pcie_msg

    @property
    def raw_bandwidth(self) -> float:
        return _GENS[self.generation].lane_bandwidth * self.lanes

    @property
    def effective_bandwidth(self) -> float:
        return self.raw_bandwidth * self.protocol_efficiency


class PCIeLink:
    """One PCIe point-to-point link with FIFO bulk arbitration."""

    def __init__(self, sim: Simulator, config: LinkConfig | None = None, name: str = "pcie0"):
        self.sim = sim
        self.config = config or LinkConfig()
        self.name = name
        self._bulk_lock = Mutex(sim, name=f"{name}-bulk")
        #: the link is down (retraining after a flap) until this time.
        self._down_until = 0.0
        #: lifetime counters
        self.bytes_transferred = 0
        self.bulk_transfers = 0
        self.messages = 0
        self.flaps = 0
        self.busy_time = 0.0
        self.stall_time = 0.0

    @property
    def bandwidth(self) -> float:
        return self.config.effective_bandwidth

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def flap(self, duration: float) -> None:
        """Take the link down for ``duration`` (injected fault).

        Traffic already on the wire and new traffic both stall until the
        link finishes retraining; nothing is lost (PCIe replays TLPs), so
        a flap shows up purely as added latency on whatever rode the
        medium during the outage.
        """
        self.flaps += 1
        self._down_until = max(self._down_until, self.sim.now + duration)

    def _await_link(self):
        """Process: stall until the link is trained (no-op when up)."""
        while self.sim.now < self._down_until:
            wait = self._down_until - self.sim.now
            self.stall_time += wait
            yield self.sim.timeout(wait)

    def occupy(self, nbytes: int):
        """Process: hold the link while ``nbytes`` stream across it.

        ``yield from link.occupy(n)`` from inside a DMA process.
        """
        yield self._bulk_lock.acquire()
        try:
            yield from self._await_link()
            t = self.transfer_time(nbytes)
            yield self.sim.timeout(t)
            self.bytes_transferred += nbytes
            self.bulk_transfers += 1
            self.busy_time += t
        finally:
            self._bulk_lock.release()

    def message(self, payload: object = None):
        """Process: one-way control message (doorbell); returns payload.

        Small messages are posted writes — they do not arbitrate with bulk
        DMA in this model, they just take the wire latency.
        """
        yield from self._await_link()
        yield self.sim.timeout(self.config.msg_latency)
        self.messages += 1
        return payload

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PCIeLink {self.name} gen{self.config.generation} x{self.config.lanes} "
            f"{self.bandwidth / GBPS:.2f} GB/s>"
        )
