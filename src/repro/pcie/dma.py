"""DMA engine: scatter-gather data movement across the PCIe link.

The Xeon Phi exposes several DMA channels; each transfer acquires a
channel, programs the descriptors (fixed setup cost), then streams the
bytes across the link.  Data *really moves* — segments are copied between
:class:`~repro.mem.PhysicalMemory` instances — so every benchmark doubles
as an end-to-end integrity check.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.calibration import SCIF_COSTS
from ..mem import MemError, PhysicalMemory, SGEntry
from ..sim import Resource, Simulator
from .link import PCIeLink

__all__ = ["DMAEngine", "sg_total", "sg_copy"]


def sg_total(sg: Sequence[SGEntry]) -> int:
    """Total byte count of a scatter-gather list."""
    return sum(e.nbytes for e in sg)


def sg_copy(dst: Sequence[SGEntry], src: Sequence[SGEntry], nbytes: int | None = None) -> int:
    """Copy bytes from one SG list to another, handling mismatched
    segmentation.  Returns bytes copied.  Pure data movement, no time."""
    total_src = sg_total(src)
    total_dst = sg_total(dst)
    n = min(total_src, total_dst) if nbytes is None else nbytes
    if n > total_src or n > total_dst:
        raise MemError(f"sg_copy of {n} bytes exceeds src={total_src} dst={total_dst}")
    si = di = 0
    soff = doff = 0
    copied = 0
    while copied < n:
        s = src[si]
        d = dst[di]
        step = min(s.nbytes - soff, d.nbytes - doff, n - copied)
        PhysicalMemory.copy(d.mem, d.paddr + doff, s.mem, s.paddr + soff, step)
        copied += step
        soff += step
        doff += step
        if soff == s.nbytes:
            si += 1
            soff = 0
        if doff == d.nbytes:
            di += 1
            doff = 0
    return copied


class DMAEngine:
    """The card's DMA engine: N channels feeding one PCIe link."""

    def __init__(
        self,
        sim: Simulator,
        link: PCIeLink,
        channels: int = 8,
        setup_cost: float = SCIF_COSTS.rma_setup,
        name: str = "dma",
    ):
        self.sim = sim
        self.link = link
        self.channels = Resource(sim, capacity=channels, name=f"{name}-chan")
        self.setup_cost = setup_cost
        self.name = name
        self.transfers = 0
        self.bytes_moved = 0

    def transfer(self, dst: Sequence[SGEntry], src: Sequence[SGEntry], nbytes: int | None = None):
        """Process: move ``nbytes`` from ``src`` SG to ``dst`` SG.

        ``yield from engine.transfer(dst, src)``.  Charges channel
        acquisition, descriptor setup, and link occupancy; then moves the
        actual bytes.  Returns bytes moved.
        """
        if nbytes is None:
            nbytes = min(sg_total(src), sg_total(dst))
        if nbytes == 0:
            return 0
        yield self.channels.request()
        try:
            yield self.sim.timeout(self.setup_cost)
            yield from self.link.occupy(nbytes)
            moved = sg_copy(dst, src, nbytes)
        finally:
            self.channels.release()
        self.transfers += 1
        self.bytes_moved += moved
        return moved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DMAEngine {self.name} channels={self.channels.capacity}>"
