"""libscif: the SCIF user API, bound to one process on one node.

Every call is a *generator process* (``yield from lib.send(...)``) because
it takes simulated time and may block.  The same call set is implemented
by :class:`~repro.vphi.guest_libscif.GuestScif` with identical signatures
and semantics — the reproduction's rendering of the paper's binary
compatibility claim: client code is written once against this interface
and runs unmodified natively or inside a VM.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..analysis.calibration import HOST, SCIF_COSTS, HostParams, ScifCosts
from ..mem import Buffer, PAGE_SIZE, VMA, VMAFlag, is_page_aligned
from ..oscore import OSProcess
from ..sim import ChannelClosed, Channel, Simulator
from .constants import MapFlag, PollEvent, Prot, RecvFlag, RmaFlag, SendFlag
from .endpoint import ConnRequest, Endpoint, EpState
from .errors import (
    EAGAIN,
    ECONNREFUSED,
    ECONNRESET,
    EINVAL,
    EISCONN,
    ENOTCONN,
)
from .fabric import ScifFabric, ScifNode
from .rma import execute_rma

__all__ = ["NativeScif", "as_bytes_array"]

DataLike = Union[bytes, bytearray, memoryview, np.ndarray, Buffer]


def _write_u64(sg, value: int) -> None:
    """Store one little-endian u64 into the first 8 bytes of an SG list."""
    raw = np.frombuffer(int(value).to_bytes(8, "little"), dtype=np.uint8)
    off = 0
    for entry in sg:
        take = min(entry.nbytes, 8 - off)
        entry.mem.write(entry.paddr, raw[off : off + take])
        off += take
        if off == 8:
            return


def as_bytes_array(data: DataLike) -> np.ndarray:
    """Normalize any payload type to a uint8 numpy array (no copy when
    already uint8)."""
    if isinstance(data, Buffer):
        return data.data
    if isinstance(data, np.ndarray):
        if data.dtype == np.uint8:
            return data
        return np.ascontiguousarray(data).view(np.uint8)
    return np.frombuffer(bytes(data), dtype=np.uint8)


class NativeScif:
    """The host/card-native SCIF implementation (§II-B software stack)."""

    def __init__(
        self,
        fabric: ScifFabric,
        node: ScifNode,
        process: OSProcess,
        costs: ScifCosts = SCIF_COSTS,
        host_params: HostParams = HOST,
    ):
        self.sim: Simulator = fabric.sim
        self.fabric = fabric
        self.node = node
        self.process = process
        self.costs = costs
        self.host_params = host_params
        self.tracer = fabric.tracer

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _syscall(self):
        return self.sim.timeout(self.costs.syscall + self.costs.driver)

    def _check_connected(self, ep: Endpoint) -> None:
        if ep.state is not EpState.CONNECTED:
            raise ENOTCONN(f"endpoint {ep.id} is {ep.state.value}")

    # ------------------------------------------------------------------
    # endpoint lifecycle
    # ------------------------------------------------------------------
    def open(self):
        """scif_open(): create an endpoint descriptor."""
        yield self.sim.timeout(self.costs.syscall)
        ep = Endpoint(self.sim, self.node, owner=self.process.name)
        self.tracer.count("scif.open")
        return ep

    def bind(self, ep: Endpoint, port: int = 0):
        """scif_bind(): bind to a local port (0 picks an ephemeral one)."""
        yield self._syscall()
        if ep.state not in (EpState.NEW,):
            raise EINVAL(f"bind on endpoint in state {ep.state.value}")
        bound = self.node.bind(ep, port)
        self.tracer.count("scif.bind")
        return bound

    def listen(self, ep: Endpoint, backlog: int = 16):
        """scif_listen(): become a passive endpoint."""
        yield self._syscall()
        if ep.state is not EpState.BOUND:
            raise EINVAL("listen requires a bound endpoint")
        if backlog <= 0:
            raise EINVAL("backlog must be positive")
        ep.backlog = Channel(self.sim, capacity=backlog, name=f"ep{ep.id}-backlog")
        ep.state = EpState.LISTENING
        self.tracer.count("scif.listen")
        return 0

    def connect(self, ep: Endpoint, addr: tuple[int, int]):
        """scif_connect(): active open to (node, port).  Returns local port."""
        yield self._syscall()
        if ep.state is EpState.CONNECTED:
            raise EISCONN("endpoint already connected")
        if ep.state not in (EpState.NEW, EpState.BOUND):
            raise EINVAL(f"connect on endpoint in state {ep.state.value}")
        if ep.state is EpState.NEW:
            self.node.bind(ep, 0)
        dst_node_id, dst_port = addr
        dst_node = self.fabric.node(dst_node_id)  # raises ENXIO
        # connection request travels to the listener's node
        yield self.sim.timeout(self.fabric.msg_delay(self.node.node_id, dst_node_id))
        listener = dst_node.listener_at(dst_port)
        if listener is None:
            yield self.sim.timeout(self.fabric.msg_delay(self.node.node_id, dst_node_id))
            raise ECONNREFUSED(f"no listener at {addr}")
        reply = self.sim.event(name=f"connreq-ep{ep.id}")
        req = ConnRequest(ep, ep.local_addr, reply)
        assert listener.backlog is not None
        if not listener.backlog.try_put(req):
            yield self.sim.timeout(self.fabric.msg_delay(self.node.node_id, dst_node_id))
            raise ECONNREFUSED(f"backlog full at {addr}")
        listener.poll_wait.wake_all()
        try:
            yield reply  # acceptor links the endpoints
        except ChannelClosed:
            raise ECONNREFUSED(f"listener at {addr} closed") from None
        # accept-ack travels back
        yield self.sim.timeout(self.fabric.msg_delay(self.node.node_id, dst_node_id))
        self.tracer.count("scif.connect")
        return ep.port

    def accept(self, lep: Endpoint, block: bool = True):
        """scif_accept(): returns ``(new_endpoint, peer_addr)``."""
        yield self._syscall()
        if lep.state is not EpState.LISTENING or lep.backlog is None:
            raise EINVAL("accept on a non-listening endpoint")
        if block:
            try:
                req: ConnRequest = yield lep.backlog.get()
            except ChannelClosed:
                raise ECONNRESET("listener closed while accepting") from None
        else:
            ok, req = lep.backlog.try_get()
            if not ok:
                raise EAGAIN("no pending connection")
        new_ep = Endpoint(self.sim, self.node, owner=self.process.name)
        new_ep.port = lep.port  # accepted endpoints share the listening port
        new_ep.state = EpState.CONNECTED
        new_ep.peer = req.src_ep
        new_ep.peer_addr = req.src_addr
        req.src_ep.peer = new_ep
        req.src_ep.peer_addr = (self.node.node_id, lep.port)
        req.src_ep.state = EpState.CONNECTED
        req.reply.succeed(new_ep)
        self.tracer.count("scif.accept")
        return new_ep, req.src_addr

    def close(self, ep: Endpoint):
        """scif_close(): tear down the endpoint."""
        yield self._syscall()
        if ep.state is EpState.CLOSED:
            return 0
        if ep.state is EpState.LISTENING and ep.backlog is not None:
            # refuse everything still queued
            while True:
                ok, req = ep.backlog.try_get()
                if not ok:
                    break
                req.reply.fail(ECONNREFUSED("listener closed"))
            ep.backlog.close()
        if ep.state is EpState.CONNECTED and ep.peer is not None:
            peer = ep.peer
            delay = self.fabric.msg_delay(self.node.node_id, ep.peer_addr[0])
            self.sim.call_at(self.sim.now + delay, peer.mark_peer_closed)
        if ep.port is not None and self.node.ports.get(ep.port) is ep:
            self.node.release_port(ep.port)
        ep.windows.clear()
        ep.state = EpState.CLOSED
        ep.recv_wait.wake_all()
        ep.poll_wait.wake_all()
        self.tracer.count("scif.close")
        return 0

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, ep: Endpoint, data: DataLike, flags: SendFlag = SendFlag.SCIF_SEND_BLOCK):
        """scif_send(): synchronous message send (completes on remote ack).

        Native 1-byte cost: syscall+driver (1.5 µs) + wire (2 µs) +
        card ISR (1 µs) + ack (2 µs) + completion (0.5 µs) = 7 µs (Fig 4).
        """
        yield self._syscall()
        self._check_connected(ep)
        if ep.peer_closed or ep.peer is None:
            raise ECONNRESET("peer endpoint closed")
        payload = as_bytes_array(data)
        if len(payload) == 0:
            # scif_send(ep, buf, 0) returns 0 without touching the wire
            # (matching Linux); the connection checks above still apply.
            self.tracer.count("scif.send")
            return 0
        remote_id = ep.peer_addr[0]
        wire = self.fabric.msg_delay(self.node.node_id, remote_id)
        # payload streams at the send-recv (ring buffer) rate
        yield self.sim.timeout(wire + len(payload) / self.costs.sendrecv_bandwidth)
        yield self.sim.timeout(self.costs.card_isr)
        ep.peer.enqueue_rx(payload.copy())
        ep.peer.bytes_received += len(payload)
        # flow-control ack returns
        yield self.sim.timeout(wire + self.costs.completion)
        ep.bytes_sent += len(payload)
        self.tracer.count("scif.send")
        self.tracer.accumulate("scif.bytes_sent", len(payload))
        return len(payload)

    def recv(self, ep: Endpoint, nbytes: int, flags: RecvFlag = RecvFlag.SCIF_RECV_BLOCK):
        """scif_recv(): blocking form waits for exactly ``nbytes``."""
        yield self._syscall()
        if nbytes < 0:
            raise EINVAL("recv length must be non-negative")
        if ep.state is not EpState.CONNECTED and ep.rx_bytes == 0:
            raise ENOTCONN(f"recv on endpoint in state {ep.state.value}")
        if nbytes == 0:
            # zero-length recv completes immediately with an empty buffer
            # (mirroring the zero-length send: header only, no payload).
            self.tracer.count("scif.recv")
            return ep.dequeue_rx(0)
        block = bool(flags & RecvFlag.SCIF_RECV_BLOCK)
        if block:
            while ep.rx_bytes < nbytes:
                if ep.peer_closed or ep.state is EpState.CLOSED:
                    if ep.rx_bytes == 0:
                        raise ECONNRESET("connection reset while receiving")
                    break  # drain what remains
                yield ep.recv_wait.wait()
        else:
            if ep.rx_bytes == 0:
                if ep.peer_closed:
                    raise ECONNRESET("connection reset")
                raise EAGAIN("no data")
        out = ep.dequeue_rx(nbytes)
        # user<->kernel copy-out
        yield self.sim.timeout(len(out) / self.host_params.memcpy_bandwidth)
        self.tracer.count("scif.recv")
        return out

    # ------------------------------------------------------------------
    # registration / RMA
    # ------------------------------------------------------------------
    def register(
        self,
        ep: Endpoint,
        vaddr: int,
        nbytes: int,
        offset: Optional[int] = None,
        prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE,
        flags: MapFlag = MapFlag.NONE,
    ):
        """scif_register(): pin ``[vaddr, vaddr+nbytes)`` and expose it in
        the endpoint's registered address space.  Returns the RAS offset."""
        yield self._syscall()
        self._check_connected(ep)
        if not is_page_aligned(vaddr) or nbytes <= 0 or nbytes % PAGE_SIZE:
            raise EINVAL("scif_register requires page-aligned addr and length")
        if flags & MapFlag.SCIF_MAP_FIXED:
            if offset is None:
                raise EINVAL("SCIF_MAP_FIXED requires an offset")
        else:
            offset = None
        pinned = self.process.address_space.pin(vaddr, nbytes)
        try:
            win = ep.windows.add(
                nbytes, prot, pinned.sg, offset=offset, pinned=pinned,
                label=f"{self.process.name}:{vaddr:#x}",
            )
        except Exception:
            pinned.unpin()
            raise
        # pinning cost scales with page count
        yield self.sim.timeout(self.costs.pin_page * (nbytes // PAGE_SIZE))
        self.tracer.count("scif.register")
        return win.offset

    def unregister(self, ep: Endpoint, offset: int):
        """scif_unregister(): drop a window and unpin its pages."""
        yield self._syscall()
        ep.windows.remove(offset)
        self.tracer.count("scif.unregister")
        return 0

    def _remote_sg(self, ep: Endpoint, roffset: int, nbytes: int, require: Prot):
        if ep.peer is None:
            raise ENOTCONN("RMA on unconnected endpoint")
        return ep.peer.windows.resolve(roffset, nbytes, require)

    def readfrom(self, ep: Endpoint, loffset: int, nbytes: int, roffset: int,
                 flags: RmaFlag = RmaFlag.NONE):
        """scif_readfrom(): remote window -> local window."""
        yield self._syscall()
        self._check_connected(ep)
        local_sg = ep.windows.resolve(loffset, nbytes, Prot.SCIF_PROT_WRITE)
        remote_sg = self._remote_sg(ep, roffset, nbytes, Prot.SCIF_PROT_READ)
        yield from execute_rma(ep, "read", local_sg, remote_sg, nbytes, flags, self.costs)
        yield self.sim.timeout(self.costs.completion)
        self.tracer.count("scif.readfrom")
        self.tracer.accumulate("scif.rma_bytes", nbytes)
        return nbytes

    def writeto(self, ep: Endpoint, loffset: int, nbytes: int, roffset: int,
                flags: RmaFlag = RmaFlag.NONE):
        """scif_writeto(): local window -> remote window."""
        yield self._syscall()
        self._check_connected(ep)
        local_sg = ep.windows.resolve(loffset, nbytes, Prot.SCIF_PROT_READ)
        remote_sg = self._remote_sg(ep, roffset, nbytes, Prot.SCIF_PROT_WRITE)
        yield from execute_rma(ep, "write", local_sg, remote_sg, nbytes, flags, self.costs)
        yield self.sim.timeout(self.costs.completion)
        self.tracer.count("scif.writeto")
        self.tracer.accumulate("scif.rma_bytes", nbytes)
        return nbytes

    def vreadfrom(self, ep: Endpoint, vaddr: int, nbytes: int, roffset: int,
                  flags: RmaFlag = RmaFlag.NONE):
        """scif_vreadfrom(): remote window -> local *virtual* buffer (the
        driver pins it for the duration of the transfer)."""
        yield self._syscall()
        self._check_connected(ep)
        if nbytes <= 0:
            raise EINVAL("RMA length must be positive")
        pinned = self.process.address_space.pin(vaddr, nbytes)
        try:
            remote_sg = self._remote_sg(ep, roffset, nbytes, Prot.SCIF_PROT_READ)
            local_sg = self.process.address_space.sg_list(vaddr, nbytes, fault_in=False)
            yield from execute_rma(ep, "read", local_sg, remote_sg, nbytes, flags, self.costs)
        finally:
            pinned.unpin()
        yield self.sim.timeout(self.costs.completion)
        self.tracer.count("scif.vreadfrom")
        self.tracer.accumulate("scif.rma_bytes", nbytes)
        return nbytes

    def vwriteto(self, ep: Endpoint, vaddr: int, nbytes: int, roffset: int,
                 flags: RmaFlag = RmaFlag.NONE):
        """scif_vwriteto(): local virtual buffer -> remote window."""
        yield self._syscall()
        self._check_connected(ep)
        if nbytes <= 0:
            raise EINVAL("RMA length must be positive")
        pinned = self.process.address_space.pin(vaddr, nbytes)
        try:
            remote_sg = self._remote_sg(ep, roffset, nbytes, Prot.SCIF_PROT_WRITE)
            local_sg = self.process.address_space.sg_list(vaddr, nbytes, fault_in=False)
            yield from execute_rma(ep, "write", local_sg, remote_sg, nbytes, flags, self.costs)
        finally:
            pinned.unpin()
        yield self.sim.timeout(self.costs.completion)
        self.tracer.count("scif.vwriteto")
        self.tracer.accumulate("scif.rma_bytes", nbytes)
        return nbytes

    # ------------------------------------------------------------------
    # driver-internal entry points (used by the vPHI backend)
    # ------------------------------------------------------------------
    def register_sg(
        self,
        ep: Endpoint,
        sg,
        nbytes: int,
        offset: Optional[int] = None,
        prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE,
        label: str = "",
    ):
        """Register a window backed by an already-pinned scatter list.

        The in-kernel path the vPHI backend takes: the *guest* pinned the
        pages; the host driver only inserts the window (the "<15 LOC in
        host SCIF driver" half of the paper's modification).
        """
        yield self.sim.timeout(self.costs.driver)
        self._check_connected(ep)
        win = ep.windows.add(nbytes, prot, sg, offset=offset, label=label)
        self.tracer.count("scif.register_sg")
        return win.offset

    def rma_sg(self, ep: Endpoint, local_sg, nbytes: int, roffset: int,
               direction: str, flags: RmaFlag = RmaFlag.NONE):
        """One RMA against an explicit local scatter list (no syscall
        charge — the caller already crossed the kernel boundary)."""
        require = Prot.SCIF_PROT_READ if direction == "read" else Prot.SCIF_PROT_WRITE
        remote_sg = self._remote_sg(ep, roffset, nbytes, require)
        yield from execute_rma(ep, direction, local_sg, remote_sg, nbytes, flags, self.costs)
        self.tracer.accumulate("scif.rma_bytes", nbytes)
        return nbytes

    # ------------------------------------------------------------------
    # mmap
    # ------------------------------------------------------------------
    def mmap(self, ep: Endpoint, roffset: int, nbytes: int,
             prot: Prot = Prot.SCIF_PROT_READ | Prot.SCIF_PROT_WRITE) -> VMA:
        """scif_mmap(): map the peer's registered window into the local
        address space.  Returns the VMA; plain loads/stores through it
        reach device memory with **no further SCIF calls** (§II-B)."""
        yield self._syscall()
        self._check_connected(ep)
        if nbytes <= 0 or nbytes % PAGE_SIZE or roffset % PAGE_SIZE:
            raise EINVAL("scif_mmap requires page-aligned offset and length")
        remote_sg = self._remote_sg(ep, roffset, nbytes, prot)
        # flatten for page lookup
        runs = list(remote_sg)

        def handler(vma: VMA, page_vaddr: int):
            rel = page_vaddr - vma.start
            pos = 0
            for run in runs:
                if pos <= rel < pos + run.nbytes:
                    return run.mem, run.paddr + (rel - pos)
                pos += run.nbytes
            raise EINVAL(f"mmap fault beyond window at rel={rel:#x}")

        flags = VMAFlag.DEVICE
        if prot & Prot.SCIF_PROT_READ:
            flags |= VMAFlag.READ
        if prot & Prot.SCIF_PROT_WRITE:
            flags |= VMAFlag.WRITE
        vma = self.process.address_space.mmap(
            nbytes, flags=flags, fault_handler=handler,
            name=f"scif-mmap-ep{ep.id}@{roffset:#x}",
        )
        self.tracer.count("scif.mmap")
        return vma

    def munmap(self, vma: VMA):
        """scif_munmap(): drop a window mapping."""
        yield self._syscall()
        self.process.address_space.munmap(vma)
        self.tracer.count("scif.munmap")
        return 0

    # ------------------------------------------------------------------
    # fences
    # ------------------------------------------------------------------
    def fence_mark(self, ep: Endpoint):
        """scif_fence_mark(): mark the RMAs issued so far."""
        yield self.sim.timeout(self.costs.syscall)
        return ep.fence_mark()

    def fence_wait(self, ep: Endpoint, mark: int):
        """scif_fence_wait(): block until every marked RMA completed."""
        yield self.sim.timeout(self.costs.syscall)
        while ep.fence_pending(mark):
            yield ep.fence_wait.wait()
        return 0

    def fence_signal(self, ep: Endpoint, loffset: Optional[int], lval: int,
                     roffset: Optional[int], rval: int):
        """scif_fence_signal(): when every RMA issued so far completes,
        write ``lval`` at the local RAS offset and/or ``rval`` at the
        remote one (8-byte stores) — the RDMA-completion-flag idiom the
        paper's §II-B background describes (RDMA + polling on a flag)."""
        yield self._syscall()
        self._check_connected(ep)
        mark = ep.fence_mark()
        while ep.fence_pending(mark):
            yield ep.fence_wait.wait()
        if loffset is not None:
            sg = ep.windows.resolve(loffset, 8, Prot.SCIF_PROT_WRITE)
            _write_u64(sg, lval)
        if roffset is not None:
            if ep.peer is None:
                raise ENOTCONN("fence_signal on unconnected endpoint")
            yield self.sim.timeout(
                self.fabric.msg_delay(self.node.node_id, ep.peer_addr[0])
            )
            sg = ep.peer.windows.resolve(roffset, 8, Prot.SCIF_PROT_WRITE)
            _write_u64(sg, rval)
        self.tracer.count("scif.fence_signal")
        return 0

    # ------------------------------------------------------------------
    # poll
    # ------------------------------------------------------------------
    def poll(self, fds: Sequence[tuple[Endpoint, PollEvent]],
             timeout: Optional[float] = None):
        """scif_poll(): wait until any endpoint has requested events.

        Returns the list of ``revents`` (one per fd).  ``timeout=None``
        blocks forever; ``timeout=0`` is a non-blocking check.
        """
        yield self.sim.timeout(self.costs.syscall)
        always = PollEvent.SCIF_POLLERR | PollEvent.SCIF_POLLHUP
        while True:
            revents = [ep.poll_events() & (mask | always) for ep, mask in fds]
            if any(revents):
                self.tracer.count("scif.poll")
                return revents
            if timeout == 0:
                self.tracer.count("scif.poll")
                return revents
            waiters = [ep.poll_wait.wait() for ep, _ in fds]
            events = list(waiters)
            if timeout is not None:
                events.append(self.sim.timeout(timeout))
            idx, _ = yield self.sim.any_of(events)
            for (ep, _), w in zip(fds, waiters):
                ep.poll_wait.cancel(w)
            if timeout is not None and idx == len(waiters):
                # timed out: one last non-blocking sample
                revents = [ep.poll_events() & (mask | always) for ep, mask in fds]
                self.tracer.count("scif.poll")
                return revents

    # ------------------------------------------------------------------
    def get_node_ids(self):
        """scif_get_nodeIDs(): (all node ids, own node id)."""
        yield self.sim.timeout(self.costs.syscall)
        return sorted(self.fabric.nodes), self.node.node_id
