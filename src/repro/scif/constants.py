"""SCIF constants: flags, port ranges, limits (mirrors <scif.h>)."""

from __future__ import annotations

import enum

__all__ = [
    "SCIF_PORT_RSVD",
    "SCIF_PORT_MAX",
    "SCIF_HOST_NODE",
    "RecvFlag",
    "SendFlag",
    "Prot",
    "MapFlag",
    "PollEvent",
    "RmaFlag",
]

#: ports below this are admin/reserved; ephemeral binds allocate above it.
SCIF_PORT_RSVD = 1024
SCIF_PORT_MAX = 65535
#: the host is always SCIF node 0; cards are 1..N (as in MPSS).
SCIF_HOST_NODE = 0


class SendFlag(enum.IntFlag):
    NONE = 0
    #: block until the full length is accepted.
    SCIF_SEND_BLOCK = 0x1


class RecvFlag(enum.IntFlag):
    NONE = 0
    #: block until exactly the requested length has been received.
    SCIF_RECV_BLOCK = 0x1


class Prot(enum.IntFlag):
    SCIF_PROT_READ = 0x1
    SCIF_PROT_WRITE = 0x2


class MapFlag(enum.IntFlag):
    NONE = 0
    #: honour the fixed offset given to scif_register instead of allocating.
    SCIF_MAP_FIXED = 0x10


class PollEvent(enum.IntFlag):
    NONE = 0
    SCIF_POLLIN = 0x1
    SCIF_POLLOUT = 0x4
    SCIF_POLLERR = 0x8
    SCIF_POLLHUP = 0x10


class RmaFlag(enum.IntFlag):
    NONE = 0
    #: force CPU copy instead of DMA (useful for tiny transfers).
    SCIF_RMA_USECPU = 0x1
    #: wait for the transfer to be remotely visible before returning.
    SCIF_RMA_SYNC = 0x2
