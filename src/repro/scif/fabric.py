"""The SCIF fabric: node registry and inter-node transport selection.

SCIF numbers the host node 0 and each coprocessor 1..N (§II-B).  The
fabric knows which PCIe link and DMA engine sit between any two nodes so
the API layer can charge the right wire costs and move bytes through the
right engine.
"""

from __future__ import annotations

from typing import Optional

from ..oscore import Kernel
from ..phi import XeonPhiDevice
from ..sim import Simulator, Tracer
from .constants import SCIF_HOST_NODE, SCIF_PORT_MAX, SCIF_PORT_RSVD
from .endpoint import Endpoint, EpState
from .errors import EADDRINUSE, EINVAL, ENXIO

__all__ = ["ScifNode", "ScifFabric"]


class ScifNode:
    """Per-node SCIF driver state: the port table."""

    def __init__(self, fabric: "ScifFabric", node_id: int, kernel: Kernel,
                 device: Optional[XeonPhiDevice] = None):
        self.fabric = fabric
        self.node_id = node_id
        self.kernel = kernel
        #: the PCIe card this node lives on (None for the host node).
        self.device = device
        self.ports: dict[int, Endpoint] = {}
        #: every endpoint ever opened on this node (reset() sweeps them).
        self.endpoints: list[Endpoint] = []
        self._next_ephemeral = SCIF_PORT_RSVD

    @property
    def is_host(self) -> bool:
        return self.node_id == SCIF_HOST_NODE

    def bind(self, ep: Endpoint, port: int) -> int:
        """Bind an endpoint to a port (0 = pick an ephemeral one)."""
        if port == 0:
            port = self.alloc_port()
        elif port in self.ports:
            raise EADDRINUSE(f"node {self.node_id} port {port} in use")
        elif not 0 < port <= SCIF_PORT_MAX:
            raise EINVAL(f"port {port} out of range")
        self.ports[port] = ep
        ep.port = port
        ep.state = EpState.BOUND
        return port

    def alloc_port(self) -> int:
        port = self._next_ephemeral
        while port in self.ports:
            port += 1
            if port > SCIF_PORT_MAX:
                raise EADDRINUSE("ephemeral port space exhausted")
        self._next_ephemeral = port + 1
        return port

    def release_port(self, port: int) -> None:
        self.ports.pop(port, None)

    def listener_at(self, port: int) -> Optional[Endpoint]:
        ep = self.ports.get(port)
        if ep is not None and ep.state is EpState.LISTENING:
            return ep
        return None

    def reset(self) -> int:
        """Hard-reset the node (card crash / mic driver reset).

        Every local endpoint dies immediately; connected peers on other
        nodes observe a connection reset, exactly as they would when a
        card is yanked mid-flight.  Returns the number of endpoints torn
        down.
        """
        torn = 0
        for ep in list(self.endpoints):
            if ep.state is EpState.CLOSED:
                continue
            torn += 1
            if ep.backlog is not None:
                while True:
                    ok, req = ep.backlog.try_get()
                    if not ok:
                        break
                    from .errors import ECONNRESET

                    req.reply.fail(ECONNRESET("node reset during connect"))
                ep.backlog.close()
            if ep.peer is not None:
                ep.peer.mark_peer_closed()
            ep.state = EpState.CLOSED
            ep.windows.clear()
            ep.recv_wait.wake_all()
            ep.poll_wait.wake_all()
        self.ports.clear()
        self.endpoints.clear()
        return torn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ScifNode {self.node_id} ports={len(self.ports)}>"


class ScifFabric:
    """All SCIF nodes reachable from one physical machine."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer or Tracer()
        self.tracer.bind_clock(lambda: sim.now)
        self.nodes: dict[int, ScifNode] = {}

    # ------------------------------------------------------------------
    def attach_host(self, kernel: Kernel) -> ScifNode:
        if SCIF_HOST_NODE in self.nodes:
            raise EINVAL("host node already attached")
        node = ScifNode(self, SCIF_HOST_NODE, kernel)
        self.nodes[SCIF_HOST_NODE] = node
        return node

    def attach_device(self, device: XeonPhiDevice) -> ScifNode:
        """Attach a booted card as the next node id."""
        if device.uos is None:
            raise EINVAL(f"{device.name} has not booted a uOS")
        node_id = max(self.nodes, default=0) + 1
        node = ScifNode(self, node_id, device.uos, device=device)
        self.nodes[node_id] = node
        device.node_id = node_id
        device.uos.scif_node = node
        return node

    def node(self, node_id: int) -> ScifNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ENXIO(f"no SCIF node {node_id}") from None

    # ------------------------------------------------------------------
    # transport selection
    # ------------------------------------------------------------------
    def links_between(self, a: int, b: int):
        """The PCIe links a transfer between nodes ``a`` and ``b`` crosses
        (empty for loopback, one for host<->card, two for card<->card)."""
        links = []
        for nid in (a, b):
            node = self.node(nid)
            if node.device is not None:
                links.append(node.device.link)
        return links

    def msg_delay(self, a: int, b: int) -> float:
        """One-way small-message latency between two nodes."""
        return sum(link.config.msg_latency for link in self.links_between(a, b))

    def dma_engine(self, a: int, b: int):
        """DMA engine used for bulk transfers between two nodes.

        Host<->card uses the card's engine; card<->card (peer-to-peer)
        uses the initiator's engine (``a``).  Loopback returns None — the
        copy is a host memcpy, no engine involved.
        """
        node_a, node_b = self.node(a), self.node(b)
        if node_a.device is not None:
            return node_a.device.dma
        if node_b.device is not None:
            return node_b.device.dma
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ScifFabric nodes={sorted(self.nodes)}>"
