"""RMA execution: remote reads/writes between registered windows.

Two data paths, as in the real driver:

* **CPU (programmed I/O)** for small transfers (below
  :attr:`~repro.analysis.calibration.ScifCosts.dma_threshold`) or when the
  caller passes ``SCIF_RMA_USECPU``;
* **DMA** otherwise: the card's engine is programmed with both scatter
  lists and streams the bytes across the PCIe link.

Bytes genuinely move between the two :class:`~repro.mem.PhysicalMemory`
instances either way.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.calibration import HOST, SCIF_COSTS, ScifCosts
from ..mem import SGEntry
from ..pcie import sg_copy
from .constants import RmaFlag
from .endpoint import Endpoint
from .errors import ENOTCONN

__all__ = ["execute_rma"]


def execute_rma(
    ep: Endpoint,
    direction: str,
    local_sg: Sequence[SGEntry],
    remote_sg: Sequence[SGEntry],
    nbytes: int,
    flags: RmaFlag = RmaFlag.NONE,
    costs: ScifCosts = SCIF_COSTS,
):
    """Process: one remote read ("read": remote->local) or write.

    The caller (API layer) has already charged syscall entry; this charges
    the wire and completion, moves the bytes, and maintains fence state.
    """
    if ep.peer_addr is None:
        raise ENOTCONN("RMA on unconnected endpoint")
    sim = ep.sim
    fabric = ep.node.fabric
    src, dst = (remote_sg, local_sg) if direction == "read" else (local_sg, remote_sg)
    seq = ep.rma_begin()
    try:
        local_id = ep.node.node_id
        remote_id = ep.peer_addr[0]
        use_cpu = bool(flags & RmaFlag.SCIF_RMA_USECPU) or nbytes < costs.dma_threshold
        if use_cpu:
            # PIO: request travels, bytes trickle at the send-recv rate.
            yield sim.timeout(
                fabric.msg_delay(local_id, remote_id) + nbytes / costs.sendrecv_bandwidth
            )
            sg_copy(dst, src, nbytes)
        else:
            engine = fabric.dma_engine(local_id, remote_id)
            if engine is None:
                # loopback: plain host memcpy
                yield sim.timeout(nbytes / HOST.memcpy_bandwidth)
                sg_copy(dst, src, nbytes)
            else:
                yield from engine.transfer(dst, src, nbytes)
        # completion message back to the initiator
        yield sim.timeout(fabric.msg_delay(local_id, remote_id))
    finally:
        ep.rma_end(seq)
    return nbytes
