"""SCIF: the Symmetric Communication Interface (transport layer).

The low-level abstraction over PCIe that host and card applications use to
talk to each other (§II-B) — and the layer vPHI virtualizes.
"""

from .api import NativeScif, as_bytes_array
from .constants import (
    MapFlag,
    PollEvent,
    Prot,
    RecvFlag,
    RmaFlag,
    SCIF_HOST_NODE,
    SCIF_PORT_RSVD,
    SendFlag,
)
from .endpoint import ConnRequest, Endpoint, EpState
from .errors import (
    EAGAIN,
    EADDRINUSE,
    EBADF,
    EBUSY,
    ECONNREFUSED,
    ECONNRESET,
    EINVAL,
    EISCONN,
    ENOMEM,
    ENOTCONN,
    ENXIO,
    ESHUTDOWN,
    ETIMEDOUT,
    EStaleEpoch,
    ScifError,
)
from .fabric import ScifFabric, ScifNode
from .registration import RegisteredWindow, WindowRegistry
from .rma import execute_rma

__all__ = [
    "ConnRequest",
    "EAGAIN",
    "EADDRINUSE",
    "EBADF",
    "EBUSY",
    "ECONNREFUSED",
    "ECONNRESET",
    "EINVAL",
    "EISCONN",
    "ENOMEM",
    "ENOTCONN",
    "ENXIO",
    "ESHUTDOWN",
    "EStaleEpoch",
    "ETIMEDOUT",
    "Endpoint",
    "EpState",
    "MapFlag",
    "NativeScif",
    "PollEvent",
    "Prot",
    "RecvFlag",
    "RegisteredWindow",
    "RmaFlag",
    "SCIF_HOST_NODE",
    "SCIF_PORT_RSVD",
    "ScifError",
    "ScifFabric",
    "ScifNode",
    "SendFlag",
    "WindowRegistry",
    "as_bytes_array",
    "execute_rma",
]
