"""SCIF error model: one exception class per errno the real API returns."""

from __future__ import annotations

__all__ = [
    "ScifError",
    "EINVAL",
    "EADDRINUSE",
    "ECONNREFUSED",
    "ECONNRESET",
    "ENOTCONN",
    "EISCONN",
    "EAGAIN",
    "EBUSY",
    "ENXIO",
    "ENOMEM",
    "EACCES",
    "ETIMEDOUT",
    "EBADF",
    "ESHUTDOWN",
    "EStaleEpoch",
]


class ScifError(Exception):
    """Base SCIF failure; ``errno_name`` mirrors the C API's return code."""

    errno_name = "EIO"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.args[0] if self.args else ''!r})"


class EINVAL(ScifError):
    errno_name = "EINVAL"


class EADDRINUSE(ScifError):
    errno_name = "EADDRINUSE"


class ECONNREFUSED(ScifError):
    errno_name = "ECONNREFUSED"


class ECONNRESET(ScifError):
    errno_name = "ECONNRESET"


class ENOTCONN(ScifError):
    errno_name = "ENOTCONN"


class EISCONN(ScifError):
    errno_name = "EISCONN"


class EAGAIN(ScifError):
    errno_name = "EAGAIN"


class EBUSY(ScifError):
    """The device (or its virtualized QoS layer) is saturated.

    vPHI's admission control sheds load with EBUSY when a tenant's
    offered traffic crosses its queue-depth or latency watermark: the
    request is refused *before* any descriptor is allocated, so the
    guest gets typed back-pressure instead of an ever-growing queue.
    Native SCIF surfaces the same errno when the driver's command ring
    is full."""

    errno_name = "EBUSY"


class ENXIO(ScifError):
    errno_name = "ENXIO"


class ENOMEM(ScifError):
    errno_name = "ENOMEM"


class EACCES(ScifError):
    errno_name = "EACCES"


class ETIMEDOUT(ScifError):
    errno_name = "ETIMEDOUT"


class EBADF(ScifError):
    errno_name = "EBADF"


class ESHUTDOWN(ScifError):
    """The servicing endpoint of the transport is shutting down (backend
    process restart): no further sends can be initiated until the peer
    side is re-established."""

    errno_name = "ESHUTDOWN"


class EStaleEpoch(ScifError):
    """A completion (or a submit) straddled a session epoch boundary.

    This errno exists only at the virtualization layer: native SCIF has
    no notion of a session generation.  The vPHI frontend stamps every
    request with the session epoch; when a card reset or backend restart
    fences the epoch, late pre-reset completions and rejected submits
    surface as EStaleEpoch (mapped to ESTALE at the libscif boundary)
    instead of silently mutating rebuilt state."""

    errno_name = "ESTALE"
