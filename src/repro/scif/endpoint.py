"""SCIF endpoints: connection state machine, receive queue, poll hooks."""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Optional

import numpy as np

from ..sim import Channel, Event, Simulator, WaitQueue
from .constants import PollEvent
from .errors import EINVAL
from .registration import WindowRegistry

__all__ = ["EpState", "ConnRequest", "Endpoint"]

_ep_ids = itertools.count(1)


class EpState(enum.Enum):
    NEW = "new"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


class ConnRequest:
    """A pending connection travelling from connector to listener."""

    __slots__ = ("src_ep", "src_addr", "reply")

    def __init__(self, src_ep: "Endpoint", src_addr: tuple[int, int], reply: Event):
        self.src_ep = src_ep
        self.src_addr = src_addr
        self.reply = reply


class Endpoint:
    """One SCIF endpoint descriptor."""

    def __init__(self, sim: Simulator, node, owner: str = ""):
        self.sim = sim
        self.node = node
        self.id = next(_ep_ids)
        self.owner = owner
        self.state = EpState.NEW
        # register with the node so a hard reset can sweep every endpoint
        if hasattr(node, "endpoints"):
            node.endpoints.append(self)
        self.port: Optional[int] = None
        self.peer: Optional[Endpoint] = None
        self.peer_addr: Optional[tuple[int, int]] = None
        #: set when the peer endpoint closed; recv drains then errors.
        self.peer_closed = False
        # receive side: FIFO of numpy chunks
        self._rx: deque[np.ndarray] = deque()
        self.rx_bytes = 0
        self.recv_wait = WaitQueue(sim, name=f"ep{self.id}-recv")
        self.poll_wait = WaitQueue(sim, name=f"ep{self.id}-poll")
        #: listener backlog (created by listen()).
        self.backlog: Optional[Channel] = None
        #: registered address space.
        self.windows = WindowRegistry()
        # RMA fencing
        self.rma_last_issued = 0
        self.rma_outstanding: set[int] = set()
        self.fence_wait = WaitQueue(sim, name=f"ep{self.id}-fence")
        #: lifetime metrics
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # address
    # ------------------------------------------------------------------
    @property
    def local_addr(self) -> tuple[int, int]:
        if self.port is None:
            raise EINVAL("endpoint not bound")
        return (self.node.node_id, self.port)

    # ------------------------------------------------------------------
    # receive queue (pure state; timing is charged by the API layer)
    # ------------------------------------------------------------------
    def enqueue_rx(self, data: np.ndarray) -> None:
        if len(data):
            self._rx.append(data)
            self.rx_bytes += len(data)
        self.recv_wait.wake_all()
        self.poll_wait.wake_all()

    def dequeue_rx(self, nbytes: int) -> np.ndarray:
        """Pop up to ``nbytes`` from the receive queue."""
        take = min(nbytes, self.rx_bytes)
        out = np.empty(take, dtype=np.uint8)
        off = 0
        while off < take:
            chunk = self._rx[0]
            n = min(len(chunk), take - off)
            out[off : off + n] = chunk[:n]
            if n == len(chunk):
                self._rx.popleft()
            else:
                self._rx[0] = chunk[n:]
            off += n
        self.rx_bytes -= take
        return out

    # ------------------------------------------------------------------
    # RMA fencing
    # ------------------------------------------------------------------
    def rma_begin(self) -> int:
        self.rma_last_issued += 1
        seq = self.rma_last_issued
        self.rma_outstanding.add(seq)
        return seq

    def rma_end(self, seq: int) -> None:
        self.rma_outstanding.discard(seq)
        self.fence_wait.wake_all()

    def fence_mark(self) -> int:
        """Return a mark covering every RMA issued so far."""
        return self.rma_last_issued

    def fence_pending(self, mark: int) -> bool:
        return any(seq <= mark for seq in self.rma_outstanding)

    # ------------------------------------------------------------------
    # poll
    # ------------------------------------------------------------------
    def poll_events(self) -> PollEvent:
        ev = PollEvent.NONE
        if self.rx_bytes > 0:
            ev |= PollEvent.SCIF_POLLIN
        if self.backlog is not None and len(self.backlog) > 0:
            ev |= PollEvent.SCIF_POLLIN
        if self.state is EpState.CONNECTED and not self.peer_closed:
            ev |= PollEvent.SCIF_POLLOUT
        if self.peer_closed:
            ev |= PollEvent.SCIF_POLLHUP
        if self.state is EpState.CLOSED:
            ev |= PollEvent.SCIF_POLLERR
        return ev

    # ------------------------------------------------------------------
    def mark_peer_closed(self) -> None:
        self.peer_closed = True
        self.recv_wait.wake_all()
        self.poll_wait.wake_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Endpoint #{self.id} {self.owner} {self.state.value} "
            f"port={self.port} peer={self.peer_addr}>"
        )
