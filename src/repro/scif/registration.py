"""Registered windows: the endpoint's registered address space (RAS).

``scif_register`` pins a local buffer and exposes it to the peer at an
offset in the endpoint's registered address space; RMA operations and
``scif_mmap`` then name memory by ``(endpoint, offset)``.  Pinning is what
guarantees DMA hits valid frames (§III, *Guest memory registration*).
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

from ..mem import PinnedPages, SGEntry, page_align_up
from .constants import Prot
from .errors import EADDRINUSE, EINVAL

__all__ = ["RegisteredWindow", "WindowRegistry"]


class RegisteredWindow:
    """One pinned, peer-visible memory window."""

    __slots__ = ("offset", "nbytes", "prot", "sg", "pinned", "label")

    def __init__(
        self,
        offset: int,
        nbytes: int,
        prot: Prot,
        sg: Sequence[SGEntry],
        pinned: Optional[PinnedPages] = None,
        label: str = "",
    ):
        self.offset = offset
        self.nbytes = nbytes
        self.prot = prot
        self.sg = list(sg)
        self.pinned = pinned
        self.label = label

    @property
    def end(self) -> int:
        return self.offset + self.nbytes

    def slice_sg(self, start: int, nbytes: int) -> list[SGEntry]:
        """SG covering ``[start, start+nbytes)`` relative to window offset 0
        of the RAS (``start`` is an absolute RAS offset)."""
        rel = start - self.offset
        out: list[SGEntry] = []
        pos = 0
        for entry in self.sg:
            seg_lo = pos
            seg_hi = pos + entry.nbytes
            lo = max(rel, seg_lo)
            hi = min(rel + nbytes, seg_hi)
            if lo < hi:
                out.append(SGEntry(entry.mem, entry.paddr + (lo - seg_lo), hi - lo))
            pos = seg_hi
        return out

    def release(self) -> None:
        if self.pinned is not None and self.pinned.active:
            self.pinned.unpin()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Window [{self.offset:#x},{self.end:#x}) {self.prot!r}>"


class WindowRegistry:
    """Per-endpoint RAS: non-overlapping windows, ordered by offset."""

    #: ephemeral offsets are handed out from here upward.
    DYNAMIC_BASE = 0x4000_0000

    def __init__(self) -> None:
        self._windows: list[RegisteredWindow] = []
        self._next_dynamic = self.DYNAMIC_BASE

    def __len__(self) -> int:
        return len(self._windows)

    def __iter__(self):
        return iter(self._windows)

    def add(
        self,
        nbytes: int,
        prot: Prot,
        sg: Sequence[SGEntry],
        offset: Optional[int] = None,
        pinned: Optional[PinnedPages] = None,
        label: str = "",
    ) -> RegisteredWindow:
        """Insert a window; allocates a dynamic offset when none is fixed."""
        if nbytes <= 0:
            raise EINVAL("window length must be positive")
        if sum(e.nbytes for e in sg) < nbytes:
            raise EINVAL("scatter-gather list shorter than window length")
        if offset is None:
            offset = self._next_dynamic
            self._next_dynamic += page_align_up(nbytes) + 4096
        elif offset % 4096:
            raise EINVAL(f"fixed window offset {offset:#x} not page aligned")
        if self._overlaps(offset, offset + nbytes):
            raise EADDRINUSE(f"window [{offset:#x},{offset + nbytes:#x}) overlaps")
        win = RegisteredWindow(offset, nbytes, prot, sg, pinned=pinned, label=label)
        starts = [w.offset for w in self._windows]
        self._windows.insert(bisect.bisect_left(starts, offset), win)
        return win

    def remove(self, offset: int) -> RegisteredWindow:
        for i, w in enumerate(self._windows):
            if w.offset == offset:
                del self._windows[i]
                w.release()
                return w
        raise EINVAL(f"no window registered at {offset:#x}")

    def clear(self) -> None:
        for w in self._windows:
            w.release()
        self._windows.clear()

    def _overlaps(self, start: int, end: int) -> bool:
        return any(w.offset < end and start < w.end for w in self._windows)

    def find(self, offset: int) -> Optional[RegisteredWindow]:
        starts = [w.offset for w in self._windows]
        i = bisect.bisect_right(starts, offset) - 1
        if i >= 0 and self._windows[i].offset <= offset < self._windows[i].end:
            return self._windows[i]
        return None

    def resolve(self, offset: int, nbytes: int, require: Prot) -> list[SGEntry]:
        """Resolve a RAS range (possibly spanning adjacent windows) to SG.

        Raises EINVAL on gaps and EACCES-flavoured EINVAL on protection
        mismatch (matching the driver's behaviour of failing the ioctl).
        """
        if nbytes <= 0:
            raise EINVAL("RMA length must be positive")
        out: list[SGEntry] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            win = self.find(pos)
            if win is None:
                raise EINVAL(f"RAS offset {pos:#x} not registered")
            if require and not (win.prot & require):
                raise EINVAL(
                    f"window at {win.offset:#x} lacks {require!r} permission"
                )
            take = min(end, win.end) - pos
            out.extend(win.slice_sg(pos, take))
            pos += take
        return out
