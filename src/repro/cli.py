"""Command-line interface: drive the simulated testbed from a shell.

    python -m repro micinfo
    python -m repro fig4 [--sizes 1,1024,65536]
    python -m repro fig5 [--sizes 1048576,268435456]
    python -m repro dgemm --n 2000 --threads 112 [--vm]
    python -m repro stream --n 20000000 --iters 10 [--vm]
    python -m repro trace [--out vphi_trace.json] [--check]
    python -m repro qos [--plan plan.json] [--check] [--assert-jain 0.95]
    python -m repro cluster [--hosts 2] [--cards 1] [--churn] [--check]
    python -m repro profile fig5 [--top 25] [--out fig5.pstats]

Every command builds the paper's testbed (one 3120P), runs the workload
deterministically, and prints the measured series.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main"]


def _parse_sizes(text: str) -> list[int]:
    return [int(s) for s in text.split(",") if s]


def _cmd_micinfo(args) -> int:
    from .mpss import micinfo
    from .system import Machine

    machine = Machine(cards=args.cards).boot()
    print(micinfo(machine.kernel.sysfs, cards=args.cards))
    return 0


def _cmd_fig4(args) -> int:
    from .analysis import fig4_latency, to_csv

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    series = fig4_latency(sizes)
    if args.csv:
        print(to_csv(series), end="")
        return 0
    print(f"{'size':>10}  {'native(us)':>11}  {'vPHI(us)':>10}")
    for size, nl, vl in series.rows:
        print(f"{size:>10}  {nl * 1e6:>11.1f}  {vl * 1e6:>10.1f}")
    return 0


def _cmd_fig5(args) -> int:
    from .analysis import fig5_throughput, to_csv

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    series = fig5_throughput(sizes)
    if args.csv:
        print(to_csv(series), end="")
        return 0
    print(f"{'size':>12}  {'native(GB/s)':>13}  {'vPHI(GB/s)':>11}  {'ratio':>6}")
    for size, nb, vb in series.rows:
        print(f"{size:>12}  {nb / 1e9:>13.2f}  {vb / 1e9:>11.2f}  {vb / nb:>6.0%}")
    return 0


def _launch(args, binary, argv) -> int:
    from .coi import start_coi_daemon
    from .mpss import micnativeloadex
    from .system import Machine
    from .workloads.microbench import ClientContext

    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    if args.vm:
        vm = machine.create_vm("vm0")
        ctx = ClientContext.guest(vm)
    else:
        ctx = ClientContext.native(machine)
    p = ctx.spawn(micnativeloadex(machine, ctx, binary, argv=argv))
    machine.run()
    res = p.value
    where = "VM (vPHI)" if args.vm else "host"
    print(f"{binary.name} from {where}: status={res.status}")
    print(f"  total    : {res.total_time:.6f} s")
    print(f"  transfer : {res.transfer_time:.6f} s "
          f"({res.transferred_bytes >> 20} MB of binaries)")
    print(f"  compute  : {res.compute_time:.6f} s")
    for key in ("c_checksum", "c_expected", "triad_gbps"):
        if key in res.exit_record:
            print(f"  {key:<9}: {res.exit_record[key]:.6g}")
    return 0 if res.status == 0 else 1


def _cmd_dgemm(args) -> int:
    from .workloads import DGEMM_BINARY

    return _launch(args, DGEMM_BINARY, [str(args.n), str(args.threads)])


def _cmd_stream(args) -> int:
    from .workloads import STREAM_BINARY

    return _launch(args, STREAM_BINARY,
                   [str(args.n), str(args.iters), str(args.threads)])


def _cmd_trace(args) -> int:
    """Run the Fig 4 guest workload with spans on; export a Chrome trace.

    The exported JSON loads in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: one track per request tag, one slice per
    lifecycle phase.  ``--check`` additionally verifies the span
    invariants (gap-free phases summing to end-to-end latency) and the
    trace-event schema, failing the command on any violation.
    """
    import json

    from .analysis import (
        check_span_invariants,
        render_span_breakdown,
        span_breakdown,
        validate_chrome_trace,
    )
    from .system import Machine
    from .workloads import ClientContext, sendrecv_latency

    sizes = _parse_sizes(args.sizes) if args.sizes else [1, 1024, 65536]
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    sendrecv_latency(machine, ClientContext.guest(vm), sizes)

    doc = vm.tracer.export_chrome_trace()
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1)
    events = doc["traceEvents"]
    spans = len(vm.tracer.spans)
    print(f"wrote {args.out}: {len(events)} trace events from {spans} spans")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    print()
    print(render_span_breakdown(span_breakdown(vm.tracer)))

    if args.check:
        problems = check_span_invariants(vm.tracer) + validate_chrome_trace(doc)
        if problems:
            print()
            for p in problems:
                print(f"FAIL {p}", file=sys.stderr)
            return 1
        print()
        print(f"ok: span invariants hold and {args.out} is valid trace-event JSON")
    return 0


def _cmd_qos(args) -> int:
    """Run (or just validate) an open-loop multi-tenant QoS plan.

    With ``--plan FILE`` the plan comes from JSON; otherwise a built-in
    oversubscription smoke plan is generated from ``--tenants`` /
    ``--policy`` / ``--oversub``.  ``--check`` validates the plan file,
    runs it, asserts the harness conservation invariant (every arrival
    got a typed completion: done, shed, or error), and exits non-zero
    on any violation — the qos-smoke CI step is exactly this command
    plus ``--assert-jain`` / ``--assert-shed``.
    """
    from .analysis import qos_stats, render_qos
    from .traffic import TrafficPlan, run_plan
    from .traffic.plan import plan_check

    try:
        if args.plan:
            plan = TrafficPlan.from_file(args.plan)
        else:
            plan = TrafficPlan.smoke(
                tenants=args.tenants, policy=args.policy,
                oversubscription=args.oversub, duration=args.duration,
                seed=args.seed,
            )
    except (ValueError, OSError) as exc:
        print(f"FAIL invalid plan: {exc}", file=sys.stderr)
        return 1
    if args.check:
        for line in plan_check(plan):
            print(line)
        print()
    result = run_plan(plan)
    report = qos_stats(result)
    rendered = render_qos(report, limit=args.limit)
    print(rendered)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
        print(f"\nwrote SLO report to {args.out}")
    failures = []
    if args.check:
        try:
            result.check_conservation()
        except AssertionError as exc:
            failures.append(str(exc))
    if args.assert_jain is not None and report.weighted_jain < args.assert_jain:
        failures.append(
            f"weighted Jain's index {report.weighted_jain:.4f} "
            f"< required {args.assert_jain}"
        )
    if args.assert_shed and report.total_shed == 0:
        failures.append(
            "admission control shed nothing despite oversubscription"
        )
    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    if args.check:
        print("\nok: plan valid, every arrival got a typed completion")
    return 0


def _cmd_cluster(args) -> int:
    """Run a small cluster scenario: place, load, live-migrate, churn.

    Boots ``--hosts`` x ``--cards`` machines, places ``--vms`` echo
    tenants by the ``--placement`` policy, exchanges traffic, then
    live-migrates the first tenant to a scheduler-picked destination
    mid-stream (and, with ``--churn``, hot-unplugs its new card so the
    scheduler has to move it again).  Prints placements and the
    migration report.  ``--check`` asserts the run's invariants —
    migration landed (session ACTIVE on the destination, traffic
    resumed, no stale arbiter state on the source) — and exits
    non-zero on any violation; the cluster-smoke CI step is exactly
    ``python -m repro cluster --check``.
    """
    from .analysis.cluster import render_migration
    from .cluster import Cluster
    from .scif.errors import ECONNRESET, ENOTCONN
    from .vphi import VPhiConfig

    cl = Cluster(hosts=args.hosts, cards_per_host=args.cards,
                 placement=args.placement)
    cl.boot()
    PORT = 3000

    def spawn_peer(ref):
        m = cl.machine(ref)
        lib = m.scif(m.card_process(f"peer-{ref}", card=ref.card))

        def echo(conn):
            try:
                while True:
                    data = yield from lib.recv(conn, 64)
                    yield from lib.send(conn, data.tobytes()[::-1])
            except (ECONNRESET, ENOTCONN):
                return  # tenant migrated away or closed

        def server():
            ep = yield from lib.open()
            yield from lib.bind(ep, PORT)
            yield from lib.listen(ep)
            # concurrent accept loop: a migrated-in tenant must not wait
            # behind an idle resident connection
            n = 0
            while True:
                conn, _ = yield from lib.accept(ep)
                cl.sim.spawn(echo(conn), name=f"echo-{ref}-{n}")
                n += 1

        cl.sim.spawn(server(), name=f"peer-{ref}")

    for ref in cl.cards:
        spawn_peer(ref)

    cfg = VPhiConfig(recovery_policy="queue", backend_workers=2)
    vms, echoes = [], {}
    for i in range(args.vms):
        vms.append(cl.create_vm(f"vm{i}", vphi_config=cfg,
                                arbiter_policy="wfq"))

    def tenant(vm, rounds=6):
        lib = vm.vphi.libscif(vm.guest_process("load"))
        ep = yield from lib.open()
        ref = cl.placement_of(vm.name)
        yield from lib.connect(ep, (cl.node_of(ref), PORT))
        payload = bytes(range(64))
        n = 0
        for _ in range(rounds):
            try:
                yield from lib.send(ep, payload)
                got = (yield from lib.recv(ep, 64)).tobytes()
                if got == payload[::-1]:
                    n += 1
            except (ECONNRESET, ENOTCONN):
                break
            yield cl.sim.timeout(2e-3)
        echoes[vm.name] = n

    for vm in vms:
        cl.sim.spawn(tenant(vm), name=f"load-{vm.name}")

    def director():
        yield cl.sim.timeout(4e-3)  # mid-stream
        yield from cl.migrate(vms[0])
        if args.churn:
            yield cl.sim.timeout(2e-3)
            ref = cl.placement_of(vms[0].name)
            yield from cl.hot_unplug(ref.host, ref.card)

    cl.sim.spawn(director(), name="director")
    cl.run(until=1.0)

    for name, ref in sorted(cl.placements.items()):
        print(f"  {name:<8} on {ref}  "
              f"echoes={echoes.get(name, 0)}")
    print()
    print(render_migration(cl))

    if not args.check:
        return 0
    failures = []
    want_migrations = 2 if args.churn else 1
    if len(cl.migrations) != want_migrations:
        failures.append(
            f"expected {want_migrations} migrations, saw {len(cl.migrations)}"
        )
    for rep in cl.migrations:
        if rep.broken:
            failures.append(f"migration of {rep.vm} broke the session")
        if rep.replayed_ops < 2:
            failures.append(
                f"migration of {rep.vm} replayed only {rep.replayed_ops} ops"
            )
        if rep.downtime <= 0:
            failures.append(f"migration of {rep.vm} reports zero downtime")
    if cl.evicted:
        failures.append(f"VMs evicted: {cl.evicted}")
    for vm in vms:
        ses = vm.vphi.frontend.session
        if ses.state != "active":
            failures.append(f"{vm.name} session is {ses.state}, not active")
        if vm.vphi.frontend._inflight:
            failures.append(f"{vm.name} stranded in-flight tags")
        if echoes.get(vm.name, 0) < 6:
            failures.append(
                f"{vm.name} completed {echoes.get(vm.name, 0)}/6 echoes"
            )
    migrated = vms[0].name
    src = cl.migrations[-1].source if cl.migrations else None
    if src is not None and src != cl.placements.get(migrated):
        arb = cl.machine(src).arbiter_for(src.card)
        if migrated in arb._queues or migrated in arb._finish:
            failures.append(
                f"source arbiter {arb.name} kept stale state for {migrated}"
            )
    for m in cl.machines:
        for arb in m.card_arbiters.values():
            if arb.free != arb.slots:
                failures.append(
                    f"{arb.name} leaked credits: free={arb.free} "
                    f"slots={arb.slots}"
                )
    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("\nok: migration landed, sessions active, arbiters clean")
    return 0


#: scenarios ``profile`` can drive: name -> zero-arg runner factory.
#: Each runs one figure's full deterministic workload (the same code
#: path the benchmark gates measure), so the profile reflects the real
#: hot path, not a synthetic loop.
def _profile_scenarios():
    from .analysis import fig4_latency, fig5_throughput

    return {
        "fig4": lambda sizes: fig4_latency(sizes),
        "fig5": lambda sizes: fig5_throughput(sizes),
    }


def _cmd_profile(args) -> int:
    """Profile one figure scenario under cProfile.

    Prints the top functions (``--sort tottime`` by default — the
    optimization discipline here is "attack the measured top of the
    profile") and optionally dumps the raw stats for snakeviz/pstats
    (``--out``).
    """
    import cProfile
    import pstats

    scenarios = _profile_scenarios()
    runner = scenarios[args.scenario]
    sizes = _parse_sizes(args.sizes) if args.sizes else None
    prof = cProfile.Profile()
    prof.enable()
    runner(sizes)
    prof.disable()
    if args.out:
        prof.dump_stats(args.out)
        print(f"wrote raw profile to {args.out}")
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vPHI reproduction: simulated Xeon Phi virtualization testbed",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("micinfo", help="print card inventory")
    p.add_argument("--cards", type=int, default=1)
    p.set_defaults(fn=_cmd_micinfo)

    p = sub.add_parser("fig4", help="send-recv latency, native vs vPHI")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="remote-read throughput, native vs vPHI")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("dgemm", help="launch dgemm via micnativeloadex")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--threads", type=int, default=112)
    p.add_argument("--vm", action="store_true", help="launch from inside a VM")
    p.set_defaults(fn=_cmd_dgemm)

    p = sub.add_parser("stream", help="launch the STREAM triad kernel")
    p.add_argument("--n", type=int, default=10_000_000)
    p.add_argument("--iters", type=int, default=10)
    p.add_argument("--threads", type=int, default=112)
    p.add_argument("--vm", action="store_true", help="launch from inside a VM")
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of the vPHI request lifecycle"
    )
    p.add_argument("--sizes", help="comma-separated byte sizes (default 1,1024,65536)")
    p.add_argument("--out", default="vphi_trace.json", help="output JSON path")
    p.add_argument(
        "--check",
        action="store_true",
        help="verify span invariants and trace-event schema; exit 1 on violation",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "cluster",
        help="run a cluster placement + live-migration scenario",
    )
    p.add_argument("--hosts", type=int, default=2)
    p.add_argument("--cards", type=int, default=1,
                   help="cards per host (default 1)")
    p.add_argument("--vms", type=int, default=3)
    p.add_argument("--placement", choices=("spread", "pack"),
                   default="spread")
    p.add_argument("--churn", action="store_true",
                   help="hot-unplug the migrated VM's card mid-run")
    p.add_argument("--check", action="store_true",
                   help="assert migration/arbiter invariants, exit "
                        "non-zero on violation")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "qos", help="run an open-loop multi-tenant QoS plan, print SLO table"
    )
    p.add_argument("--plan", help="traffic plan JSON file (default: built-in "
                                  "oversubscription smoke plan)")
    p.add_argument("--check", action="store_true",
                   help="validate the plan, run it, and assert every arrival "
                        "got a typed completion; exit 1 on violation")
    p.add_argument("--tenants", type=int, default=8,
                   help="built-in plan: number of tenant VMs (default 8)")
    p.add_argument("--policy", default="wfq",
                   choices=["rr", "wfq", "priority"],
                   help="arbiter policy for the built-in plan (default wfq)")
    p.add_argument("--oversub", type=float, default=10.0,
                   help="built-in plan: offered load as a multiple of card "
                        "capacity (default 10)")
    p.add_argument("--duration", type=float, default=0.02,
                   help="measurement window in simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=16,
                   help="max tenant rows to print (default 16)")
    p.add_argument("--out", help="also write the rendered report here")
    p.add_argument("--assert-jain", type=float, default=None,
                   help="fail unless the share-weighted Jain index is >= X")
    p.add_argument("--assert-shed", action="store_true",
                   help="fail unless admission control shed at least one "
                        "arrival")
    p.set_defaults(fn=_cmd_qos)

    p = sub.add_parser(
        "profile", help="run one figure scenario under cProfile"
    )
    p.add_argument("scenario", choices=["fig4", "fig5"],
                   help="which figure's workload to profile")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--top", type=int, default=25,
                   help="number of functions to print (default 25)")
    p.add_argument("--sort", default="tottime",
                   choices=["tottime", "cumulative", "calls"],
                   help="pstats sort order (default tottime)")
    p.add_argument("--out", help="dump raw .pstats data to this path")
    p.set_defaults(fn=_cmd_profile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
