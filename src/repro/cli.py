"""Command-line interface: drive the simulated testbed from a shell.

    python -m repro micinfo
    python -m repro fig4 [--sizes 1,1024,65536]
    python -m repro fig5 [--sizes 1048576,268435456]
    python -m repro dgemm --n 2000 --threads 112 [--vm]
    python -m repro stream --n 20000000 --iters 10 [--vm]
    python -m repro trace [--out vphi_trace.json] [--check]
    python -m repro qos [--plan plan.json] [--check] [--assert-jain 0.95]
    python -m repro cluster [--hosts 2] [--cards 1] [--churn] [--check]
    python -m repro pepc [--card 0|--core 0-3|--vm] [--pstate 2] [--tdp 200]
    python -m repro profile fig5 [--top 25] [--out fig5.pstats]

Every command builds the paper's testbed (one 3120P), runs the workload
deterministically, and prints the measured series.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main"]


def _parse_sizes(text: str) -> list[int]:
    return [int(s) for s in text.split(",") if s]


def _cmd_micinfo(args) -> int:
    from .mpss import micinfo
    from .system import Machine

    machine = Machine(cards=args.cards).boot()
    print(micinfo(machine.kernel.sysfs, cards=args.cards))
    return 0


def _cmd_fig4(args) -> int:
    from .analysis import fig4_latency, to_csv

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    series = fig4_latency(sizes)
    if args.csv:
        print(to_csv(series), end="")
        return 0
    print(f"{'size':>10}  {'native(us)':>11}  {'vPHI(us)':>10}")
    for size, nl, vl in series.rows:
        print(f"{size:>10}  {nl * 1e6:>11.1f}  {vl * 1e6:>10.1f}")
    return 0


def _cmd_fig5(args) -> int:
    from .analysis import fig5_throughput, to_csv

    sizes = _parse_sizes(args.sizes) if args.sizes else None
    series = fig5_throughput(sizes)
    if args.csv:
        print(to_csv(series), end="")
        return 0
    print(f"{'size':>12}  {'native(GB/s)':>13}  {'vPHI(GB/s)':>11}  {'ratio':>6}")
    for size, nb, vb in series.rows:
        print(f"{size:>12}  {nb / 1e9:>13.2f}  {vb / 1e9:>11.2f}  {vb / nb:>6.0%}")
    return 0


def _launch(args, binary, argv) -> int:
    from .coi import start_coi_daemon
    from .mpss import micnativeloadex
    from .system import Machine
    from .workloads.microbench import ClientContext

    machine = Machine(cards=1).boot()
    start_coi_daemon(machine, card=0)
    if args.vm:
        vm = machine.create_vm("vm0")
        ctx = ClientContext.guest(vm)
    else:
        ctx = ClientContext.native(machine)
    p = ctx.spawn(micnativeloadex(machine, ctx, binary, argv=argv))
    machine.run()
    res = p.value
    where = "VM (vPHI)" if args.vm else "host"
    print(f"{binary.name} from {where}: status={res.status}")
    print(f"  total    : {res.total_time:.6f} s")
    print(f"  transfer : {res.transfer_time:.6f} s "
          f"({res.transferred_bytes >> 20} MB of binaries)")
    print(f"  compute  : {res.compute_time:.6f} s")
    for key in ("c_checksum", "c_expected", "triad_gbps"):
        if key in res.exit_record:
            print(f"  {key:<9}: {res.exit_record[key]:.6g}")
    return 0 if res.status == 0 else 1


def _cmd_dgemm(args) -> int:
    from .workloads import DGEMM_BINARY

    return _launch(args, DGEMM_BINARY, [str(args.n), str(args.threads)])


def _cmd_stream(args) -> int:
    from .workloads import STREAM_BINARY

    return _launch(args, STREAM_BINARY,
                   [str(args.n), str(args.iters), str(args.threads)])


def _cmd_trace(args) -> int:
    """Run the Fig 4 guest workload with spans on; export a Chrome trace.

    The exported JSON loads in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: one track per request tag, one slice per
    lifecycle phase.  ``--check`` additionally verifies the span
    invariants (gap-free phases summing to end-to-end latency) and the
    trace-event schema, failing the command on any violation.
    """
    import json

    from .analysis import (
        check_span_invariants,
        render_span_breakdown,
        span_breakdown,
        validate_chrome_trace,
    )
    from .system import Machine
    from .workloads import ClientContext, sendrecv_latency

    sizes = _parse_sizes(args.sizes) if args.sizes else [1, 1024, 65536]
    machine = Machine(cards=1).boot()
    vm = machine.create_vm("vm0")
    sendrecv_latency(machine, ClientContext.guest(vm), sizes)

    doc = vm.tracer.export_chrome_trace()
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1)
    events = doc["traceEvents"]
    spans = len(vm.tracer.spans)
    print(f"wrote {args.out}: {len(events)} trace events from {spans} spans")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    print()
    print(render_span_breakdown(span_breakdown(vm.tracer)))

    if args.check:
        problems = check_span_invariants(vm.tracer) + validate_chrome_trace(doc)
        if problems:
            print()
            for p in problems:
                print(f"FAIL {p}", file=sys.stderr)
            return 1
        print()
        print(f"ok: span invariants hold and {args.out} is valid trace-event JSON")
    return 0


def _cmd_qos(args) -> int:
    """Run (or just validate) an open-loop multi-tenant QoS plan.

    With ``--plan FILE`` the plan comes from JSON; otherwise a built-in
    oversubscription smoke plan is generated from ``--tenants`` /
    ``--policy`` / ``--oversub``.  ``--check`` validates the plan file,
    runs it, asserts the harness conservation invariant (every arrival
    got a typed completion: done, shed, or error), and exits non-zero
    on any violation — the qos-smoke CI step is exactly this command
    plus ``--assert-jain`` / ``--assert-shed``.
    """
    from .analysis import qos_stats, render_qos
    from .traffic import TrafficPlan, run_plan
    from .traffic.plan import plan_check

    try:
        if args.plan:
            plan = TrafficPlan.from_file(args.plan)
        else:
            plan = TrafficPlan.smoke(
                tenants=args.tenants, policy=args.policy,
                oversubscription=args.oversub, duration=args.duration,
                seed=args.seed,
            )
    except (ValueError, OSError) as exc:
        print(f"FAIL invalid plan: {exc}", file=sys.stderr)
        return 1
    if args.check:
        for line in plan_check(plan):
            print(line)
        print()
    result = run_plan(plan)
    report = qos_stats(result)
    rendered = render_qos(report, limit=args.limit)
    print(rendered)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
        print(f"\nwrote SLO report to {args.out}")
    failures = []
    if args.check:
        try:
            result.check_conservation()
        except AssertionError as exc:
            failures.append(str(exc))
    if args.assert_jain is not None and report.weighted_jain < args.assert_jain:
        failures.append(
            f"weighted Jain's index {report.weighted_jain:.4f} "
            f"< required {args.assert_jain}"
        )
    if args.assert_shed and report.total_shed == 0:
        failures.append(
            "admission control shed nothing despite oversubscription"
        )
    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    if args.check:
        print("\nok: plan valid, every arrival got a typed completion")
    return 0


def _cmd_cluster(args) -> int:
    """Run a small cluster scenario: place, load, live-migrate, churn.

    Boots ``--hosts`` x ``--cards`` machines, places ``--vms`` echo
    tenants by the ``--placement`` policy, exchanges traffic, then
    live-migrates the first tenant to a scheduler-picked destination
    mid-stream (and, with ``--churn``, hot-unplugs its new card so the
    scheduler has to move it again).  Prints placements and the
    migration report.  ``--check`` asserts the run's invariants —
    migration landed (session ACTIVE on the destination, traffic
    resumed, no stale arbiter state on the source) — and exits
    non-zero on any violation; the cluster-smoke CI step is exactly
    ``python -m repro cluster --check``.
    """
    from .analysis.cluster import render_migration
    from .cluster import Cluster
    from .scif.errors import ECONNRESET, ENOTCONN
    from .vphi import VPhiConfig

    cl = Cluster(hosts=args.hosts, cards_per_host=args.cards,
                 placement=args.placement)
    cl.boot()
    PORT = 3000

    def spawn_peer(ref):
        m = cl.machine(ref)
        lib = m.scif(m.card_process(f"peer-{ref}", card=ref.card))

        def echo(conn):
            try:
                while True:
                    data = yield from lib.recv(conn, 64)
                    yield from lib.send(conn, data.tobytes()[::-1])
            except (ECONNRESET, ENOTCONN):
                return  # tenant migrated away or closed

        def server():
            ep = yield from lib.open()
            yield from lib.bind(ep, PORT)
            yield from lib.listen(ep)
            # concurrent accept loop: a migrated-in tenant must not wait
            # behind an idle resident connection
            n = 0
            while True:
                conn, _ = yield from lib.accept(ep)
                cl.sim.spawn(echo(conn), name=f"echo-{ref}-{n}")
                n += 1

        cl.sim.spawn(server(), name=f"peer-{ref}")

    for ref in cl.cards:
        spawn_peer(ref)

    cfg = VPhiConfig(recovery_policy="queue", backend_workers=2)
    vms, echoes = [], {}
    for i in range(args.vms):
        vms.append(cl.create_vm(f"vm{i}", vphi_config=cfg,
                                arbiter_policy="wfq"))

    def tenant(vm, rounds=6):
        lib = vm.vphi.libscif(vm.guest_process("load"))
        ep = yield from lib.open()
        ref = cl.placement_of(vm.name)
        yield from lib.connect(ep, (cl.node_of(ref), PORT))
        payload = bytes(range(64))
        n = 0
        for _ in range(rounds):
            try:
                yield from lib.send(ep, payload)
                got = (yield from lib.recv(ep, 64)).tobytes()
                if got == payload[::-1]:
                    n += 1
            except (ECONNRESET, ENOTCONN):
                break
            yield cl.sim.timeout(2e-3)
        echoes[vm.name] = n

    for vm in vms:
        cl.sim.spawn(tenant(vm), name=f"load-{vm.name}")

    def director():
        yield cl.sim.timeout(4e-3)  # mid-stream
        yield from cl.migrate(vms[0])
        if args.churn:
            yield cl.sim.timeout(2e-3)
            ref = cl.placement_of(vms[0].name)
            yield from cl.hot_unplug(ref.host, ref.card)

    cl.sim.spawn(director(), name="director")
    cl.run(until=1.0)

    for name, ref in sorted(cl.placements.items()):
        print(f"  {name:<8} on {ref}  "
              f"echoes={echoes.get(name, 0)}")
    print()
    print(render_migration(cl))

    if not args.check:
        return 0
    failures = []
    want_migrations = 2 if args.churn else 1
    if len(cl.migrations) != want_migrations:
        failures.append(
            f"expected {want_migrations} migrations, saw {len(cl.migrations)}"
        )
    for rep in cl.migrations:
        if rep.broken:
            failures.append(f"migration of {rep.vm} broke the session")
        if rep.replayed_ops < 2:
            failures.append(
                f"migration of {rep.vm} replayed only {rep.replayed_ops} ops"
            )
        if rep.downtime <= 0:
            failures.append(f"migration of {rep.vm} reports zero downtime")
    if cl.evicted:
        failures.append(f"VMs evicted: {cl.evicted}")
    for vm in vms:
        ses = vm.vphi.frontend.session
        if ses.state != "active":
            failures.append(f"{vm.name} session is {ses.state}, not active")
        if vm.vphi.frontend._inflight:
            failures.append(f"{vm.name} stranded in-flight tags")
        if echoes.get(vm.name, 0) < 6:
            failures.append(
                f"{vm.name} completed {echoes.get(vm.name, 0)}/6 echoes"
            )
    migrated = vms[0].name
    src = cl.migrations[-1].source if cl.migrations else None
    if src is not None and src != cl.placements.get(migrated):
        arb = cl.machine(src).arbiter_for(src.card)
        if migrated in arb._queues or migrated in arb._finish:
            failures.append(
                f"source arbiter {arb.name} kept stale state for {migrated}"
            )
    for m in cl.machines:
        for arb in m.card_arbiters.values():
            if arb.free != arb.slots:
                failures.append(
                    f"{arb.name} leaked credits: free={arb.free} "
                    f"slots={arb.slots}"
                )
    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("\nok: migration landed, sessions active, arbiters clean")
    return 0


def _parse_cores(text: str) -> list[int]:
    """``"0-3,7"`` -> ``[0, 1, 2, 3, 7]``."""
    cores: list[int] = []
    for part in text.split(","):
        if not part:
            continue
        if "-" in part:
            lo, hi = part.split("-", 1)
            cores.extend(range(int(lo), int(hi) + 1))
        else:
            cores.append(int(part))
    return cores


def _render_pepc(rows) -> str:
    lines = [
        f"{'host':>4} {'card':<6} {'sku':<6} {'state':<8} {'req-P':>6} "
        f"{'eff(kHz)':>15} {'Cst':>4} {'cap(W)':>7} {'unc':>5} "
        f"{'power(W)':>9} {'temp(C)':>8} {'thr':>4}"
    ]
    for r in rows:
        req = sorted(set(r["requested_pstate"].values()))
        req_s = f"P{req[0]}" if len(req) == 1 else f"P{req[0]}-P{req[-1]}"
        eff = sorted(set(r["effective_khz"].values()))
        eff_s = (f"{eff[0]}" if len(eff) == 1 else f"{eff[0]}-{eff[-1]}")
        lines.append(
            f"{r['host']:>4} {r['card']:<6} {r['sku']:<6} {r['state']:<8} "
            f"{req_s:>6} {eff_s:>15} {'on' if r['cstates_enabled'] else 'off':>4} "
            f"{r['tdp_cap_w']:>7.0f} {r['uncore_mult']:>5.2f} "
            f"{r['power_w']:>9.1f} {r['temp_c']:>8.1f} "
            f"{'yes' if r['throttled'] else 'no':>4}"
        )
    return "\n".join(lines)


def _pepc_check() -> int:
    """The pepc-smoke conformance scenario: drive the closed throttle
    loop end to end and assert its contract.  Exit 1 on any violation."""
    from .analysis import power_stats
    from .phi import PowerConfig, Scope
    from .sim import SimError
    from .system import Machine

    failures: list[str] = []
    FLOPS, THREADS = 4e11, 224

    def dgemm_run(machine, probe_at=None, probe_out=None):
        uos = machine.uos(0)
        out = {}

        def drive():
            job = yield from uos.run_compute(FLOPS, THREADS, efficiency=0.8,
                                             name="dgemm")
            out["t"] = job.finished_at - job.started_at

        if probe_at is not None:
            def probe():
                yield machine.sim.timeout(probe_at)
                power = machine.devices[0].power
                power.refresh()
                probe_out["watts"] = power.power_watts()
                probe_out["khz"] = int(
                    machine.devices[0].sysfs_attrs()["cores_frequency"])

            machine.sim.spawn(probe(), name="pepc-probe")
        machine.sim.spawn(drive(), name="pepc-drive")
        machine.run()
        return out["t"]

    # 1. baseline: default cap never throttles; sysfs is kHz and live
    m = Machine(cards=1, power_model="knc").boot()
    dev = m.devices[0]
    khz = int(dev.sysfs_attrs()["cores_frequency"])
    if khz != int(dev.sku.clock_hz / 1e3):
        failures.append(f"sysfs cores_frequency {khz} != SKU kHz at P0")
    t_base = dgemm_run(m)
    if dev.power.throttled_time > 0:
        failures.append("throttled at the default (SKU TDP) cap")
    print(f"baseline dgemm: {t_base:.6f} s at P0, no throttle")

    # 2. P-state monotonicity: deeper requested state => slower, never faster
    times = [t_base]
    for pstate in (2, len(dev.power.pstates) - 1):
        mp = Machine(cards=1, power_model="knc").boot()
        mp.pepc().set_pstate(pstate, Scope.one_card(0))
        times.append(dgemm_run(mp))
    if not (times[0] < times[1] < times[2]):
        failures.append(f"P-state ladder not monotone: {times}")
    print(f"pstate sweep dgemm: {['%.6f' % t for t in times]}")

    # 3. TDP cap: converges under the cap with nonzero throttle residency
    mc = Machine(cards=1, power_model="knc").boot()
    mc.pepc().set_tdp(210.0, Scope.one_card(0))
    mid = {}
    t_cap = dgemm_run(mc, probe_at=0.3, probe_out=mid)
    power = mc.devices[0].power
    report = power_stats(mc)
    if power.throttled_time <= 0:
        failures.append("210 W cap produced zero throttle residency")
    if t_cap <= t_base:
        failures.append(f"capped dgemm not slower: {t_cap} vs {t_base}")
    # power at the mid-run working point (floor in force) fits the cap
    if mid["watts"] > 210.0 + 1e-6:
        failures.append(f"capped working point draws {mid['watts']:.1f} W > 210")
    # and the live sysfs frequency reflects the throttle while it holds
    if mid["khz"] >= int(mc.devices[0].sku.clock_hz / 1e3):
        failures.append(f"sysfs frequency {mid['khz']} kHz not throttled")
    print(f"capped dgemm: {t_cap:.6f} s, working point {mid['watts']:.1f} W "
          f"at {mid['khz']} kHz, "
          f"residency {report.cards[0].throttle_residency:.0%}")

    # 4. thermal trip + hysteresis (aggressive thermals to trip quickly)
    hot = PowerConfig(thermal_tau_s=0.005, trip_c=80.0,
                      trip_hysteresis_c=5.0,
                      thermal_resistance_c_per_w=0.15)
    mt = Machine(cards=1, power_model="knc", power_config=hot).boot()
    dgemm_run(mt)
    pm = mt.devices[0].power
    if pm.thermal_trips < 1:
        failures.append("aggressive thermals never tripped")
    if pm.pstate_residency[-1] <= 0:
        failures.append("thermal trip never forced the deepest P-state")
    print(f"thermal: {pm.thermal_trips} trips, max {pm.max_temp_c:.1f} C")

    # 5. reset restores boot defaults (cap, requests, thermal state)
    mr = Machine(cards=1, power_model="knc").boot()
    ctl = mr.pepc()
    ctl.set_tdp(150.0)
    ctl.set_pstate(3)
    dgemm_run(mr)

    def do_reset():
        yield from mr.devices[0].reset(mr.fabric)

    mr.sim.spawn(do_reset(), name="pepc-reset")
    mr.run()
    pr = mr.devices[0].power
    if pr.tdp_cap != pr.default_cap:
        failures.append(f"reset kept the {pr.tdp_cap} W cap")
    if any(pr.requested) or pr.throttle_idx != 0 or pr.thermal_throttled:
        failures.append("reset kept pre-reset P-state/throttle state")
    if pr.temp_c != pr.config.ambient_c:
        failures.append("reset kept the thermal accumulator")
    print("reset: cap/P-state/thermal state restored to boot defaults")

    # 6. addressing an unpowered card is a typed error, not a no-op
    m0 = Machine(cards=1).boot()
    try:
        m0.pepc().info()
        failures.append("pepc accepted a power_model='none' machine")
    except SimError:
        pass

    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("\nok: throttle loop converges, trips recover, reset restores defaults")
    return 0


def _cmd_pepc(args) -> int:
    """Query/set card power properties with pepc-style scopes.

    Boots a power-modeled testbed, applies any ``--pstate``/``--tdp``/
    ``--cstates``/``--uncore`` settings at the scope named by
    ``--card``/``--core``/``--vm`` (default: global), then prints the
    resulting property table.  ``--check`` instead runs the closed-loop
    conformance scenario (the pepc-smoke CI gate).
    """
    from .phi import Scope
    from .system import Machine

    if args.check:
        return _pepc_check()

    machine = Machine(cards=args.cards, card_model=args.sku,
                      power_model="knc").boot()
    vms = None
    if args.vm:
        vms = {"vm0": machine.create_vm("vm0")}
    ctl = machine.pepc(vms=vms)
    if args.vm:
        scope = Scope.one_vm("vm0")
    elif args.core is not None:
        scope = Scope.one_core(_parse_cores(args.core), card=args.card or 0)
    elif args.card is not None:
        scope = Scope.one_card(args.card)
    else:
        scope = Scope.everything()
    if args.pstate is not None:
        ctl.set_pstate(args.pstate, scope)
    if args.tdp is not None:
        ctl.set_tdp(args.tdp, scope)
    if args.cstates is not None:
        ctl.set_cstates(args.cstates == "on", scope)
    if args.uncore is not None:
        ctl.set_uncore(args.uncore, scope)
    print(f"scope: {scope}")
    print(_render_pepc(ctl.info()))
    return 0


#: scenarios ``profile`` can drive: name -> zero-arg runner factory.
#: Each runs one figure's full deterministic workload (the same code
#: path the benchmark gates measure), so the profile reflects the real
#: hot path, not a synthetic loop.
def _profile_scenarios():
    from .analysis import fig4_latency, fig5_throughput

    return {
        "fig4": lambda sizes: fig4_latency(sizes),
        "fig5": lambda sizes: fig5_throughput(sizes),
    }


def _cmd_profile(args) -> int:
    """Profile one figure scenario under cProfile.

    Prints the top functions (``--sort tottime`` by default — the
    optimization discipline here is "attack the measured top of the
    profile") and optionally dumps the raw stats for snakeviz/pstats
    (``--out``).
    """
    import cProfile
    import pstats

    scenarios = _profile_scenarios()
    runner = scenarios[args.scenario]
    sizes = _parse_sizes(args.sizes) if args.sizes else None
    prof = cProfile.Profile()
    prof.enable()
    runner(sizes)
    prof.disable()
    if args.out:
        prof.dump_stats(args.out)
        print(f"wrote raw profile to {args.out}")
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vPHI reproduction: simulated Xeon Phi virtualization testbed",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("micinfo", help="print card inventory")
    p.add_argument("--cards", type=int, default=1)
    p.set_defaults(fn=_cmd_micinfo)

    p = sub.add_parser("fig4", help="send-recv latency, native vs vPHI")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="remote-read throughput, native vs vPHI")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("dgemm", help="launch dgemm via micnativeloadex")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--threads", type=int, default=112)
    p.add_argument("--vm", action="store_true", help="launch from inside a VM")
    p.set_defaults(fn=_cmd_dgemm)

    p = sub.add_parser("stream", help="launch the STREAM triad kernel")
    p.add_argument("--n", type=int, default=10_000_000)
    p.add_argument("--iters", type=int, default=10)
    p.add_argument("--threads", type=int, default=112)
    p.add_argument("--vm", action="store_true", help="launch from inside a VM")
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of the vPHI request lifecycle"
    )
    p.add_argument("--sizes", help="comma-separated byte sizes (default 1,1024,65536)")
    p.add_argument("--out", default="vphi_trace.json", help="output JSON path")
    p.add_argument(
        "--check",
        action="store_true",
        help="verify span invariants and trace-event schema; exit 1 on violation",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "cluster",
        help="run a cluster placement + live-migration scenario",
    )
    p.add_argument("--hosts", type=int, default=2)
    p.add_argument("--cards", type=int, default=1,
                   help="cards per host (default 1)")
    p.add_argument("--vms", type=int, default=3)
    p.add_argument("--placement", choices=("spread", "pack"),
                   default="spread")
    p.add_argument("--churn", action="store_true",
                   help="hot-unplug the migrated VM's card mid-run")
    p.add_argument("--check", action="store_true",
                   help="assert migration/arbiter invariants, exit "
                        "non-zero on violation")
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser(
        "qos", help="run an open-loop multi-tenant QoS plan, print SLO table"
    )
    p.add_argument("--plan", help="traffic plan JSON file (default: built-in "
                                  "oversubscription smoke plan)")
    p.add_argument("--check", action="store_true",
                   help="validate the plan, run it, and assert every arrival "
                        "got a typed completion; exit 1 on violation")
    p.add_argument("--tenants", type=int, default=8,
                   help="built-in plan: number of tenant VMs (default 8)")
    p.add_argument("--policy", default="wfq",
                   choices=["rr", "wfq", "priority"],
                   help="arbiter policy for the built-in plan (default wfq)")
    p.add_argument("--oversub", type=float, default=10.0,
                   help="built-in plan: offered load as a multiple of card "
                        "capacity (default 10)")
    p.add_argument("--duration", type=float, default=0.02,
                   help="measurement window in simulated seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=16,
                   help="max tenant rows to print (default 16)")
    p.add_argument("--out", help="also write the rendered report here")
    p.add_argument("--assert-jain", type=float, default=None,
                   help="fail unless the share-weighted Jain index is >= X")
    p.add_argument("--assert-shed", action="store_true",
                   help="fail unless admission control shed at least one "
                        "arrival")
    p.set_defaults(fn=_cmd_qos)

    p = sub.add_parser(
        "pepc",
        help="query/set card power properties (P/C-states, TDP, uncore)",
    )
    p.add_argument("--sku", default="3120P", help="card model (default 3120P)")
    p.add_argument("--cards", type=int, default=1)
    p.add_argument("--card", type=int, default=None,
                   help="scope: one card index (default: global)")
    p.add_argument("--core", default=None,
                   help="scope: core list like 0-3,7 (implies --card, "
                        "default card 0)")
    p.add_argument("--vm", action="store_true",
                   help="scope: a guest VM (vm0 is created; resolves to "
                        "the card its vPHI dispatch targets)")
    p.add_argument("--pstate", type=int, default=None,
                   help="request a P-state index (0 = fastest)")
    p.add_argument("--tdp", type=float, default=None,
                   help="set the RAPL-style TDP cap in watts")
    p.add_argument("--cstates", choices=("on", "off"), default=None,
                   help="enable/disable C-states on idle cores")
    p.add_argument("--uncore", type=float, default=None,
                   help="uncore frequency multiplier in [0.4, 1.0]")
    p.add_argument("--check", action="store_true",
                   help="run the closed-loop conformance scenario; exit "
                        "non-zero on violation")
    p.set_defaults(fn=_cmd_pepc)

    p = sub.add_parser(
        "profile", help="run one figure scenario under cProfile"
    )
    p.add_argument("scenario", choices=["fig4", "fig5"],
                   help="which figure's workload to profile")
    p.add_argument("--sizes", help="comma-separated byte sizes")
    p.add_argument("--top", type=int, default=25,
                   help="number of functions to print (default 25)")
    p.add_argument("--sort", default="tottime",
                   choices=["tottime", "cumulative", "calls"],
                   help="pstats sort order (default tottime)")
    p.add_argument("--out", help="dump raw .pstats data to this path")
    p.set_defaults(fn=_cmd_profile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
