"""Deterministic fault injection & recovery for the vPHI path.

Declare a :class:`FaultPlan` (which faults, triggered by op index, op
name, VM id or simulated-time window), hand it to
:class:`~repro.system.Machine`, and the resulting
:class:`FaultInjector` fires PCIe link flaps, host SCIF syscall errors,
ring corruption, backend worker deaths and card resets at deterministic
points — while the frontend's retry/timeout machinery and the backend's
endpoint re-open path recover (or surface typed errors for
non-idempotent operations).
"""

from .injector import NO_FAULTS, FaultInjector, Injection
from .plan import (
    ENODEV,
    TRANSIENT_ERRORS,
    FaultKind,
    FaultPlan,
    FaultSite,
    FaultSpec,
    is_transient,
)

__all__ = [
    "ENODEV",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
    "Injection",
    "NO_FAULTS",
    "TRANSIENT_ERRORS",
    "is_transient",
]
