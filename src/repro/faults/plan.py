"""Deterministic fault plans: *what* to break, *where*, and *when*.

The paper's design implicitly assumes the card, the PCIe link and the
host SCIF driver never fail mid-operation.  A :class:`FaultPlan` makes
the opposite assumption testable: it declares a set of
:class:`FaultSpec`\\ s — each one a fault *kind* plus a deterministic
*trigger* — and the :class:`~repro.faults.injector.FaultInjector` built
from it fires those faults at well-defined injection sites threaded
through the stack (PCIe link, host chardev, vPHI backend, virtio ring).

Triggers compose: an op-name filter, a VM filter, a simulated-time
window, and a cadence (``every`` Nth matching event, or explicit
``at`` indexes).  Everything is counter-based off the deterministic
simulation, so the same plan over the same workload injects the same
faults at the same simulated instants on every run — which is what lets
CI gate on recovery behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Type

from ..scif import ScifError
from ..scif.errors import ECONNRESET, ENXIO, ESHUTDOWN, ETIMEDOUT, EStaleEpoch
from ..sim import SimError

__all__ = [
    "FaultKind",
    "FaultSite",
    "FaultSpec",
    "FaultPlan",
    "ENODEV",
    "TRANSIENT_ERRORS",
    "is_transient",
]


class ENODEV(ScifError):
    """The host SCIF driver vanished underneath the caller (driver
    unload / device death).  Transient from the guest's perspective: the
    backend re-opens its endpoint and a retried idempotent op succeeds."""

    errno_name = "ENODEV"


#: error classes a retry can plausibly cure: connection resets, driver
#: death (the backend re-opens), card resets (the card comes back),
#: backend restarts (the process comes back), epoch fences (the session
#: rebuilds) and frontend-side op timeouts.  Everything else (EINVAL,
#: EADDRINUSE, ...) reflects caller state and is never retried.
TRANSIENT_ERRORS: tuple[Type[ScifError], ...] = (
    ECONNRESET, ENODEV, ENXIO, ESHUTDOWN, EStaleEpoch, ETIMEDOUT,
)


def is_transient(err: BaseException) -> bool:
    """Whether a retry could plausibly cure ``err``."""
    return isinstance(err, TRANSIENT_ERRORS)


class FaultKind:
    """The failure modes the injector can reproduce."""

    #: PCIe link flap: the link drops and retrains; transfers and
    #: doorbells stall for ``duration`` simulated seconds.
    LINK_FLAP = "link_flap"
    #: host SCIF syscall fails with ``errno`` (default ECONNRESET).
    SCIF_ERROR = "scif_error"
    #: a virtio descriptor chain arrives corrupted; the backend detects
    #: it and completes the request with ECONNRESET.
    RING_CORRUPT = "ring_corrupt"
    #: the QEMU worker servicing the request dies; QEMU respawns it
    #: after ``duration`` and the request completes with ECONNRESET.
    #: Under pooled dispatch the victim is the pool member holding the
    #: request — it respawns in place (same shard queue) so per-endpoint
    #: ordering survives the death.
    WORKER_DEATH = "worker_death"
    #: the card resets mid-RMA; in-flight host calls fail with ENXIO.
    #: Machine-wide: every VM sharing the card has its in-flight pooled
    #: requests aborted and its session invalidated.
    CARD_RESET = "card_reset"
    #: the backend process (QEMU-side vPHI device) restarts: all of its
    #: host endpoints die with ESHUTDOWN and the session must rebuild,
    #: but only the triggering VM is affected.
    BACKEND_RESTART = "backend_restart"
    #: a card is administratively removed from its host (SVFF-style
    #: planned detach): the cluster scheduler live-migrates its VMs away
    #: before the capacity disappears.  Cluster-level churn — fired by
    #: :meth:`~repro.cluster.Cluster.hot_unplug` through the injector's
    #: push API rather than drawn on a datapath.
    CARD_UNPLUG = "card_unplug"
    #: a whole host dies abruptly: every VM on it is evicted (session
    #: BROKEN, in-flight work aborted with ENXIO) and its cards leave
    #: the placement pool.  Also push-fired, by
    #: :meth:`~repro.cluster.Cluster.fail_host`.
    HOST_FAIL = "host_fail"

    ALL = (LINK_FLAP, SCIF_ERROR, RING_CORRUPT, WORKER_DEATH, CARD_RESET,
           BACKEND_RESTART, CARD_UNPLUG, HOST_FAIL)


class FaultSite:
    """Injection sites threaded through the stack (draw points)."""

    #: per-op draw in :meth:`VPhiFrontend.submit` (guest side).
    FRONTEND_SUBMIT = "vphi.frontend.submit"
    #: per-request draw in :meth:`VPhiBackend.handle` before dispatch.
    BACKEND_DISPATCH = "vphi.backend.dispatch"
    #: per-chain draw when the backend pops the avail ring.
    RING_POP = "virtio.ring.pop"
    #: per-ioctl draw in the host chardev (the native, non-vPHI path).
    HOST_IOCTL = "host.scif.ioctl"
    #: cluster churn events (push-fired by the topology layer, never
    #: drawn on a datapath — there is no per-op hot path for "a card
    #: left the machine").
    CLUSTER_CHURN = "cluster.churn"


#: which site each fault kind fires at.
SITE_FOR_KIND = {
    FaultKind.LINK_FLAP: FaultSite.FRONTEND_SUBMIT,
    FaultKind.SCIF_ERROR: FaultSite.BACKEND_DISPATCH,
    FaultKind.RING_CORRUPT: FaultSite.RING_POP,
    FaultKind.WORKER_DEATH: FaultSite.BACKEND_DISPATCH,
    FaultKind.CARD_RESET: FaultSite.BACKEND_DISPATCH,
    FaultKind.BACKEND_RESTART: FaultSite.BACKEND_DISPATCH,
    FaultKind.CARD_UNPLUG: FaultSite.CLUSTER_CHURN,
    FaultKind.HOST_FAIL: FaultSite.CLUSTER_CHURN,
}

#: default outage/respawn duration per kind (simulated seconds).
DEFAULT_DURATION = {
    FaultKind.LINK_FLAP: 200e-6,
    FaultKind.SCIF_ERROR: 0.0,
    FaultKind.RING_CORRUPT: 0.0,
    FaultKind.WORKER_DEATH: 500e-6,
    FaultKind.CARD_RESET: 1e-3,
    FaultKind.BACKEND_RESTART: 2e-3,
    FaultKind.CARD_UNPLUG: 5e-3,
    FaultKind.HOST_FAIL: 0.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus its deterministic trigger.

    A spec *matches* a draw when every filter (``op``, ``vm``, time
    window, site) agrees; among its matches it *fires* according to the
    cadence (``every`` / ``at``), capped at ``max_fires``.
    """

    kind: str
    #: ScifError subclass injected (SCIF_ERROR kind; others fix their own).
    errno: Type[ScifError] = ECONNRESET
    #: only fire for this wire op name (e.g. ``"send"``); None = any.
    op: Optional[str] = None
    #: only fire for this VM name; None = any VM (and the native path).
    vm: Optional[str] = None
    #: fire on every Nth matching draw (1 = every match).
    every: Optional[int] = None
    #: fire on exactly these 0-based matching-draw indexes.
    at: tuple[int, ...] = ()
    #: simulated-time window [after, until) the spec is armed in.
    after: float = 0.0
    until: float = math.inf
    #: hard cap on total fires (None = unlimited).
    max_fires: Optional[int] = None
    #: outage / respawn / reset duration (None = the kind's default).
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise SimError(f"unknown fault kind {self.kind!r}")
        if self.every is not None and self.every < 1:
            raise SimError(f"fault cadence 'every' must be >= 1, got {self.every}")
        if self.every is None and not self.at:
            # a spec with no cadence fires on every match inside its
            # window (and fire cap) — make that explicit rather than
            # leaving it silently inert.
            object.__setattr__(self, "every", 1)
        if not issubclass(self.errno, ScifError):
            raise SimError("errno must be a ScifError subclass")

    @property
    def site(self) -> str:
        return SITE_FOR_KIND[self.kind]

    @property
    def outage(self) -> float:
        return DEFAULT_DURATION[self.kind] if self.duration is None else self.duration


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, declarative set of faults to inject into one run."""

    specs: tuple[FaultSpec, ...] = ()
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @staticmethod
    def none() -> "FaultPlan":
        """The empty plan (inject nothing) — the fault-free baseline."""
        return FaultPlan(specs=(), name="fault-free")

    @staticmethod
    def of(*specs: FaultSpec, name: str = "fault-plan") -> "FaultPlan":
        return FaultPlan(specs=tuple(specs), name=name)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def filtered(self, kinds: Sequence[str]) -> "FaultPlan":
        """A sub-plan containing only the given kinds (ablation helper)."""
        return FaultPlan(
            specs=tuple(s for s in self.specs if s.kind in kinds),
            name=f"{self.name}[{'+'.join(kinds)}]",
        )
