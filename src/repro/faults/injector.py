"""The runtime half of fault injection: drawing and firing faults.

One :class:`FaultInjector` is built per :class:`~repro.system.Machine`
from its :class:`~repro.faults.plan.FaultPlan` and threaded to every
injection site (PCIe links, the host chardev, each VM's vPHI backend and
frontend).  Sites call :meth:`FaultInjector.draw` on their hot path; the
injector deterministically decides — purely from per-spec match counters
and simulated time — whether a fault fires there, and returns an
:class:`Injection` describing it (or ``None``, the overwhelmingly common
case, at the cost of one tuple-filter pass over the armed specs).

Fired injections are recorded twice: in the injector's global ``log``
(workload-wide audit, ordered) and through the per-VM tracer at the site
(``vphi.fault.injected`` + the op's ``injected`` key), so per-VM
recovery accounting in :func:`repro.analysis.per_op_stats` lines up with
what was actually injected into that VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..scif import ScifError
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["Injection", "FaultInjector", "NO_FAULTS"]


@dataclass(frozen=True)
class Injection:
    """One fired fault: what, where, when, and against whom."""

    kind: str
    spec: FaultSpec
    site: str
    time: float
    op: Optional[str] = None
    vm: Optional[str] = None
    seq: int = 0

    def make_error(self) -> ScifError:
        """The typed ScifError this injection surfaces as."""
        if self.kind == FaultKind.RING_CORRUPT:
            from ..scif.errors import ECONNRESET

            return ECONNRESET(
                f"virtio descriptor chain corrupted (injected at {self.time:g}s)"
            )
        if self.kind == FaultKind.WORKER_DEATH:
            from ..scif.errors import ECONNRESET

            return ECONNRESET(
                f"vphi backend worker died mid-request (injected at {self.time:g}s)"
            )
        if self.kind == FaultKind.CARD_RESET:
            from ..scif.errors import ENXIO

            return ENXIO(f"card reset mid-operation (injected at {self.time:g}s)")
        if self.kind == FaultKind.BACKEND_RESTART:
            from ..scif.errors import ESHUTDOWN

            return ESHUTDOWN(
                f"vphi backend restarted mid-operation (injected at {self.time:g}s)"
            )
        if self.kind == FaultKind.CARD_UNPLUG:
            from ..scif.errors import ENXIO

            return ENXIO(f"card hot-unplugged (at {self.time:g}s)")
        if self.kind == FaultKind.HOST_FAIL:
            from ..scif.errors import ENXIO

            return ENXIO(f"host failed (at {self.time:g}s)")
        return self.spec.errno(
            f"host scif syscall failed (injected {self.spec.errno.__name__} "
            f"at {self.time:g}s)"
        )


class _SpecState:
    """Mutable cadence counters for one armed spec."""

    __slots__ = ("spec", "matches", "fires")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.matches = 0
        self.fires = 0

    def should_fire(self) -> bool:
        """Called once per match (matches already incremented)."""
        spec = self.spec
        if spec.max_fires is not None and self.fires >= spec.max_fires:
            return False
        idx = self.matches - 1  # 0-based index of this match
        if idx in spec.at:
            return True
        if spec.every is not None and self.matches % spec.every == 0:
            return True
        return False


class FaultInjector:
    """Deterministic fault source for one simulated machine."""

    def __init__(self, plan: Optional[FaultPlan] = None, sim=None, tracer=None):
        self.plan = plan or FaultPlan.none()
        self.sim = sim
        #: the machine-level tracer (global audit counters).
        self.tracer = tracer
        self._states = [_SpecState(s) for s in self.plan.specs]
        #: every fired injection, in firing order.
        self.log: list[Injection] = []
        #: PCIe links registered for LINK_FLAP delivery.
        self.links: list = []
        #: vPHI backends registered for machine-wide CARD_RESET fan-out.
        self.backends: list = []

    # ------------------------------------------------------------------
    def attach_link(self, link) -> None:
        """Register a PCIe link as a flap target."""
        if link not in self.links:
            self.links.append(link)

    def attach_backend(self, backend) -> None:
        """Register a vPHI backend as a card-reset broadcast target."""
        if backend not in self.backends:
            self.backends.append(backend)

    def detach_backend(self, backend) -> None:
        """Forget a backend (its VM migrated off this machine).

        A migrated-away backend must stop hearing this machine's
        CARD_RESET broadcasts — the card it would invalidate against is
        no longer the one underneath its VM.
        """
        if backend in self.backends:
            self.backends.remove(backend)

    @property
    def active(self) -> bool:
        """Whether any spec is armed (False for the fault-free plan)."""
        return bool(self._states)

    @property
    def injected(self) -> int:
        return len(self.log)

    # ------------------------------------------------------------------
    def draw(self, site: str, op: Optional[str] = None,
             vm: Optional[str] = None) -> Optional[Injection]:
        """One deterministic draw at an injection site.

        Returns the fired :class:`Injection` (first armed spec wins) or
        ``None``.  LINK_FLAP injections also deliver the flap to every
        attached link before returning, so the site only has to record
        the event.
        """
        if not self._states:
            return None
        now = self.sim.now if self.sim is not None else 0.0
        for state in self._states:
            spec = state.spec
            if spec.site != site:
                continue
            if spec.vm is not None and spec.vm != vm:
                continue
            if spec.op is not None and spec.op != op:
                continue
            if not (spec.after <= now < spec.until):
                continue
            state.matches += 1
            if not state.should_fire():
                continue
            state.fires += 1
            inj = Injection(
                kind=spec.kind, spec=spec, site=site, time=now,
                op=op, vm=vm, seq=len(self.log),
            )
            self.log.append(inj)
            if self.tracer is not None:
                self.tracer.count("faults.injected")
                self.tracer.count(f"faults.injected.{spec.kind}")
            if spec.kind == FaultKind.LINK_FLAP:
                for link in self.links:
                    link.flap(spec.outage)
            return inj
        return None

    def fire(self, kind: str, vm: Optional[str] = None,
             op: Optional[str] = None,
             duration: Optional[float] = None) -> Injection:
        """Push-fire one fault outside any draw cadence.

        Cluster churn (card hot-unplug, host failure) is *commanded* by
        the topology layer, not sampled on a datapath, but it must still
        land in the same audit trail — ``log`` order, tracer counters,
        ``fires_of`` — that the pull-based plans feed, so a chaos run's
        post-mortem sees one interleaved fault history.
        """
        from .plan import SITE_FOR_KIND, FaultSpec

        if kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {kind!r}")
        spec = FaultSpec(kind=kind, vm=vm, op=op, duration=duration)
        now = self.sim.now if self.sim is not None else 0.0
        inj = Injection(
            kind=kind, spec=spec, site=SITE_FOR_KIND[kind], time=now,
            op=op, vm=vm, seq=len(self.log),
        )
        self.log.append(inj)
        if self.tracer is not None:
            self.tracer.count("faults.injected")
            self.tracer.count(f"faults.injected.{kind}")
        return inj

    def fires_of(self, kind: str) -> int:
        """Total injections of one kind so far (assertion helper)."""
        return sum(1 for inj in self.log if inj.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultInjector plan={self.plan.name!r} specs={len(self._states)} "
            f"fired={len(self.log)}>"
        )


#: shared do-nothing injector for components built without a machine.
NO_FAULTS = FaultInjector(FaultPlan.none())
